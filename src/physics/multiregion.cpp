#include "physics/multiregion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"
#include "core/simd/rng_block.hpp"
#include "physics/cross_sections.hpp"
#include "physics/kinematics.hpp"
#include "physics/transport_batch.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

Layer Layer::gap(double thickness_cm) {
    Layer layer{Material::air(), thickness_cm, true};
    return layer;
}

Layer Layer::slab(Material material, double thickness_cm) {
    return Layer{std::move(material), thickness_cm, false};
}

LayeredTransport::LayeredTransport(std::vector<Layer> layers,
                                   TransportConfig config)
    : layers_(std::move(layers)), config_(config) {
    if (layers_.empty()) {
        throw std::invalid_argument("LayeredTransport: no layers");
    }
    boundaries_.reserve(layers_.size());
    xs_.reserve(layers_.size());
    for (const auto& layer : layers_) {
        if (!(layer.thickness_cm > 0.0)) {
            throw std::invalid_argument("LayeredTransport: bad thickness");
        }
        total_ += layer.thickness_cm;
        boundaries_.push_back(total_);
        xs_.emplace_back(layer.material);
    }
}

std::size_t LayeredTransport::layer_at(double x) const {
    const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
    return std::min<std::size_t>(
        static_cast<std::size_t>(std::distance(boundaries_.begin(), it)),
        layers_.size() - 1);
}

LayeredFate LayeredTransport::transport_one(double energy_ev,
                                            stats::Rng& rng) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;
    std::uint64_t collisions = 0;
    const bool use_table = config_.use_xs_table;

    for (std::uint32_t step = 0; step < config_.max_scatters; ++step) {
        const std::size_t li = layer_at(x);
        const Layer& layer = layers_[li];
        const double layer_lo = (li == 0) ? 0.0 : boundaries_[li - 1];
        const double layer_hi = boundaries_[li];

        if (layer.vacuum) {
            // Free streaming to the next boundary (or out).
            x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
        } else {
            MaterialXsTable::Lookup lk;
            double sigma_s;
            double sigma_a;
            if (use_table) {
                lk = xs_[li].lookup(e);
                sigma_s = lk.sigma_scatter;
                sigma_a = lk.sigma_absorb;
            } else {
                sigma_s = layer.material.sigma_scatter(e);
                sigma_a = layer.material.sigma_absorb(e);
            }
            const double sigma_t = sigma_s + sigma_a;
            if (sigma_t <= 0.0) {
                x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
            } else {
                const double path = rng.exponential(sigma_t);
                const double x_new = x + mu * path;
                if (x_new > layer_hi || x_new < layer_lo) {
                    // Crossed into the neighbouring layer (or out): move to
                    // the boundary and continue there.
                    x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
                } else {
                    x = x_new;
                    // Interaction.
                    if (rng.uniform() * sigma_t < sigma_a) {
                        return {Fate::kAbsorbed, e, li, collisions};
                    }
                    ++collisions;
                    // Elastic scatter off a nuclide sampled at energy e.
                    const double a =
                        use_table
                            ? xs_[li].sample_scatter_mass(lk, rng)
                            : layer.material.sample_scatter_mass(e, sigma_s,
                                                                 rng);
                    scatter_elastic(a, config_.thermal_floor_ev,
                                    config_.maxwellian_kt_ev, e, mu, rng);
                }
            }
        }

        if (x >= total_) return {Fate::kTransmitted, e, 0, collisions};
        if (x <= 0.0) return {Fate::kReflected, e, 0, collisions};
    }
    return {Fate::kLost, e, 0, collisions};
}

void LayeredResult::merge(const LayeredResult& other) {
    total += other.total;
    collisions += other.collisions;
    compactions += other.compactions;
    roulette_kills += other.roulette_kills;
    roulette_survivals += other.roulette_survivals;
    bank_events += other.bank_events;
    transmitted += other.transmitted;
    transmitted_thermal += other.transmitted_thermal;
    reflected += other.reflected;
    reflected_thermal += other.reflected_thermal;
    absorbed += other.absorbed;
    lost += other.lost;
    transmitted_w += other.transmitted_w;
    reflected_w += other.reflected_w;
    absorbed_w += other.absorbed_w;
    transmitted_thermal_w += other.transmitted_thermal_w;
    reflected_thermal_w += other.reflected_thermal_w;
    transmitted_w2 += other.transmitted_w2;
    reflected_w2 += other.reflected_w2;
    absorbed_w2 += other.absorbed_w2;
    if (absorbed_by_layer.empty()) {
        absorbed_by_layer = other.absorbed_by_layer;
    } else if (!other.absorbed_by_layer.empty()) {
        if (absorbed_by_layer.size() != other.absorbed_by_layer.size()) {
            throw std::invalid_argument(
                "LayeredResult::merge: layer count mismatch");
        }
        for (std::size_t i = 0; i < absorbed_by_layer.size(); ++i) {
            absorbed_by_layer[i] += other.absorbed_by_layer[i];
        }
    }
    if (absorbed_w_by_layer.empty()) {
        absorbed_w_by_layer = other.absorbed_w_by_layer;
    } else if (!other.absorbed_w_by_layer.empty()) {
        if (absorbed_w_by_layer.size() != other.absorbed_w_by_layer.size()) {
            throw std::invalid_argument(
                "LayeredResult::merge: layer count mismatch");
        }
        for (std::size_t i = 0; i < absorbed_w_by_layer.size(); ++i) {
            absorbed_w_by_layer[i] += other.absorbed_w_by_layer[i];
        }
    }
}

namespace {

void record(LayeredResult& r, const LayeredFate& f) {
    // Analog histories carry unit weight: weighted tallies get the 0/1
    // contributions, mirroring the slab engine's record().
    ++r.total;
    r.collisions += f.collisions;
    switch (f.fate) {
        case Fate::kTransmitted:
            ++r.transmitted;
            r.transmitted_w += 1.0;
            r.transmitted_w2 += 1.0;
            if (f.exit_energy_ev < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += 1.0;
            }
            break;
        case Fate::kReflected:
            ++r.reflected;
            r.reflected_w += 1.0;
            r.reflected_w2 += 1.0;
            if (f.exit_energy_ev < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += 1.0;
            }
            break;
        case Fate::kAbsorbed:
            ++r.absorbed;
            ++r.absorbed_by_layer[f.absorbed_layer];
            r.absorbed_w += 1.0;
            r.absorbed_w2 += 1.0;
            r.absorbed_w_by_layer[f.absorbed_layer] += 1.0;
            break;
        case Fate::kLost:
            ++r.lost;
            r.absorbed_w += 1.0;  // lost folds into absorption, keep parity.
            r.absorbed_w2 += 1.0;
            break;
    }
}

}  // namespace

void LayeredTransport::transport_one_implicit(double energy_ev,
                                              stats::Rng& rng,
                                              LayeredResult& r) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;
    double w = 1.0;
    double acc = 0.0;  // capture weight banked so far by this history.
    const bool use_table = config_.use_xs_table;
    ++r.total;

    const auto tally_exit = [&](bool transmitted) {
        if (transmitted) {
            ++r.transmitted;
            r.transmitted_w += w;
            r.transmitted_w2 += w * w;
            if (e < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += w;
            }
        } else {
            ++r.reflected;
            r.reflected_w += w;
            r.reflected_w2 += w * w;
            if (e < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += w;
            }
        }
        r.absorbed_w += acc;
        r.absorbed_w2 += acc * acc;
    };

    for (std::uint32_t step = 0; step < config_.max_scatters; ++step) {
        const std::size_t li = layer_at(x);
        const Layer& layer = layers_[li];
        const double layer_lo = (li == 0) ? 0.0 : boundaries_[li - 1];
        const double layer_hi = boundaries_[li];

        if (layer.vacuum) {
            x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
        } else {
            MaterialXsTable::Lookup lk;
            double sigma_s;
            double sigma_a;
            if (use_table) {
                lk = xs_[li].lookup(e);
                sigma_s = lk.sigma_scatter;
                sigma_a = lk.sigma_absorb;
            } else {
                sigma_s = layer.material.sigma_scatter(e);
                sigma_a = layer.material.sigma_absorb(e);
            }
            const double sigma_t = sigma_s + sigma_a;
            if (sigma_t <= 0.0) {
                x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
            } else {
                const double path = rng.exponential(sigma_t);
                const double x_new = x + mu * path;
                if (x_new > layer_hi || x_new < layer_lo) {
                    x = (mu > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
                } else {
                    x = x_new;
                    // Implicit capture: bank the absorbed share in this
                    // layer, keep scattering with the surviving weight.
                    ++r.collisions;
                    ++r.bank_events;
                    const double captured = w * (sigma_a / sigma_t);
                    acc += captured;
                    r.absorbed_w_by_layer[li] += captured;
                    w *= sigma_s / sigma_t;
                    // Telemetry only: whether roulette is played depends on
                    // the weight alone, so peeking costs no draw.
                    const bool rouletted = w < config_.weight_floor;
                    if (!roulette_survives(w, config_.weight_floor,
                                           config_.weight_survival, rng)) {
                        ++r.roulette_kills;
                        ++r.absorbed;
                        ++r.absorbed_by_layer[li];
                        r.absorbed_w += acc;
                        r.absorbed_w2 += acc * acc;
                        return;
                    }
                    if (rouletted) ++r.roulette_survivals;
                    const double a =
                        use_table
                            ? xs_[li].sample_scatter_mass(lk, rng)
                            : layer.material.sample_scatter_mass(e, sigma_s,
                                                                 rng);
                    scatter_elastic(a, config_.thermal_floor_ev,
                                    config_.maxwellian_kt_ev, e, mu, rng);
                }
            }
        }

        if (x >= total_) {
            tally_exit(true);
            return;
        }
        if (x <= 0.0) {
            tally_exit(false);
            return;
        }
    }
    // Scatter budget exceeded: remaining weight counts as absorbed where the
    // history stalled, matching the analog kLost-folds-into-absorption rule.
    ++r.lost;
    const std::size_t li = layer_at(x);
    r.absorbed_w_by_layer[li] += w;
    acc += w;
    r.absorbed_w += acc;
    r.absorbed_w2 += acc * acc;
}

void LayeredTransport::run_batch_implicit(
    const std::function<double(stats::Rng&)>& sample,
    const std::function<void(stats::Rng&, double*, std::uint32_t)>& block,
    std::uint64_t count, stats::Rng& rng, core::simd::Tier tier,
    LayeredResult& r) const {
    const std::uint32_t max_lanes =
        std::max<std::uint32_t>(1, config_.batch_size);
    const double w_floor = config_.weight_floor;
    const double w_survival = config_.weight_survival;
    const double kt = config_.maxwellian_kt_ev;
    const double thermal_floor = config_.thermal_floor_ev;

    // Lane state.
    std::vector<double> e(max_lanes), x(max_lanes), mu(max_lanes),
        w(max_lanes), acc(max_lanes);
    std::vector<std::uint32_t> steps(max_lanes), li(max_lanes);
    std::vector<std::uint32_t> active, next_active;
    active.reserve(max_lanes);
    next_active.reserve(max_lanes);
    // Per-step scratch, indexed by position in `active` (slot order).
    std::vector<double> sig_s(max_lanes), sig_a(max_lanes), mass(max_lanes),
        flight(max_lanes), u_roul(max_lanes), u_mucm(max_lanes),
        mx1(max_lanes), mx2(max_lanes), u_mu(max_lanes);
    // Per-layer bucket scratch for the packed lookup sweeps.
    std::vector<std::vector<std::uint32_t>> buckets(layers_.size());
    std::vector<double> be(max_lanes), bs(max_lanes), ba(max_lanes),
        bu(max_lanes), bm(max_lanes), bfrac(max_lanes);
    std::vector<std::uint32_t> bnode(max_lanes);

    const auto tally_exit = [&](std::uint32_t i, bool transmitted) {
        if (transmitted) {
            ++r.transmitted;
            r.transmitted_w += w[i];
            r.transmitted_w2 += w[i] * w[i];
            if (e[i] < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += w[i];
            }
        } else {
            ++r.reflected;
            r.reflected_w += w[i];
            r.reflected_w2 += w[i] * w[i];
            if (e[i] < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += w[i];
            }
        }
        r.absorbed_w += acc[i];
        r.absorbed_w2 += acc[i] * acc[i];
    };

    std::uint64_t remaining = count;
    while (remaining > 0) {
        const auto lanes = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(max_lanes, remaining));
        remaining -= lanes;
        r.total += lanes;

        if (block) {
            block(rng, e.data(), lanes);
        } else {
            for (std::uint32_t i = 0; i < lanes; ++i) e[i] = sample(rng);
        }
        active.clear();
        for (std::uint32_t i = 0; i < lanes; ++i) {
            x[i] = 0.0;
            mu[i] = 1.0;
            w[i] = 1.0;
            acc[i] = 0.0;
            steps[i] = 0;
            active.push_back(i);
        }

        while (!active.empty()) {
            const auto n_act = static_cast<std::uint32_t>(active.size());

            // Bucket the in-flight lanes by (material) layer and run each
            // layer's packed cross-section + scatter-mass sweep.
            for (auto& b : buckets) b.clear();
            for (std::uint32_t s = 0; s < n_act; ++s) {
                const std::uint32_t i = active[s];
                li[i] = static_cast<std::uint32_t>(layer_at(x[i]));
                if (!layers_[li[i]].vacuum) buckets[li[i]].push_back(s);
            }
            for (std::size_t layer = 0; layer < buckets.size(); ++layer) {
                const auto& b = buckets[layer];
                if (b.empty()) continue;
                const auto m = static_cast<std::uint32_t>(b.size());
                for (std::uint32_t k = 0; k < m; ++k) {
                    be[k] = e[active[b[k]]];
                }
                xs_[layer].lookup_batch(be.data(), m, bs.data(), ba.data(),
                                        bnode.data(), bfrac.data(), tier);
                core::simd::fill_uniform(rng, bu.data(), m, tier);
                xs_[layer].sample_scatter_mass_batch(
                    bnode.data(), bfrac.data(), bu.data(), m, bm.data(), tier);
                for (std::uint32_t k = 0; k < m; ++k) {
                    sig_s[b[k]] = bs[k];
                    sig_a[b[k]] = ba[k];
                    mass[b[k]] = bm[k];
                }
            }

            // Block draws for every active slot (a lane consumes its slots
            // whether or not the step branch needs them — the draws are
            // independent of the state that skips them, so expectations are
            // unchanged).
            core::simd::fill_unit_exponential(rng, flight.data(), n_act, tier);
            core::simd::fill_uniform(rng, u_roul.data(), n_act, tier);
            core::simd::fill_uniform(rng, u_mucm.data(), n_act, tier);
            core::simd::fill_unit_exponential(rng, mx1.data(), n_act, tier);
            core::simd::fill_unit_exponential(rng, mx2.data(), n_act, tier);
            core::simd::fill_uniform(rng, u_mu.data(), n_act, tier);

            // One transport step per lane, same semantics as
            // transport_one_implicit's loop body.
            next_active.clear();
            for (std::uint32_t s = 0; s < n_act; ++s) {
                const std::uint32_t i = active[s];
                const std::uint32_t layer = li[i];
                const double layer_lo =
                    (layer == 0) ? 0.0 : boundaries_[layer - 1];
                const double layer_hi = boundaries_[layer];
                bool stream = layers_[layer].vacuum;
                if (!stream) {
                    const double sig_t = sig_s[s] + sig_a[s];
                    if (sig_t <= 0.0) {
                        stream = true;
                    } else {
                        const double x_new =
                            x[i] + mu[i] * flight[s] / sig_t;
                        if (x_new > layer_hi || x_new < layer_lo) {
                            x[i] = (mu[i] > 0.0) ? layer_hi + 1e-12
                                                 : layer_lo - 1e-12;
                        } else {
                            x[i] = x_new;
                            ++r.collisions;
                            ++r.bank_events;
                            const double captured =
                                w[i] * (sig_a[s] / sig_t);
                            acc[i] += captured;
                            r.absorbed_w_by_layer[layer] += captured;
                            w[i] *= sig_s[s] / sig_t;
                            if (w[i] < w_floor) {
                                if (u_roul[s] * w_survival < w[i]) {
                                    w[i] = w_survival;
                                    ++r.roulette_survivals;
                                } else {
                                    ++r.roulette_kills;
                                    ++r.absorbed;
                                    ++r.absorbed_by_layer[layer];
                                    r.absorbed_w += acc[i];
                                    r.absorbed_w2 += acc[i] * acc[i];
                                    continue;
                                }
                            }
                            const double a = mass[s];
                            if (e[i] > thermal_floor) {
                                const double mu_cm = -1.0 + 2.0 * u_mucm[s];
                                const double a1 = a + 1.0;
                                e[i] *= (a * a + 1.0 + 2.0 * a * mu_cm) /
                                        (a1 * a1);
                            }
                            if (e[i] <= thermal_floor) {
                                e[i] = kt * (mx1[s] + mx2[s]);
                            }
                            mu[i] = -1.0 + 2.0 * u_mu[s];
                            if (mu[i] == 0.0) mu[i] = 1e-12;
                        }
                    }
                }
                if (stream) {
                    x[i] = (mu[i] > 0.0) ? layer_hi + 1e-12 : layer_lo - 1e-12;
                }

                if (x[i] >= total_) {
                    tally_exit(i, true);
                    continue;
                }
                if (x[i] <= 0.0) {
                    tally_exit(i, false);
                    continue;
                }
                if (++steps[i] >= config_.max_scatters) {
                    ++r.lost;
                    const std::size_t stall = layer_at(x[i]);
                    r.absorbed_w_by_layer[stall] += w[i];
                    acc[i] += w[i];
                    r.absorbed_w += acc[i];
                    r.absorbed_w2 += acc[i] * acc[i];
                    continue;
                }
                next_active.push_back(i);
            }
            if (next_active.size() < active.size()) ++r.compactions;
            std::swap(active, next_active);
        }
    }
}

template <typename SampleEnergy>
LayeredResult LayeredTransport::run_histories(
    SampleEnergy&& sample, std::uint64_t n, stats::Rng& rng,
    const std::function<void(stats::Rng&, double*, std::uint32_t)>& block)
    const {
    const core::obs::Span span("transport.layered", "transport");
    const bool implicit = config_.mode == TransportMode::kImplicitCapture;
    if (implicit && (!(config_.weight_floor > 0.0) ||
                     !(config_.weight_survival >= config_.weight_floor))) {
        throw std::invalid_argument(
            "LayeredTransport: need 0 < weight_floor <= weight_survival");
    }
    // The batched walk needs the table's packed lookups; the scalar tier
    // keeps the per-history loop bitwise identical to the historical one.
    const core::simd::Tier tier = config_.use_xs_table
                                      ? core::simd::resolve(config_.simd)
                                      : core::simd::Tier::kScalar;
    const bool batched = implicit && tier == core::simd::Tier::kAvx2;
    const std::function<double(stats::Rng&)> source =
        batched ? std::function<double(stats::Rng&)>(sample)
                : std::function<double(stats::Rng&)>{};
    LayeredResult merged = core::parallel::parallel_for_reduce<LayeredResult>(
        n, config_.threads, rng,
        [this, &sample, &block, &source, implicit, batched, tier](
            std::uint64_t, std::uint64_t count, stats::Rng& stream) {
            LayeredResult result;
            result.absorbed_by_layer.assign(layers_.size(), 0);
            result.absorbed_w_by_layer.assign(layers_.size(), 0.0);
            if (batched) {
                run_batch_implicit(source, block, count, stream, tier,
                                   result);
            } else if (implicit) {
                for (std::uint64_t i = 0; i < count; ++i) {
                    transport_one_implicit(sample(stream), stream, result);
                }
            } else {
                for (std::uint64_t i = 0; i < count; ++i) {
                    record(result, transport_one(sample(stream), stream));
                }
            }
            return result;
        },
        [](LayeredResult& acc, const LayeredResult& p) { acc.merge(p); });

    // Batch-granularity telemetry, shared with the slab engine.
    namespace obs = core::obs;
    static auto& histories = obs::Registry::global().counter("transport.histories");
    static auto& collisions = obs::Registry::global().counter("transport.collisions");
    static auto& table_collisions =
        obs::Registry::global().counter("transport.collisions_xs_table");
    static auto& exact_collisions =
        obs::Registry::global().counter("transport.collisions_xs_exact");
    static auto& runs = obs::Registry::global().counter("transport.runs");
    static auto& compactions =
        obs::Registry::global().counter("transport.compactions");
    static auto& roulette_kills =
        obs::Registry::global().counter("transport.roulette_kills");
    static auto& roulette_survivals =
        obs::Registry::global().counter("transport.roulette_survivals");
    static auto& bank_events =
        obs::Registry::global().counter("transport.bank_events");
    static auto& simd_tier = obs::Registry::global().gauge("simd.tier");
    histories.add(merged.total);
    collisions.add(merged.collisions);
    (config_.use_xs_table ? table_collisions : exact_collisions)
        .add(merged.collisions);
    runs.add(1);
    compactions.add(merged.compactions);
    roulette_kills.add(merged.roulette_kills);
    roulette_survivals.add(merged.roulette_survivals);
    bank_events.add(merged.bank_events);
    if (implicit) {
        simd_tier.set(core::simd::tier_index(tier));
    }
    return merged;
}

LayeredResult LayeredTransport::run_monoenergetic(double energy_ev,
                                                  std::uint64_t n,
                                                  stats::Rng& rng) const {
    return run_histories(
        [energy_ev](stats::Rng&) { return energy_ev; }, n, rng,
        [energy_ev](stats::Rng&, double* out, std::uint32_t count) {
            std::fill_n(out, count, energy_ev);
        });
}

LayeredResult LayeredTransport::run_spectrum(const Spectrum& spectrum,
                                             std::uint64_t n,
                                             stats::Rng& rng) const {
    spectrum.prepare_sampling();
    if (config_.mode == TransportMode::kImplicitCapture) {
        return run_histories(
            [&spectrum](stats::Rng& stream) {
                return spectrum.sample_energy_fast(stream);
            },
            n, rng,
            [&spectrum](stats::Rng& stream, double* out, std::uint32_t count) {
                spectrum.sample_energy_block(stream, out, count);
            });
    }
    return run_histories(
        [&spectrum](stats::Rng& stream) { return spectrum.sample_energy(stream); },
        n, rng);
}

}  // namespace tnr::physics

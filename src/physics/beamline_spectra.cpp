#include "physics/beamline_spectra.hpp"

#include "physics/units.hpp"

namespace tnr::physics {

namespace {

/// Scales an AtmosphericSpectrum so its >10 MeV integral equals `target`.
std::shared_ptr<const Spectrum> scaled_fast_component(double target_flux) {
    const AtmosphericSpectrum reference(1.0);
    const double base = reference.high_energy_flux();
    return std::make_shared<AtmosphericSpectrum>(target_flux / base);
}

}  // namespace

std::shared_ptr<const Spectrum> chipir_spectrum() {
    std::vector<std::shared_ptr<const Spectrum>> parts;
    parts.push_back(scaled_fast_component(kChipIrHighEnergyFlux));
    parts.push_back(std::make_shared<EpithermalSpectrum>(
        kChipIrEpithermalFlux, kThermalCutoffEv, 1.0 * kMeV));
    parts.push_back(
        std::make_shared<MaxwellianSpectrum>(kChipIrThermalFlux, 0.0253));
    return std::make_shared<CompositeSpectrum>("ChipIR", std::move(parts));
}

std::shared_ptr<const Spectrum> rotax_spectrum() {
    std::vector<std::shared_ptr<const Spectrum>> parts;
    parts.push_back(
        std::make_shared<MaxwellianSpectrum>(kRotaxTotalFlux, kRotaxKt));
    return std::make_shared<CompositeSpectrum>("ROTAX", std::move(parts));
}

std::shared_ptr<const Spectrum> terrestrial_spectrum(double high_energy_flux,
                                                     double thermal_flux) {
    std::vector<std::shared_ptr<const Spectrum>> parts;
    parts.push_back(scaled_fast_component(high_energy_flux));
    // Ground-level epithermal plateau: roughly one thermal flux worth spread
    // over the 1/E region (ziegler2003-style shape).
    parts.push_back(std::make_shared<EpithermalSpectrum>(
        thermal_flux, kThermalCutoffEv, 1.0 * kMeV));
    parts.push_back(std::make_shared<MaxwellianSpectrum>(thermal_flux, 0.0253));
    return std::make_shared<CompositeSpectrum>("terrestrial", std::move(parts));
}

std::shared_ptr<const Spectrum> dt14_spectrum(double flux) {
    // A tight triangular line centred on 14.1 MeV (D-T kinematic spread is
    // a few hundred keV). Normalized numerically to `flux`.
    const double centre = 14.1e6;
    const double half_width = 0.3e6;
    const auto raw = std::make_shared<TabulatedSpectrum>(
        "D-T 14 MeV",
        std::vector<std::pair<double, double>>{
            {centre - half_width, 1e-6},
            {centre, 1.0},
            {centre + half_width, 1e-6},
        });
    const double base = raw->total_flux();
    // Wrap with a composite so the integral matches `flux` exactly: scale
    // by re-tabulating with adjusted densities.
    const double scale = flux / base;
    return std::make_shared<TabulatedSpectrum>(
        "D-T 14 MeV",
        std::vector<std::pair<double, double>>{
            {centre - half_width, 1e-6 * scale},
            {centre, scale},
            {centre + half_width, 1e-6 * scale},
        });
}

}  // namespace tnr::physics

#include "physics/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"
#include "physics/cross_sections.hpp"
#include "physics/kinematics.hpp"
#include "physics/transport_batch.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

SlabTransport::SlabTransport(Material material, double thickness_cm,
                             TransportConfig config)
    : material_(std::move(material)),
      thickness_(thickness_cm),
      config_(config),
      xs_(material_) {
    if (!(thickness_cm > 0.0)) {
        throw std::invalid_argument("SlabTransport: thickness must be > 0");
    }
}

Fate SlabTransport::transport_one(double energy_ev, stats::Rng& rng,
                                  double* exit_energy_ev,
                                  std::uint64_t* collisions) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;  // entering along +x.
    const bool use_table = config_.use_xs_table;

    for (std::uint32_t scatter = 0; scatter < config_.max_scatters; ++scatter) {
        if (collisions) *collisions = scatter;
        MaterialXsTable::Lookup lk;
        double sigma_s;
        double sigma_a;
        if (use_table) {
            lk = xs_.lookup(e);
            sigma_s = lk.sigma_scatter;
            sigma_a = lk.sigma_absorb;
        } else {
            sigma_s = material_.sigma_scatter(e);
            sigma_a = material_.sigma_absorb(e);
        }
        const double sigma_t = sigma_s + sigma_a;
        if (sigma_t <= 0.0) {
            // Transparent medium: fly straight out.
            if (exit_energy_ev) *exit_energy_ev = e;
            return mu > 0.0 ? Fate::kTransmitted : Fate::kReflected;
        }

        const double path = rng.exponential(sigma_t);
        x += mu * path;
        if (x >= thickness_) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kTransmitted;
        }
        if (x <= 0.0) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kReflected;
        }

        // Interaction: absorption vs scattering.
        if (rng.uniform() * sigma_t < sigma_a) return Fate::kAbsorbed;

        // Choose the scattering nuclide proportional to its macroscopic
        // elastic cross section at the current energy.
        const double a = use_table
                             ? xs_.sample_scatter_mass(lk, rng)
                             : material_.sample_scatter_mass(e, sigma_s, rng);
        scatter_elastic(a, config_.thermal_floor_ev, config_.maxwellian_kt_ev,
                        e, mu, rng);
    }
    return Fate::kLost;
}

namespace {

void record(TransportResult& r, Fate fate, double exit_e,
            std::uint64_t collisions) {
    // Analog histories carry unit weight, so the weighted tallies are the
    // 0/1 contributions of each fate channel — which is exactly what the
    // variance estimator needs to recover the binomial error bars.
    ++r.total;
    r.collisions += collisions;
    switch (fate) {
        case Fate::kTransmitted:
            ++r.transmitted;
            r.transmitted_w += 1.0;
            r.transmitted_w2 += 1.0;
            if (exit_e < kThermalCutoffEv) {
                ++r.transmitted_thermal;
                r.transmitted_thermal_w += 1.0;
            }
            break;
        case Fate::kReflected:
            ++r.reflected;
            r.reflected_w += 1.0;
            r.reflected_w2 += 1.0;
            if (exit_e < kThermalCutoffEv) {
                ++r.reflected_thermal;
                r.reflected_thermal_w += 1.0;
            }
            break;
        case Fate::kAbsorbed:
            ++r.absorbed;
            r.absorbed_w += 1.0;
            r.absorbed_w2 += 1.0;
            break;
        case Fate::kLost:
            ++r.lost;
            r.absorbed_w += 1.0;  // lost folds into absorption(), keep parity.
            r.absorbed_w2 += 1.0;
            break;
    }
}

}  // namespace

template <typename SampleEnergy>
TransportResult SlabTransport::run_histories(
    SampleEnergy&& sample, std::uint64_t n, stats::Rng& rng, unsigned threads,
    const std::function<void(stats::Rng&, double*, std::uint32_t)>& block)
    const {
    const core::obs::Span span("transport.slab", "transport");
    TransportResult result;
    if (config_.mode == TransportMode::kImplicitCapture) {
        // One stateless kernel shared by every chunk worker; each worker
        // feeds its own RNG stream and reduction-local result.
        const SlabBatchKernel kernel(material_, xs_, thickness_, config_);
        const SlabBatchKernel::SourceSampler source = sample;
        const SlabBatchKernel::SourceBlockSampler block_source = block;
        result = core::parallel::parallel_for_reduce<TransportResult>(
            n, threads, rng,
            [&kernel, &source, &block_source](std::uint64_t,
                                              std::uint64_t count,
                                              stats::Rng& stream) {
                TransportResult r;
                kernel.run(source, block_source, count, stream, r);
                return r;
            },
            [](TransportResult& acc, const TransportResult& p) {
                acc.merge(p);
            },
            config_.cancel);
    } else {
        const core::parallel::CancelToken* cancel = config_.cancel;
        result = core::parallel::parallel_for_reduce<TransportResult>(
            n, threads, rng,
            [this, &sample, cancel](std::uint64_t, std::uint64_t count,
                                    stats::Rng& stream) {
                TransportResult r;
                for (std::uint64_t i = 0; i < count; ++i) {
                    if (cancel != nullptr && (i & 0xFFFu) == 0xFFFu) {
                        cancel->throw_if_cancelled();
                    }
                    double exit_e = 0.0;
                    std::uint64_t collisions = 0;
                    const Fate fate = transport_one(sample(stream), stream,
                                                    &exit_e, &collisions);
                    record(r, fate, exit_e, collisions);
                }
                return r;
            },
            [](TransportResult& acc, const TransportResult& p) {
                acc.merge(p);
            },
            config_.cancel);
    }

    // Batch-granularity telemetry: a handful of relaxed adds per run, never
    // per history or per collision.
    namespace obs = core::obs;
    static auto& histories = obs::Registry::global().counter("transport.histories");
    static auto& collisions = obs::Registry::global().counter("transport.collisions");
    static auto& table_collisions =
        obs::Registry::global().counter("transport.collisions_xs_table");
    static auto& exact_collisions =
        obs::Registry::global().counter("transport.collisions_xs_exact");
    static auto& runs = obs::Registry::global().counter("transport.runs");
    static auto& compactions =
        obs::Registry::global().counter("transport.compactions");
    static auto& roulette_kills =
        obs::Registry::global().counter("transport.roulette_kills");
    static auto& roulette_survivals =
        obs::Registry::global().counter("transport.roulette_survivals");
    static auto& bank_events =
        obs::Registry::global().counter("transport.bank_events");
    static auto& simd_tier = obs::Registry::global().gauge("simd.tier");
    histories.add(result.total);
    collisions.add(result.collisions);
    (config_.use_xs_table ? table_collisions : exact_collisions)
        .add(result.collisions);
    runs.add(1);
    compactions.add(result.compactions);
    roulette_kills.add(result.roulette_kills);
    roulette_survivals.add(result.roulette_survivals);
    bank_events.add(result.bank_events);
    if (config_.mode == TransportMode::kImplicitCapture) {
        // Mirror the kernel's dispatch: the exact-formula path has no
        // batched lookups, so it always runs the scalar tier.
        const auto tier = config_.use_xs_table
                              ? core::simd::resolve(config_.simd)
                              : core::simd::Tier::kScalar;
        simd_tier.set(core::simd::tier_index(tier));
    }
    return result;
}

TransportResult SlabTransport::run_monoenergetic(double energy_ev,
                                                 std::uint64_t n,
                                                 stats::Rng& rng) const {
    return run_histories(
        [energy_ev](stats::Rng&) { return energy_ev; }, n, rng,
        config_.threads,
        [energy_ev](stats::Rng&, double* out, std::uint32_t count) {
            std::fill_n(out, count, energy_ev);
        });
}

TransportResult SlabTransport::run_spectrum(const Spectrum& spectrum,
                                            std::uint64_t n,
                                            stats::Rng& rng) const {
    // Build any lazy sampling tables before the fan-out: workers share the
    // spectrum concurrently.
    spectrum.prepare_sampling();
    if (config_.mode == TransportMode::kImplicitCapture) {
        // The batched kernel draws its sources through the O(1) alias table.
        // Identically distributed to sample_energy, different draw sequence —
        // which the implicit path is allowed, since it is only statistically
        // tied to analog anyway.
        return run_histories(
            [&spectrum](stats::Rng& stream) {
                return spectrum.sample_energy_fast(stream);
            },
            n, rng, config_.threads,
            [&spectrum](stats::Rng& stream, double* out, std::uint32_t count) {
                spectrum.sample_energy_block(stream, out, count);
            });
    }
    return run_histories(
        [&spectrum](stats::Rng& stream) { return spectrum.sample_energy(stream); },
        n, rng, config_.threads);
}

double SlabTransport::analytic_transmission(double energy_ev) const {
    return std::exp(-material_.sigma_total(energy_ev) * thickness_);
}

void TransportResult::merge(const TransportResult& other) noexcept {
    transmitted += other.transmitted;
    reflected += other.reflected;
    absorbed += other.absorbed;
    lost += other.lost;
    transmitted_thermal += other.transmitted_thermal;
    reflected_thermal += other.reflected_thermal;
    total += other.total;
    collisions += other.collisions;
    compactions += other.compactions;
    roulette_kills += other.roulette_kills;
    roulette_survivals += other.roulette_survivals;
    bank_events += other.bank_events;
    transmitted_w += other.transmitted_w;
    reflected_w += other.reflected_w;
    absorbed_w += other.absorbed_w;
    transmitted_thermal_w += other.transmitted_thermal_w;
    reflected_thermal_w += other.reflected_thermal_w;
    transmitted_w2 += other.transmitted_w2;
    reflected_w2 += other.reflected_w2;
    absorbed_w2 += other.absorbed_w2;
}

EstimatorStats estimator_from_sums(double sum, double sum_sq,
                                   std::uint64_t n_histories) noexcept {
    EstimatorStats s;
    if (n_histories == 0) return s;
    const auto n = static_cast<double>(n_histories);
    s.mean = sum / n;
    // Variance of the mean: (E[w^2] - E[w]^2) / n, clamped against the
    // cancellation noise of nearly-deterministic tallies.
    s.variance = std::max(0.0, (sum_sq / n - s.mean * s.mean) / n);
    s.rel_std_error = s.mean > 0.0 ? std::sqrt(s.variance) / s.mean : 0.0;
    return s;
}

EstimatorStats TransportResult::estimate(double sum,
                                         double sum_sq) const noexcept {
    return estimator_from_sums(sum, sum_sq, total);
}

}  // namespace tnr::physics

#include "physics/transport.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>
#include <stdexcept>

#include "physics/cross_sections.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

SlabTransport::SlabTransport(Material material, double thickness_cm,
                             TransportConfig config)
    : material_(std::move(material)), thickness_(thickness_cm), config_(config) {
    if (!(thickness_cm > 0.0)) {
        throw std::invalid_argument("SlabTransport: thickness must be > 0");
    }
}

Fate SlabTransport::transport_one(double energy_ev, stats::Rng& rng,
                                  double* exit_energy_ev) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;  // entering along +x.
    const auto& comps = material_.components();

    for (std::uint32_t scatter = 0; scatter < config_.max_scatters; ++scatter) {
        const double sigma_s = material_.sigma_scatter(e);
        const double sigma_a = material_.sigma_absorb(e);
        const double sigma_t = sigma_s + sigma_a;
        if (sigma_t <= 0.0) {
            // Transparent medium: fly straight out.
            if (exit_energy_ev) *exit_energy_ev = e;
            return mu > 0.0 ? Fate::kTransmitted : Fate::kReflected;
        }

        const double path = rng.exponential(sigma_t);
        x += mu * path;
        if (x >= thickness_) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kTransmitted;
        }
        if (x <= 0.0) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kReflected;
        }

        // Interaction: absorption vs scattering.
        if (rng.uniform() * sigma_t < sigma_a) return Fate::kAbsorbed;

        // Choose the scattering nuclide proportional to its macroscopic
        // elastic cross section at the current energy.
        double pick = rng.uniform() * sigma_s;
        double a = comps.front().mass_number;
        for (const auto& c : comps) {
            const double micro = c.sigma_elastic_barns /
                                 (1.0 + e / c.elastic_half_energy_ev);
            const double contrib = c.number_density * micro * kBarnToCm2;
            if (pick < contrib) {
                a = c.mass_number;
                break;
            }
            pick -= contrib;
        }

        if (e > config_.thermal_floor_ev) {
            // Isotropic CM elastic scatter: E'/E = (A^2 + 1 + 2A*mu_cm)/(A+1)^2.
            const double mu_cm = rng.uniform(-1.0, 1.0);
            const double a1 = a + 1.0;
            e *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
        }
        if (e <= config_.thermal_floor_ev) {
            // In equilibrium with the medium: Maxwellian energy (Gamma(2,kT)).
            e = config_.maxwellian_kt_ev *
                (rng.exponential(1.0) + rng.exponential(1.0));
        }

        // Isotropic lab re-direction after scattering (1-D projection).
        mu = rng.uniform(-1.0, 1.0);
        if (mu == 0.0) mu = 1e-12;
    }
    return Fate::kLost;
}

namespace {

void record(TransportResult& r, Fate fate, double exit_e) {
    ++r.total;
    switch (fate) {
        case Fate::kTransmitted:
            ++r.transmitted;
            if (exit_e < kThermalCutoffEv) ++r.transmitted_thermal;
            break;
        case Fate::kReflected:
            ++r.reflected;
            if (exit_e < kThermalCutoffEv) ++r.reflected_thermal;
            break;
        case Fate::kAbsorbed:
            ++r.absorbed;
            break;
        case Fate::kLost:
            ++r.lost;
            break;
    }
}

}  // namespace

TransportResult SlabTransport::run_monoenergetic(double energy_ev,
                                                 std::uint64_t n,
                                                 stats::Rng& rng) const {
    TransportResult result;
    for (std::uint64_t i = 0; i < n; ++i) {
        double exit_e = 0.0;
        const Fate fate = transport_one(energy_ev, rng, &exit_e);
        record(result, fate, exit_e);
    }
    return result;
}

TransportResult SlabTransport::run_spectrum(const Spectrum& spectrum,
                                            std::uint64_t n,
                                            stats::Rng& rng) const {
    TransportResult result;
    for (std::uint64_t i = 0; i < n; ++i) {
        double exit_e = 0.0;
        const double e = spectrum.sample_energy(rng);
        const Fate fate = transport_one(e, rng, &exit_e);
        record(result, fate, exit_e);
    }
    return result;
}

double SlabTransport::analytic_transmission(double energy_ev) const {
    return std::exp(-material_.sigma_total(energy_ev) * thickness_);
}

void TransportResult::merge(const TransportResult& other) noexcept {
    transmitted += other.transmitted;
    reflected += other.reflected;
    absorbed += other.absorbed;
    lost += other.lost;
    transmitted_thermal += other.transmitted_thermal;
    reflected_thermal += other.reflected_thermal;
    total += other.total;
}

TransportResult SlabTransport::run_monoenergetic_parallel(
    double energy_ev, std::uint64_t n, stats::Rng& rng,
    unsigned threads) const {
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    threads = static_cast<unsigned>(
        std::min<std::uint64_t>(threads, std::max<std::uint64_t>(1, n)));

    // Derive one decorrelated stream per worker up front (split() mutates
    // the parent, so do it serially).
    std::vector<stats::Rng> streams;
    streams.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) streams.push_back(rng.split());

    std::vector<TransportResult> partials(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const std::uint64_t chunk = n / threads;
    for (unsigned t = 0; t < threads; ++t) {
        const std::uint64_t count =
            (t + 1 == threads) ? n - chunk * (threads - 1) : chunk;
        workers.emplace_back([this, energy_ev, count, &streams, &partials, t] {
            partials[t] = run_monoenergetic(energy_ev, count, streams[t]);
        });
    }
    for (auto& w : workers) w.join();

    TransportResult merged;
    for (const auto& p : partials) merged.merge(p);
    return merged;
}

}  // namespace tnr::physics

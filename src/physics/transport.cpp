#include "physics/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/parallel_for.hpp"
#include "physics/cross_sections.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

SlabTransport::SlabTransport(Material material, double thickness_cm,
                             TransportConfig config)
    : material_(std::move(material)),
      thickness_(thickness_cm),
      config_(config),
      xs_(material_) {
    if (!(thickness_cm > 0.0)) {
        throw std::invalid_argument("SlabTransport: thickness must be > 0");
    }
}

Fate SlabTransport::transport_one(double energy_ev, stats::Rng& rng,
                                  double* exit_energy_ev,
                                  std::uint64_t* collisions) const {
    double e = energy_ev;
    double x = 0.0;
    double mu = 1.0;  // entering along +x.
    const bool use_table = config_.use_xs_table;

    for (std::uint32_t scatter = 0; scatter < config_.max_scatters; ++scatter) {
        if (collisions) *collisions = scatter;
        MaterialXsTable::Lookup lk;
        double sigma_s;
        double sigma_a;
        if (use_table) {
            lk = xs_.lookup(e);
            sigma_s = lk.sigma_scatter;
            sigma_a = lk.sigma_absorb;
        } else {
            sigma_s = material_.sigma_scatter(e);
            sigma_a = material_.sigma_absorb(e);
        }
        const double sigma_t = sigma_s + sigma_a;
        if (sigma_t <= 0.0) {
            // Transparent medium: fly straight out.
            if (exit_energy_ev) *exit_energy_ev = e;
            return mu > 0.0 ? Fate::kTransmitted : Fate::kReflected;
        }

        const double path = rng.exponential(sigma_t);
        x += mu * path;
        if (x >= thickness_) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kTransmitted;
        }
        if (x <= 0.0) {
            if (exit_energy_ev) *exit_energy_ev = e;
            return Fate::kReflected;
        }

        // Interaction: absorption vs scattering.
        if (rng.uniform() * sigma_t < sigma_a) return Fate::kAbsorbed;

        // Choose the scattering nuclide proportional to its macroscopic
        // elastic cross section at the current energy.
        const double a = use_table
                             ? xs_.sample_scatter_mass(lk, rng)
                             : material_.sample_scatter_mass(e, sigma_s, rng);

        if (e > config_.thermal_floor_ev) {
            // Isotropic CM elastic scatter: E'/E = (A^2 + 1 + 2A*mu_cm)/(A+1)^2.
            const double mu_cm = rng.uniform(-1.0, 1.0);
            const double a1 = a + 1.0;
            e *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
        }
        if (e <= config_.thermal_floor_ev) {
            // In equilibrium with the medium: Maxwellian energy (Gamma(2,kT)).
            e = config_.maxwellian_kt_ev *
                (rng.exponential(1.0) + rng.exponential(1.0));
        }

        // Isotropic lab re-direction after scattering (1-D projection).
        mu = rng.uniform(-1.0, 1.0);
        if (mu == 0.0) mu = 1e-12;
    }
    return Fate::kLost;
}

namespace {

void record(TransportResult& r, Fate fate, double exit_e,
            std::uint64_t collisions) {
    ++r.total;
    r.collisions += collisions;
    switch (fate) {
        case Fate::kTransmitted:
            ++r.transmitted;
            if (exit_e < kThermalCutoffEv) ++r.transmitted_thermal;
            break;
        case Fate::kReflected:
            ++r.reflected;
            if (exit_e < kThermalCutoffEv) ++r.reflected_thermal;
            break;
        case Fate::kAbsorbed:
            ++r.absorbed;
            break;
        case Fate::kLost:
            ++r.lost;
            break;
    }
}

}  // namespace

template <typename SampleEnergy>
TransportResult SlabTransport::run_histories(SampleEnergy&& sample,
                                             std::uint64_t n, stats::Rng& rng,
                                             unsigned threads) const {
    const core::obs::Span span("transport.slab", "transport");
    TransportResult result = core::parallel::parallel_for_reduce<TransportResult>(
        n, threads, rng,
        [this, &sample](std::uint64_t, std::uint64_t count,
                        stats::Rng& stream) {
            TransportResult r;
            for (std::uint64_t i = 0; i < count; ++i) {
                double exit_e = 0.0;
                std::uint64_t collisions = 0;
                const Fate fate =
                    transport_one(sample(stream), stream, &exit_e, &collisions);
                record(r, fate, exit_e, collisions);
            }
            return r;
        },
        [](TransportResult& acc, const TransportResult& p) { acc.merge(p); });

    // Batch-granularity telemetry: a handful of relaxed adds per run, never
    // per history or per collision.
    namespace obs = core::obs;
    static auto& histories = obs::Registry::global().counter("transport.histories");
    static auto& collisions = obs::Registry::global().counter("transport.collisions");
    static auto& table_collisions =
        obs::Registry::global().counter("transport.collisions_xs_table");
    static auto& exact_collisions =
        obs::Registry::global().counter("transport.collisions_xs_exact");
    static auto& runs = obs::Registry::global().counter("transport.runs");
    histories.add(result.total);
    collisions.add(result.collisions);
    (config_.use_xs_table ? table_collisions : exact_collisions)
        .add(result.collisions);
    runs.add(1);
    return result;
}

TransportResult SlabTransport::run_monoenergetic(double energy_ev,
                                                 std::uint64_t n,
                                                 stats::Rng& rng) const {
    return run_histories([energy_ev](stats::Rng&) { return energy_ev; }, n,
                         rng, config_.threads);
}

TransportResult SlabTransport::run_spectrum(const Spectrum& spectrum,
                                            std::uint64_t n,
                                            stats::Rng& rng) const {
    // Build any lazy inverse-CDF sampling table before the fan-out: workers
    // share the spectrum concurrently.
    spectrum.prepare_sampling();
    return run_histories(
        [&spectrum](stats::Rng& stream) { return spectrum.sample_energy(stream); },
        n, rng, config_.threads);
}

double SlabTransport::analytic_transmission(double energy_ev) const {
    return std::exp(-material_.sigma_total(energy_ev) * thickness_);
}

void TransportResult::merge(const TransportResult& other) noexcept {
    transmitted += other.transmitted;
    reflected += other.reflected;
    absorbed += other.absorbed;
    lost += other.lost;
    transmitted_thermal += other.transmitted_thermal;
    reflected_thermal += other.reflected_thermal;
    total += other.total;
    collisions += other.collisions;
}

TransportResult SlabTransport::run_monoenergetic_parallel(
    double energy_ev, std::uint64_t n, stats::Rng& rng,
    unsigned threads) const {
    // Deprecated forwarding wrapper: same (seed, threads) stream-splitting
    // contract as before, now executed on the shared pool.
    return run_histories([energy_ev](stats::Rng&) { return energy_ev; }, n,
                         rng, threads);
}

}  // namespace tnr::physics

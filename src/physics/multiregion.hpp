#pragma once
// Multi-region 1-D Monte Carlo transport: a stack of material layers along
// x, with free streaming through vacuum gaps and full back-scattering
// between regions. This is the engine for geometry questions a single slab
// cannot answer:
//
//   * the Tin-II water experiment *derived*: fast neutrons crossing a water
//     layer above the detector emerge partly thermalized — the thermal
//     field below the box grows by a mechanistic, not assumed, factor;
//   * layered shields (Cd sheet on borated poly) and their ordering;
//   * the DUT stack with scattering between board and heatsink.

#include <cstdint>
#include <string>
#include <vector>

#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

/// One layer of the stack. A layer with `vacuum == true` is a gap: free
/// streaming, no interactions (material is ignored).
struct Layer {
    Material material;
    double thickness_cm = 0.0;
    bool vacuum = false;

    static Layer gap(double thickness_cm);
    static Layer slab(Material material, double thickness_cm);
};

/// Where and how a transported neutron ended.
struct LayeredFate {
    Fate fate = Fate::kAbsorbed;
    double exit_energy_ev = 0.0;
    /// Layer index where the neutron was absorbed (valid for kAbsorbed).
    std::size_t absorbed_layer = 0;
    /// Scattering collisions along this history (telemetry).
    std::uint64_t collisions = 0;
};

/// Counts for a layered-transport run.
struct LayeredResult {
    std::uint64_t total = 0;
    std::uint64_t transmitted = 0;
    std::uint64_t transmitted_thermal = 0;
    std::uint64_t reflected = 0;
    std::uint64_t reflected_thermal = 0;
    std::uint64_t absorbed = 0;
    std::uint64_t lost = 0;
    /// Scattering collisions summed over all histories (telemetry).
    std::uint64_t collisions = 0;
    /// Kernel health telemetry, mirroring TransportResult: all zero in
    /// analog mode, tallied off the RNG path in implicit-capture mode.
    std::uint64_t compactions = 0;
    std::uint64_t roulette_kills = 0;
    std::uint64_t roulette_survivals = 0;
    std::uint64_t bank_events = 0;
    std::vector<std::uint64_t> absorbed_by_layer;

    /// Weighted tallies mirroring TransportResult: per-history contributions
    /// plus their squares for the variance of the mean. Analog histories
    /// contribute 0 or 1; the implicit-capture loop banks fractional capture
    /// weight at every collision. `absorbed_w_by_layer` attributes that
    /// weight to the layer where it was deposited (sum only, no variance).
    double transmitted_w = 0.0;
    double reflected_w = 0.0;
    double absorbed_w = 0.0;
    double transmitted_thermal_w = 0.0;
    double reflected_thermal_w = 0.0;
    double transmitted_w2 = 0.0;
    double reflected_w2 = 0.0;
    double absorbed_w2 = 0.0;
    std::vector<double> absorbed_w_by_layer;

    [[nodiscard]] EstimatorStats transmission_estimate() const noexcept {
        return estimator_from_sums(transmitted_w, transmitted_w2, total);
    }
    [[nodiscard]] EstimatorStats reflection_estimate() const noexcept {
        return estimator_from_sums(reflected_w, reflected_w2, total);
    }
    [[nodiscard]] EstimatorStats absorption_estimate() const noexcept {
        return estimator_from_sums(absorbed_w, absorbed_w2, total);
    }

    [[nodiscard]] double transmission() const noexcept {
        return total ? static_cast<double>(transmitted) / static_cast<double>(total)
                     : 0.0;
    }
    [[nodiscard]] double thermal_transmission() const noexcept {
        return total ? static_cast<double>(transmitted_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }
    [[nodiscard]] double thermal_albedo() const noexcept {
        return total ? static_cast<double>(reflected_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /// Accumulates another result (parallel-reduction merge). Layer vectors
    /// must have the same size (or one side empty).
    void merge(const LayeredResult& other);
};

/// Transport through an ordered stack of layers (front face of layer 0 at
/// x=0; neutrons enter travelling +x).
class LayeredTransport {
public:
    explicit LayeredTransport(std::vector<Layer> layers,
                              TransportConfig config = {});

    [[nodiscard]] const std::vector<Layer>& layers() const noexcept {
        return layers_;
    }
    [[nodiscard]] double total_thickness() const noexcept { return total_; }

    /// Transports one neutron of the given energy.
    [[nodiscard]] LayeredFate transport_one(double energy_ev,
                                            stats::Rng& rng) const;

    /// Transports `n` histories on config.threads workers of the shared pool
    /// (1 = serial, bitwise identical to the historical loop).
    [[nodiscard]] LayeredResult run_monoenergetic(double energy_ev,
                                                  std::uint64_t n,
                                                  stats::Rng& rng) const;

    [[nodiscard]] LayeredResult run_spectrum(const Spectrum& spectrum,
                                             std::uint64_t n,
                                             stats::Rng& rng) const;

private:
    [[nodiscard]] std::size_t layer_at(double x) const;

    /// One implicit-capture (weighted) history, tallied straight into `r`.
    /// Same geometry walk as transport_one; collisions deposit capture
    /// weight instead of killing the history, Russian roulette trims the
    /// survivors.
    void transport_one_implicit(double energy_ev, stats::Rng& rng,
                                LayeredResult& r) const;

    /// Batched implicit-capture walk: advances a chunk of lanes in lockstep,
    /// bucketing the in-flight lanes by layer so each material's
    /// cross-section sweep runs through MaterialXsTable::lookup_batch (and
    /// the scatter draws through the RNG-block facade) on the given SIMD
    /// tier. Statistically equivalent to transport_one_implicit — same
    /// physics per step, different draw assignment — so it only runs on the
    /// AVX2 tier; the scalar tier keeps the per-history loop bitwise.
    void run_batch_implicit(
        const std::function<double(stats::Rng&)>& sample,
        const std::function<void(stats::Rng&, double*, std::uint32_t)>& block,
        std::uint64_t count, stats::Rng& rng, core::simd::Tier tier,
        LayeredResult& r) const;

    template <typename SampleEnergy>
    [[nodiscard]] LayeredResult run_histories(
        SampleEnergy&& sample, std::uint64_t n, stats::Rng& rng,
        const std::function<void(stats::Rng&, double*, std::uint32_t)>&
            block = {}) const;

    std::vector<Layer> layers_;
    std::vector<double> boundaries_;  ///< layer upper x, size = layers.
    std::vector<MaterialXsTable> xs_;  ///< one per layer (unused for vacuum).
    double total_ = 0.0;
    TransportConfig config_;
};

}  // namespace tnr::physics

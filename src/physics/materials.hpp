#pragma once
// Material compositions for the moderation / shielding studies: water and
// concrete (the data-center materials the paper's detector campaign targets),
// cadmium and borated plastic (the shields §V discusses), polyethylene, air
// and silicon.

#include <string>
#include <vector>

#include "physics/units.hpp"

namespace tnr::stats {
class Rng;
}

namespace tnr::physics {

/// A nuclide species inside a material, with the constants the 1-D transport
/// model needs. Cross sections here are energy-independent elastic values
/// plus a thermal-point absorption extrapolated by 1/v (or the Cd special
/// case) at transport time.
struct NuclideComponent {
    std::string symbol;            ///< e.g. "H", "O", "Si".
    double mass_number = 1.0;      ///< A, for scattering kinematics.
    double number_density = 0.0;   ///< atoms / cm^3.
    double sigma_elastic_barns = 0.0;   ///< thermal/epithermal elastic sigma.
    double sigma_absorb_thermal_barns = 0.0;  ///< capture at 25.3 meV.
    bool cadmium_like = false;     ///< use the Cd resonance-edge model.
    /// Elastic cross sections fall off toward MeV energies; modelled as
    /// sigma_el(E) = sigma_el / (1 + E / half_energy). Hydrogen's drops the
    /// earliest (2.6e5 eV); heavier nuclides hold on to ~2e6 eV.
    double elastic_half_energy_ev = 2.0e6;

    /// Microscopic elastic cross section [barns] at energy E — the single
    /// source of the roll-off formula above; Material::sigma_scatter, the
    /// transport nuclide pick, and MaterialXsTable all go through here.
    [[nodiscard]] double micro_elastic_barns(double energy_ev) const noexcept {
        return sigma_elastic_barns / (1.0 + energy_ev / elastic_half_energy_ev);
    }

    /// This component's macroscopic elastic contribution [1/cm] at energy E.
    [[nodiscard]] double macro_elastic_per_cm(double energy_ev) const noexcept {
        return number_density * micro_elastic_barns(energy_ev) * kBarnToCm2;
    }
};

/// A homogeneous material slab composition.
class Material {
public:
    Material(std::string name, std::vector<NuclideComponent> components);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<NuclideComponent>& components() const noexcept {
        return components_;
    }

    /// Macroscopic elastic-scattering cross section [1/cm] at energy E.
    [[nodiscard]] double sigma_scatter(double energy_ev) const;

    /// Macroscopic absorption cross section [1/cm] at energy E.
    [[nodiscard]] double sigma_absorb(double energy_ev) const;

    /// Total macroscopic cross section [1/cm].
    [[nodiscard]] double sigma_total(double energy_ev) const {
        return sigma_scatter(energy_ev) + sigma_absorb(energy_ev);
    }

    /// Mean free path [cm] at energy E.
    [[nodiscard]] double mean_free_path(double energy_ev) const;

    /// Flux-averaged log-energy decrement (moderating power proxy).
    [[nodiscard]] double average_xi() const;

    /// Samples the mass number of the nuclide a neutron elastically scatters
    /// off at energy E, proportional to each component's macroscopic elastic
    /// cross section. `sigma_scatter_total` must be sigma_scatter(E) (passed
    /// in because the transport loop already has it). Draws exactly one
    /// rng.uniform().
    [[nodiscard]] double sample_scatter_mass(double energy_ev,
                                             double sigma_scatter_total,
                                             stats::Rng& rng) const;

    // --- Library --------------------------------------------------------------
    static Material water();           ///< H2O, 1.0 g/cm^3.
    static Material concrete();        ///< ordinary Portland concrete, 2.3 g/cm^3.
    static Material polyethylene();    ///< CH2, 0.94 g/cm^3.
    static Material cadmium();         ///< Cd metal, 8.65 g/cm^3.
    static Material borated_poly();    ///< 5 wt-% natural boron in polyethylene.
    static Material air();             ///< sea-level air.
    static Material silicon();         ///< crystalline Si, 2.33 g/cm^3.
    static Material fr4();             ///< PCB laminate (glass epoxy), 1.85 g/cm^3.
    static Material aluminum();        ///< heatsink stock, 2.70 g/cm^3.

private:
    std::string name_;
    std::vector<NuclideComponent> components_;
};

}  // namespace tnr::physics

#pragma once
// Units and physical constants. Internal conventions:
//   energy      : eV
//   microscopic cross section : barn (1 b = 1e-24 cm^2)
//   macroscopic cross section : 1/cm
//   flux        : n / cm^2 / s   (differential: n / cm^2 / s / eV)
//   fluence     : n / cm^2
//   device cross section : cm^2
//   FIT         : failures per 1e9 device-hours

namespace tnr::physics {

// --- Energy scale -----------------------------------------------------------
inline constexpr double kEv = 1.0;
inline constexpr double kKeV = 1.0e3;
inline constexpr double kMeV = 1.0e6;
inline constexpr double kGeV = 1.0e9;

/// Thermal reference energy: kT at 293.6 K (2200 m/s neutrons). Microscopic
/// thermal cross sections are quoted at this energy.
inline constexpr double kThermalReferenceEv = 0.0253;

/// The paper's boundary between "thermal" and everything faster (E < 0.5 eV),
/// which is also the cadmium cutoff energy.
inline constexpr double kThermalCutoffEv = 0.5;

/// High-energy threshold used for atmospheric-like flux quotes (>10 MeV).
inline constexpr double kHighEnergyThresholdEv = 10.0 * kMeV;

// --- Cross sections ---------------------------------------------------------
inline constexpr double kBarnToCm2 = 1.0e-24;

// --- Reference microscopic thermal cross sections (at 25.3 meV) -------------
/// 10B(n,alpha)7Li capture. Products: alpha 1.47 MeV + 7Li 0.84 MeV.
inline constexpr double kB10CaptureBarns = 3837.0;
/// 3He(n,p)3H — the detection reaction in He-3 proportional tubes.
inline constexpr double kHe3CaptureBarns = 5330.0;
/// Natural cadmium absorption (dominated by 113Cd).
inline constexpr double kCdCaptureBarns = 2450.0;
/// Hydrogen (n,gamma) absorption.
inline constexpr double kH1CaptureBarns = 0.332;

/// Fraction of natural boron that is 10B (19.9 at-%).
inline constexpr double kNaturalB10Fraction = 0.199;

// --- 10B(n,alpha) reaction products -----------------------------------------
inline constexpr double kAlphaEnergyEv = 1.47 * kMeV;
inline constexpr double kLi7EnergyEv = 0.84 * kMeV;
/// Branch with the 478 keV gamma (ground-state branch carries full energy).
inline constexpr double kB10ExcitedBranch = 0.94;

// --- Time -------------------------------------------------------------------
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kHoursPerBillion = 1.0e9;  ///< FIT normalization.

// --- Avogadro ---------------------------------------------------------------
inline constexpr double kAvogadro = 6.02214076e23;  ///< 1/mol

}  // namespace tnr::physics

#pragma once
// Post-collision elastic-scatter kinematics shared by every scalar
// transport walk (analog slab, analog/implicit layered, and the batched
// kernel's scalar tier). One history step after the scattering nuclide has
// been sampled:
//
//   * above the thermal floor: isotropic centre-of-mass elastic scatter,
//     E'/E = (A^2 + 1 + 2 A mu_cm) / (A+1)^2;
//   * at or below the floor: the neutron re-equilibrates with the medium —
//     energy resampled from a room-temperature Maxwellian (Gamma(2, kT) as
//     the sum of two unit exponentials);
//   * isotropic lab re-direction (1-D projection), with the mu == 0 lane
//     nudged off the exactly-perpendicular singularity.
//
// The draw order (mu_cm, [two Maxwellian exponentials], mu) and the exact
// arithmetic are part of the bitwise-reproducibility contract of the scalar
// paths: tests pin fixed-seed tallies, so any change here is a breaking
// change, not a refactor.

#include "stats/rng.hpp"

namespace tnr::physics {

inline void scatter_elastic(double a, double thermal_floor_ev, double kt_ev,
                            double& e, double& mu, stats::Rng& rng) noexcept {
    if (e > thermal_floor_ev) {
        const double mu_cm = rng.uniform(-1.0, 1.0);
        const double a1 = a + 1.0;
        e *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
    }
    if (e <= thermal_floor_ev) {
        e = kt_ev * (rng.exponential(1.0) + rng.exponential(1.0));
    }
    mu = rng.uniform(-1.0, 1.0);
    if (mu == 0.0) mu = 1e-12;
}

}  // namespace tnr::physics

// AVX2 tier of MaterialXsTable::lookup_batch / sample_scatter_mass_batch.
// Compiled with per-function target attributes (no global -mavx2); the
// whole file is inert when the build or platform lacks the AVX2 units.
//
// The vector locate mirrors the scalar lookup(): clamp, vector log,
// multiply-and-floor cell index, a gather through accel_, then bound
// gathers on ln_energy_. Lanes whose accel node does not directly bracket
// ln E — cells holding cadmium's inserted kink nodes, or an energy landing
// exactly on a cell edge — fail the bracket test and are recomputed with
// the scalar lookup(); that keeps the vector body branch-free while the
// kink cells keep their exact short-scan semantics.

#include "physics/xs_table.hpp"

#if TNR_SIMD_X86_AVX2

#include <immintrin.h>

#include "core/simd/vmath_avx2.hpp"

namespace tnr::physics {

__attribute__((target("avx2,fma")))
void MaterialXsTable::lookup_batch_avx2(const double* energy_ev,
                                        std::size_t n, double* sigma_s,
                                        double* sigma_a, std::uint32_t* node,
                                        double* frac) const noexcept {
    const double* ln_grid = ln_energy_.data();
    const double* ss = sigma_s_.data();
    const double* sa = sigma_a_.data();
    const auto* accel = reinterpret_cast<const int*>(accel_.data());

    const __m256d v_min = _mm256_set1_pd(min_energy_ev());
    const __m256d v_max = _mm256_set1_pd(max_energy_ev());
    const __m256d v_ln_min = _mm256_set1_pd(ln_e_min_);
    const __m256d v_inv_w = _mm256_set1_pd(inv_cell_width_);
    const __m256d v_cell_max =
        _mm256_set1_pd(static_cast<double>(accel_.size() - 1));
    const __m256d v_zero = _mm256_setzero_pd();
    const __m256d v_one = _mm256_set1_pd(1.0);

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d e = _mm256_loadu_pd(energy_ev + i);
        e = _mm256_min_pd(_mm256_max_pd(e, v_min), v_max);
        const __m256d ln_e = core::simd::v_log(e);

        __m256d cell_f =
            _mm256_mul_pd(_mm256_sub_pd(ln_e, v_ln_min), v_inv_w);
        cell_f = _mm256_min_pd(_mm256_max_pd(cell_f, v_zero), v_cell_max);
        const __m128i cell = _mm256_cvttpd_epi32(cell_f);

        const __m128i lo = _mm_i32gather_epi32(accel, cell, 4);
        const __m128i hi = _mm_add_epi32(lo, _mm_set1_epi32(1));
        const __m256d ln_lo = _mm256_i32gather_pd(ln_grid, lo, 8);
        const __m256d ln_hi = _mm256_i32gather_pd(ln_grid, hi, 8);

        // Bracket test: accel's node is the answer iff ln_lo <= ln_e < ln_hi.
        const __m256d ok =
            _mm256_and_pd(_mm256_cmp_pd(ln_lo, ln_e, _CMP_LE_OQ),
                          _mm256_cmp_pd(ln_e, ln_hi, _CMP_LT_OQ));

        __m256d fr = _mm256_div_pd(_mm256_sub_pd(ln_e, ln_lo),
                                   _mm256_sub_pd(ln_hi, ln_lo));
        fr = _mm256_min_pd(_mm256_max_pd(fr, v_zero), v_one);

        const __m256d ss_lo = _mm256_i32gather_pd(ss, lo, 8);
        const __m256d ss_hi = _mm256_i32gather_pd(ss, hi, 8);
        const __m256d sa_lo = _mm256_i32gather_pd(sa, lo, 8);
        const __m256d sa_hi = _mm256_i32gather_pd(sa, hi, 8);

        _mm256_storeu_pd(sigma_s + i,
                         _mm256_fmadd_pd(fr, _mm256_sub_pd(ss_hi, ss_lo),
                                         ss_lo));
        _mm256_storeu_pd(sigma_a + i,
                         _mm256_fmadd_pd(fr, _mm256_sub_pd(sa_hi, sa_lo),
                                         sa_lo));
        _mm256_storeu_pd(frac + i, fr);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(node + i), lo);

        const int mask = _mm256_movemask_pd(ok);
        if (mask != 0xF) {
            for (int lane = 0; lane < 4; ++lane) {
                if (mask & (1 << lane)) continue;
                const Lookup lk = lookup(energy_ev[i + lane]);
                sigma_s[i + lane] = lk.sigma_scatter;
                sigma_a[i + lane] = lk.sigma_absorb;
                node[i + lane] = static_cast<std::uint32_t>(lk.node);
                frac[i + lane] = lk.frac;
            }
        }
    }
    for (; i < n; ++i) {
        const Lookup lk = lookup(energy_ev[i]);
        sigma_s[i] = lk.sigma_scatter;
        sigma_a[i] = lk.sigma_absorb;
        node[i] = static_cast<std::uint32_t>(lk.node);
        frac[i] = lk.frac;
    }
}

__attribute__((target("avx2,fma")))
void MaterialXsTable::sample_scatter_mass_batch_avx2(
    const std::uint32_t* node, const double* frac, const double* u,
    std::size_t n, double* mass) const noexcept {
    const double* cum = cum_elastic_.data();
    const int comps = static_cast<int>(components_);
    const __m256d last_mass = _mm256_set1_pd(mass_numbers_.back());

    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i nd =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(node + i));
        const __m128i base_lo = _mm_mullo_epi32(nd, _mm_set1_epi32(comps));
        const __m128i base_hi = _mm_add_epi32(base_lo, _mm_set1_epi32(comps));
        const __m256d fr = _mm256_loadu_pd(frac + i);
        const __m256d uu = _mm256_loadu_pd(u + i);

        __m256d m = last_mass;
        __m256d found = _mm256_setzero_pd();
        for (int c = 0; c + 1 < comps; ++c) {
            const __m128i off = _mm_set1_epi32(c);
            const __m256d cum_lo =
                _mm256_i32gather_pd(cum, _mm_add_epi32(base_lo, off), 8);
            const __m256d cum_hi =
                _mm256_i32gather_pd(cum, _mm_add_epi32(base_hi, off), 8);
            const __m256d cmix =
                _mm256_fmadd_pd(fr, _mm256_sub_pd(cum_hi, cum_lo), cum_lo);
            const __m256d take = _mm256_andnot_pd(
                found, _mm256_cmp_pd(uu, cmix, _CMP_LT_OQ));
            m = _mm256_blendv_pd(m, _mm256_set1_pd(mass_numbers_[c]), take);
            found = _mm256_or_pd(found, take);
        }
        _mm256_storeu_pd(mass + i, m);
    }
    for (; i < n; ++i) {
        const double* lo = &cum_elastic_[node[i] * components_];
        const double* hi = lo + components_;
        double m = mass_numbers_.back();
        for (std::size_t c = 0; c + 1 < components_; ++c) {
            const double cmix = lo[c] + frac[i] * (hi[c] - lo[c]);
            if (u[i] < cmix) {
                m = mass_numbers_[c];
                break;
            }
        }
        mass[i] = m;
    }
}

}  // namespace tnr::physics

#endif  // TNR_SIMD_X86_AVX2

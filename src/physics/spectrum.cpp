#include "physics/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/simd/rng_block.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

namespace {

/// Log-grid trapezoid integration of f over [lo, hi] with n panels.
double integrate_log_grid(const std::function<double(double)>& f, double lo,
                          double hi, std::size_t n) {
    if (!(lo > 0.0) || !(hi > lo)) return 0.0;
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / static_cast<double>(n);
    double sum = 0.0;
    double e_prev = lo;
    double f_prev = f(lo);
    for (std::size_t i = 1; i <= n; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        const double fe = f(e);
        sum += 0.5 * (f_prev + fe) * (e - e_prev);
        e_prev = e;
        f_prev = fe;
    }
    return sum;
}

constexpr std::size_t kIntegrationPanels = 4000;
constexpr std::size_t kSamplingTablePoints = 2048;

}  // namespace

// --- Spectrum base -----------------------------------------------------------

double Spectrum::integral_flux(double lo_ev, double hi_ev) const {
    lo_ev = std::max(lo_ev, min_energy_ev());
    hi_ev = std::min(hi_ev, max_energy_ev());
    if (!(hi_ev > lo_ev)) return 0.0;
    return integrate_log_grid([this](double e) { return flux_density(e); },
                              lo_ev, hi_ev, kIntegrationPanels);
}

double Spectrum::thermal_flux() const {
    return integral_flux(min_energy_ev(), kThermalCutoffEv);
}

double Spectrum::high_energy_flux() const {
    return integral_flux(kHighEnergyThresholdEv, max_energy_ev());
}

void Spectrum::ensure_sampling_table() const {
    // call_once rather than an emptiness check: two serve requests (or two
    // transport chunks) racing on the first sample must not both mutate the
    // lazy table. A throwing build releases the flag for a retry.
    std::call_once(cdf_once_, [this] { build_sampling_table(); });
}

void Spectrum::build_sampling_table() const {
    const double lo = min_energy_ev();
    const double hi = max_energy_ev();
    cdf_energies_.resize(kSamplingTablePoints);
    cdf_values_.resize(kSamplingTablePoints);
    const double log_lo = std::log(lo);
    const double step =
        (std::log(hi) - log_lo) / static_cast<double>(kSamplingTablePoints - 1);
    double cumulative = 0.0;
    double e_prev = lo;
    double f_prev = flux_density(lo);
    cdf_energies_[0] = lo;
    cdf_values_[0] = 0.0;
    for (std::size_t i = 1; i < kSamplingTablePoints; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        const double fe = flux_density(e);
        cumulative += 0.5 * (f_prev + fe) * (e - e_prev);
        cdf_energies_[i] = e;
        cdf_values_[i] = cumulative;
        e_prev = e;
        f_prev = fe;
    }
    if (cumulative <= 0.0) {
        throw std::runtime_error("Spectrum: zero integral, cannot sample");
    }
    for (auto& v : cdf_values_) v /= cumulative;
}

void Spectrum::ensure_alias_table() const {
    std::call_once(alias_once_, [this] {
        ensure_sampling_table();
        const std::size_t bins = cdf_values_.size() - 1;
        std::vector<double> weights(bins);
        for (std::size_t i = 0; i < bins; ++i) {
            weights[i] = cdf_values_[i + 1] - cdf_values_[i];
        }
        ln_cdf_energies_.resize(cdf_energies_.size());
        for (std::size_t i = 0; i < cdf_energies_.size(); ++i) {
            ln_cdf_energies_[i] = std::log(cdf_energies_[i]);
        }
        alias_ = AliasTable(weights);
    });
}

double Spectrum::sample_energy_fast(stats::Rng& rng) const {
    ensure_alias_table();
    // Bin via the alias table (probability = the bin's CDF mass), then
    // log-uniform within the bin — the same within-bin law the inverse-CDF
    // sampler produces, so the two samplers are identically distributed.
    const std::size_t i = alias_.sample(rng);
    const double frac = rng.uniform();
    return std::exp(ln_cdf_energies_[i] * (1.0 - frac) +
                    ln_cdf_energies_[i + 1] * frac);
}

void Spectrum::sample_energy_block(stats::Rng& rng, double* out,
                                   std::size_t n) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_energy_fast(rng);
}

double Spectrum::sample_energy(stats::Rng& rng) const {
    ensure_sampling_table();
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_values_.begin(), cdf_values_.end(), u);
    if (it == cdf_values_.begin()) return cdf_energies_.front();
    if (it == cdf_values_.end()) return cdf_energies_.back();
    const auto i = static_cast<std::size_t>(std::distance(cdf_values_.begin(), it));
    const double c0 = cdf_values_[i - 1];
    const double c1 = cdf_values_[i];
    const double frac = (c1 > c0) ? (u - c0) / (c1 - c0) : 0.5;
    // Interpolate in log energy: appropriate for log-spaced tables.
    return std::exp(std::log(cdf_energies_[i - 1]) * (1.0 - frac) +
                    std::log(cdf_energies_[i]) * frac);
}

std::vector<std::pair<double, double>> Spectrum::lethargy_table(
    std::size_t points) const {
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    const double log_lo = std::log(min_energy_ev());
    const double step =
        (std::log(max_energy_ev()) - log_lo) / static_cast<double>(points - 1);
    for (std::size_t i = 0; i < points; ++i) {
        const double e = std::exp(log_lo + step * static_cast<double>(i));
        out.emplace_back(e, e * flux_density(e));
    }
    return out;
}

// --- MaxwellianSpectrum ------------------------------------------------------

MaxwellianSpectrum::MaxwellianSpectrum(double total_flux, double kt_ev)
    : kt_(kt_ev) {
    if (!(total_flux > 0.0) || !(kt_ev > 0.0)) {
        throw std::invalid_argument("MaxwellianSpectrum: flux and kT must be > 0");
    }
    // Integral of E/kT^2 * exp(-E/kT) over [0, inf) is 1, so the normalized
    // PDF is p(E) = E/kT^2 exp(-E/kT); flux density = total * p(E).
    scale_ = total_flux / (kt_ * kt_);
}

double MaxwellianSpectrum::flux_density(double energy_ev) const {
    if (energy_ev <= 0.0) return 0.0;
    return scale_ * energy_ev * std::exp(-energy_ev / kt_);
}

std::string MaxwellianSpectrum::name() const {
    return "Maxwellian kT=" + std::to_string(kt_) + " eV";
}

double MaxwellianSpectrum::sample_energy(stats::Rng& rng) const {
    // E/kT^2 exp(-E/kT) is Gamma(shape=2, scale=kT): sum of two exponentials.
    return kt_ * (rng.exponential(1.0) + rng.exponential(1.0));
}

void MaxwellianSpectrum::sample_energy_block(stats::Rng& rng, double* out,
                                             std::size_t n) const {
    // Same Gamma(2, kT) sum as sample_energy, drawn as two block fills
    // (all first exponentials, then all second) through the SIMD facade.
    const auto tier = core::simd::default_tier();
    core::simd::fill_unit_exponential(rng, out, n, tier);
    double tmp[256];
    for (std::size_t i = 0; i < n; i += 256) {
        const std::size_t chunk = std::min<std::size_t>(256, n - i);
        core::simd::fill_unit_exponential(rng, tmp, chunk, tier);
        for (std::size_t j = 0; j < chunk; ++j) {
            out[i + j] = kt_ * (out[i + j] + tmp[j]);
        }
    }
}

// --- EpithermalSpectrum ------------------------------------------------------

EpithermalSpectrum::EpithermalSpectrum(double total_flux, double lo_ev,
                                       double hi_ev)
    : lo_(lo_ev), hi_(hi_ev) {
    if (!(lo_ev > 0.0) || !(hi_ev > lo_ev) || !(total_flux > 0.0)) {
        throw std::invalid_argument("EpithermalSpectrum: bad parameters");
    }
    scale_ = total_flux / std::log(hi_ / lo_);
}

double EpithermalSpectrum::flux_density(double energy_ev) const {
    if (energy_ev < lo_ || energy_ev > hi_) return 0.0;
    return scale_ / energy_ev;
}

double EpithermalSpectrum::sample_energy(stats::Rng& rng) const {
    // Inverse CDF of 1/E on [lo, hi]: E = lo * (hi/lo)^u.
    return lo_ * std::pow(hi_ / lo_, rng.uniform());
}

// --- AtmosphericSpectrum -----------------------------------------------------

AtmosphericSpectrum::AtmosphericSpectrum(double scale) : scale_(scale) {
    if (!(scale > 0.0)) {
        throw std::invalid_argument("AtmosphericSpectrum: scale must be > 0");
    }
}

double AtmosphericSpectrum::flux_density(double energy_ev) const {
    if (energy_ev < min_energy_ev() || energy_ev > max_energy_ev()) return 0.0;
    // Gordon et al. 2004 ground-level fit (JESD89A Annex A): E in MeV,
    // density in n/cm^2/s/MeV. Sum of two log-normal-like lobes (the ~2 MeV
    // evaporation peak and the ~100 MeV cascade shoulder).
    const double e_mev = energy_ev / kMeV;
    const double ln_e = std::log(e_mev);
    const double density_per_mev =
        1.006e-6 * std::exp(-0.35 * ln_e * ln_e + 2.1451 * ln_e) +
        1.011e-3 * std::exp(-0.4106 * ln_e * ln_e - 0.667 * ln_e);
    return scale_ * density_per_mev / kMeV;  // convert to per-eV
}

// --- TabulatedSpectrum -------------------------------------------------------

TabulatedSpectrum::TabulatedSpectrum(
    std::string name, std::vector<std::pair<double, double>> points)
    : name_(std::move(name)) {
    if (points.size() < 2) {
        throw std::invalid_argument("TabulatedSpectrum: need >= 2 points");
    }
    log_e_.reserve(points.size());
    log_f_.reserve(points.size());
    for (const auto& [e, f] : points) {
        if (!(e > 0.0) || !(f > 0.0)) {
            throw std::invalid_argument(
                "TabulatedSpectrum: energies and densities must be > 0");
        }
        if (!log_e_.empty() && std::log(e) <= log_e_.back()) {
            throw std::invalid_argument(
                "TabulatedSpectrum: energies must be strictly increasing");
        }
        log_e_.push_back(std::log(e));
        log_f_.push_back(std::log(f));
    }
}

double TabulatedSpectrum::flux_density(double energy_ev) const {
    if (energy_ev <= 0.0) return 0.0;
    const double le = std::log(energy_ev);
    if (le < log_e_.front() || le > log_e_.back()) return 0.0;
    const auto it = std::upper_bound(log_e_.begin(), log_e_.end(), le);
    if (it == log_e_.begin()) return std::exp(log_f_.front());
    if (it == log_e_.end()) return std::exp(log_f_.back());
    const auto i = static_cast<std::size_t>(std::distance(log_e_.begin(), it));
    const double frac = (le - log_e_[i - 1]) / (log_e_[i] - log_e_[i - 1]);
    return std::exp(log_f_[i - 1] * (1.0 - frac) + log_f_[i] * frac);
}

double TabulatedSpectrum::min_energy_ev() const { return std::exp(log_e_.front()); }
double TabulatedSpectrum::max_energy_ev() const { return std::exp(log_e_.back()); }

// --- CompositeSpectrum -------------------------------------------------------

CompositeSpectrum::CompositeSpectrum(
    std::string name, std::vector<std::shared_ptr<const Spectrum>> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
    if (parts_.empty()) {
        throw std::invalid_argument("CompositeSpectrum: no parts");
    }
    part_flux_.reserve(parts_.size());
    for (const auto& p : parts_) {
        if (!p) throw std::invalid_argument("CompositeSpectrum: null part");
        part_flux_.push_back(p->total_flux());
        total_ += part_flux_.back();
    }
    part_alias_ = AliasTable(part_flux_);
}

double CompositeSpectrum::flux_density(double energy_ev) const {
    double sum = 0.0;
    for (const auto& p : parts_) sum += p->flux_density(energy_ev);
    return sum;
}

double CompositeSpectrum::min_energy_ev() const {
    double lo = parts_.front()->min_energy_ev();
    for (const auto& p : parts_) lo = std::min(lo, p->min_energy_ev());
    return lo;
}

double CompositeSpectrum::max_energy_ev() const {
    double hi = parts_.front()->max_energy_ev();
    for (const auto& p : parts_) hi = std::max(hi, p->max_energy_ev());
    return hi;
}

double CompositeSpectrum::integral_flux(double lo_ev, double hi_ev) const {
    // Integrate each part over its own support: more accurate than one global
    // log grid when parts live at wildly different energies.
    double sum = 0.0;
    for (const auto& p : parts_) sum += p->integral_flux(lo_ev, hi_ev);
    return sum;
}

void CompositeSpectrum::prepare_sampling() const {
    for (const auto& p : parts_) p->prepare_sampling();
}

double CompositeSpectrum::sample_energy(stats::Rng& rng) const {
    double u = rng.uniform() * total_;
    for (std::size_t i = 0; i < parts_.size(); ++i) {
        if (u < part_flux_[i] || i + 1 == parts_.size()) {
            return parts_[i]->sample_energy(rng);
        }
        u -= part_flux_[i];
    }
    return parts_.back()->sample_energy(rng);
}

double CompositeSpectrum::sample_energy_fast(stats::Rng& rng) const {
    return parts_[part_alias_.sample(rng)]->sample_energy_fast(rng);
}

}  // namespace tnr::physics

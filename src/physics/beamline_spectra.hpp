#pragma once
// The two ISIS beamlines used by the paper (§III.C, Fig. 2), as spectra:
//
//   * ChipIR — atmospheric-like fast spectrum for accelerated testing.
//     Phi(>10 MeV) = 5.4e6 n/cm^2/s, plus a thermal tail of 4e5 n/cm^2/s
//     and a 1/E epithermal bridge (every spallation beamline has one).
//   * ROTAX — fully moderated thermal beam (liquid-methane moderator),
//     Phi = 2.72e6 n/cm^2/s, Maxwellian.
//
// Both factories normalize numerically so the published integral fluxes are
// met exactly.

#include <memory>

#include "physics/spectrum.hpp"

namespace tnr::physics {

/// Published ChipIR integral fluxes [n/cm^2/s].
inline constexpr double kChipIrHighEnergyFlux = 5.4e6;   ///< E > 10 MeV.
inline constexpr double kChipIrThermalFlux = 4.0e5;      ///< E < 0.5 eV.
/// Epithermal bridge flux between 0.5 eV and 1 MeV (typical for ChipIR's
/// spectrum shape; affects only the 1/E plateau in Fig. 2).
inline constexpr double kChipIrEpithermalFlux = 8.0e5;

/// Published ROTAX total flux [n/cm^2/s].
inline constexpr double kRotaxTotalFlux = 2.72e6;
/// Effective Maxwellian temperature of the ROTAX beam [eV].
inline constexpr double kRotaxKt = 0.0253;

/// ChipIR: composite of a Gordon-shaped fast component scaled to the
/// published >10 MeV flux, a 1/E epithermal bridge, and a thermal Maxwellian.
std::shared_ptr<const Spectrum> chipir_spectrum();

/// ROTAX: thermal Maxwellian at kRotaxKt scaled to the published total flux.
std::shared_ptr<const Spectrum> rotax_spectrum();

/// The natural ground-level spectrum shape for a given >10 MeV flux
/// [n/cm^2/s] and thermal flux [n/cm^2/s] — used to express field
/// environments in the same form as beamlines.
std::shared_ptr<const Spectrum> terrestrial_spectrum(double high_energy_flux,
                                                     double thermal_flux);

/// Published D-T generator flux used for the 14 MeV comparison runs
/// [n/cm^2/s] (Weulersse et al. methodology, discussed in the paper's
/// related work).
inline constexpr double kDt14Flux = 1.0e5;

/// A D-T fusion neutron generator: narrow ~14.1 MeV line (modelled as a
/// tight tabulated peak), `flux` n/cm^2/s total.
std::shared_ptr<const Spectrum> dt14_spectrum(double flux = kDt14Flux);

}  // namespace tnr::physics

#pragma once
// Neutron energy spectra. A Spectrum is a differential flux density
// dPhi/dE [n/cm^2/s/eV] over an energy range; it can be integrated over
// energy windows, rendered per unit lethargy (the presentation of paper
// Fig. 2), and sampled to drive Monte Carlo transport and beam experiments.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "physics/alias_table.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

/// Abstract neutron energy spectrum.
class Spectrum {
public:
    virtual ~Spectrum() = default;

    /// Differential flux density dPhi/dE at energy E [n/cm^2/s/eV].
    [[nodiscard]] virtual double flux_density(double energy_ev) const = 0;

    /// Lowest / highest energy with support.
    [[nodiscard]] virtual double min_energy_ev() const = 0;
    [[nodiscard]] virtual double max_energy_ev() const = 0;

    /// Human-readable name for reports.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Integral flux over [lo, hi] [n/cm^2/s]. Default: adaptive log-grid
    /// trapezoid integration of flux_density.
    [[nodiscard]] virtual double integral_flux(double lo_ev, double hi_ev) const;

    /// Total flux over the full support.
    [[nodiscard]] double total_flux() const {
        return integral_flux(min_energy_ev(), max_energy_ev());
    }

    /// Flux below the thermal cutoff (0.5 eV).
    [[nodiscard]] double thermal_flux() const;

    /// Flux above 10 MeV (the atmospheric-like "high energy" quote).
    [[nodiscard]] double high_energy_flux() const;

    /// Samples an energy from the spectrum (treated as a PDF). Default uses
    /// a cached tabulated inverse CDF on a log grid.
    [[nodiscard]] virtual double sample_energy(stats::Rng& rng) const;

    /// O(1) alias-table sampling over the same tabulated bins the inverse-CDF
    /// sampler walks with a binary search. Identically distributed to
    /// sample_energy (bin probability = its CDF mass, log-uniform within the
    /// bin) but with a different draw sequence — this is the batched
    /// transport kernel's source sampler. Analytic spectra override it with
    /// their exact samplers.
    [[nodiscard]] virtual double sample_energy_fast(stats::Rng& rng) const;

    /// Fills `out[0..n)` with spectrum draws, consuming the stream in slot
    /// order. Default: a loop of sample_energy_fast. The AVX2 transport
    /// tier refills freed lanes through this; analytic spectra override it
    /// with a vectorized fill (MaxwellianSpectrum runs its two-exponential
    /// sum through the RNG-block facade).
    virtual void sample_energy_block(stats::Rng& rng, double* out,
                                     std::size_t n) const;

    /// Builds any lazy sampling state now. Lazy builds are themselves
    /// guarded by std::once_flag, so concurrent first samples are safe;
    /// calling this up front merely keeps the build cost out of the
    /// sampling path (the parallel transport runs do).
    virtual void prepare_sampling() const {
        ensure_sampling_table();
        ensure_alias_table();
    }

    /// Renders E * dPhi/dE (flux per unit lethargy) on a log-spaced grid.
    /// Returns pairs (E_center, lethargy_flux).
    [[nodiscard]] std::vector<std::pair<double, double>> lethargy_table(
        std::size_t points) const;

protected:
    /// Builds the inverse-CDF sampling table lazily. Thread-safe: the build
    /// runs under std::call_once, so two threads racing on a first
    /// sample_energy() see one fully built table.
    void ensure_sampling_table() const;

    /// Builds the alias table (and cached ln-energy grid) over the CDF bins,
    /// also under std::call_once.
    void ensure_alias_table() const;

    mutable std::vector<double> cdf_energies_;
    mutable std::vector<double> cdf_values_;

private:
    void build_sampling_table() const;

    mutable std::once_flag cdf_once_;
    mutable std::once_flag alias_once_;
    mutable AliasTable alias_;                    ///< one column per CDF bin.
    mutable std::vector<double> ln_cdf_energies_; ///< ln of cdf_energies_.
};

/// Maxwell-Boltzmann thermal spectrum with characteristic temperature kT:
/// dPhi/dE ∝ E * exp(-E/kT). Describes a fully moderated (thermal) beam such
/// as ROTAX.
class MaxwellianSpectrum final : public Spectrum {
public:
    /// total_flux: integral over all energies [n/cm^2/s]; kt_ev: temperature.
    MaxwellianSpectrum(double total_flux, double kt_ev);

    [[nodiscard]] double flux_density(double energy_ev) const override;
    [[nodiscard]] double min_energy_ev() const override { return 1.0e-5; }
    [[nodiscard]] double max_energy_ev() const override { return 100.0 * kt_; }
    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double sample_energy(stats::Rng& rng) const override;
    [[nodiscard]] double sample_energy_fast(stats::Rng& rng) const override {
        return sample_energy(rng);  // analytic sampler is already O(1).
    }
    void sample_energy_block(stats::Rng& rng, double* out,
                             std::size_t n) const override;
    void prepare_sampling() const override {}  // analytic sampler, no state.

    [[nodiscard]] double kt_ev() const noexcept { return kt_; }

private:
    double scale_;
    double kt_;
};

/// 1/E "epithermal" slowing-down spectrum between two energies.
class EpithermalSpectrum final : public Spectrum {
public:
    /// total_flux over [lo, hi]; dPhi/dE ∝ 1/E in that window.
    EpithermalSpectrum(double total_flux, double lo_ev, double hi_ev);

    [[nodiscard]] double flux_density(double energy_ev) const override;
    [[nodiscard]] double min_energy_ev() const override { return lo_; }
    [[nodiscard]] double max_energy_ev() const override { return hi_; }
    [[nodiscard]] std::string name() const override { return "1/E epithermal"; }
    [[nodiscard]] double sample_energy(stats::Rng& rng) const override;
    [[nodiscard]] double sample_energy_fast(stats::Rng& rng) const override {
        return sample_energy(rng);  // analytic sampler is already O(1).
    }
    void prepare_sampling() const override {}  // analytic sampler, no state.

private:
    double scale_;
    double lo_;
    double hi_;
};

/// Ground-level atmospheric high-energy spectrum: the JEDEC JESD89A /
/// Gordon et al. (2004) analytic fit, valid above ~1 MeV. The reference
/// normalization gives ~13 n/cm^2/h above 10 MeV (New York City sea level);
/// `scale` multiplies the whole spectrum (altitude/latitude scaling).
class AtmosphericSpectrum final : public Spectrum {
public:
    explicit AtmosphericSpectrum(double scale = 1.0);

    [[nodiscard]] double flux_density(double energy_ev) const override;
    [[nodiscard]] double min_energy_ev() const override { return 1.0e6; }
    [[nodiscard]] double max_energy_ev() const override { return 1.0e9; }
    [[nodiscard]] std::string name() const override { return "atmospheric (Gordon fit)"; }

    [[nodiscard]] double scale() const noexcept { return scale_; }

private:
    double scale_;
};

/// Log-log interpolated tabulated spectrum (e.g. a published beamline
/// spectrum digitized at a handful of points).
class TabulatedSpectrum final : public Spectrum {
public:
    /// points: (energy_ev, dPhi/dE) pairs, strictly increasing in energy,
    /// densities > 0.
    TabulatedSpectrum(std::string name,
                      std::vector<std::pair<double, double>> points);

    [[nodiscard]] double flux_density(double energy_ev) const override;
    [[nodiscard]] double min_energy_ev() const override;
    [[nodiscard]] double max_energy_ev() const override;
    [[nodiscard]] std::string name() const override { return name_; }

private:
    std::string name_;
    std::vector<double> log_e_;
    std::vector<double> log_f_;
};

/// Weighted sum of component spectra (e.g. ChipIR = atmospheric-shaped fast
/// component + 1/E epithermal + thermal Maxwellian tail).
class CompositeSpectrum final : public Spectrum {
public:
    CompositeSpectrum(std::string name,
                      std::vector<std::shared_ptr<const Spectrum>> parts);

    [[nodiscard]] double flux_density(double energy_ev) const override;
    [[nodiscard]] double min_energy_ev() const override;
    [[nodiscard]] double max_energy_ev() const override;
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] double integral_flux(double lo_ev, double hi_ev) const override;
    [[nodiscard]] double sample_energy(stats::Rng& rng) const override;
    [[nodiscard]] double sample_energy_fast(stats::Rng& rng) const override;
    void prepare_sampling() const override;

    [[nodiscard]] const std::vector<std::shared_ptr<const Spectrum>>& parts()
        const noexcept {
        return parts_;
    }

private:
    std::string name_;
    std::vector<std::shared_ptr<const Spectrum>> parts_;
    std::vector<double> part_flux_;  ///< total flux per part, for sampling.
    double total_ = 0.0;
    AliasTable part_alias_;          ///< flux-weighted part picker.
};

}  // namespace tnr::physics

#pragma once
// Charge deposition by the 10B(n,alpha)7Li reaction products in silicon —
// the microscopic step between "a thermal neutron was captured" and "a bit
// flipped". The catalog's upset probability (P(observable error | capture))
// is an effective constant; this model derives it from geometry:
//
//   * the capture emits a 1.47 MeV alpha and a 0.84 MeV 7Li ion
//     back-to-back in a random direction (plus a gamma in 94% of decays);
//   * each ion deposits ~E/range along a straight track (mean-LET
//     approximation of the Bragg curve);
//   * a bit flips when the charge collected inside the cell's sensitive
//     depth window exceeds the node's critical charge.
//
// Ranges in silicon: alpha(1.47 MeV) ~ 5.0 um, 7Li(0.84 MeV) ~ 2.6 um;
// 3.6 eV per electron-hole pair => 1 fC per ~22.5 keV deposited.

#include <cstdint>

#include "stats/rng.hpp"

namespace tnr::physics {

/// Electron-hole pair creation energy in silicon [eV].
inline constexpr double kPairEnergyEv = 3.6;

/// keV of deposited energy per fC of collected charge.
inline constexpr double kKevPerFc = 22.5;

/// A reaction product ion.
struct Ion {
    double energy_kev = 0.0;
    double range_um = 0.0;

    /// Mean linear energy transfer [keV/um] (flat-track approximation).
    [[nodiscard]] double mean_let() const noexcept {
        return range_um > 0.0 ? energy_kev / range_um : 0.0;
    }
};

/// The 10B(n,alpha)7Li products (ground-state branch energies; the 94%
/// excited branch is ~6% lower — within this model's accuracy).
Ion b10_alpha();
Ion b10_lithium();

/// Charge [fC] from an energy deposit [keV].
double charge_fc(double deposited_kev);

/// The collection geometry of one memory cell / latch.
struct SensitiveVolume {
    /// Depth window that collects charge [um] (drift + funneling depth).
    double depth_um = 1.0;
    /// Distance from the 10B-bearing layer to the top of the window [um]
    /// (boron sits in contacts/liners above the junction).
    double standoff_um = 0.5;
    /// Critical charge of the node [fC].
    double qcrit_fc = 2.0;
    /// Fraction of the 10B layer's area underlain by sensitive nodes: a
    /// capture elsewhere cannot upset anything (the 1-D depth model has no
    /// lateral miss of its own). Planar SRAM ~5-15%; FinFET fins a few %.
    double area_coverage = 0.08;
};

/// Monte Carlo estimate of P(upset | capture in the 10B layer): reactions
/// occur uniformly in a layer of the given thickness above the volume; the
/// two ions fly back-to-back with an isotropic direction; an upset needs
/// either ion to deposit more than qcrit inside the depth window.
double upset_probability(double b10_layer_um, const SensitiveVolume& volume,
                         std::uint64_t samples, stats::Rng& rng);

/// Technology presets for the paper's device generations (critical charge
/// shrinks with the node; collection depth shrinks too).
SensitiveVolume volume_28nm_planar();
SensitiveVolume volume_16nm_finfet();
SensitiveVolume volume_90nm_legacy();

}  // namespace tnr::physics

#pragma once
// Walker alias table: O(1) sampling from a discrete distribution.
//
// The inverse-CDF spectrum sampler pays a binary search (lg 2048 ~ 11
// cache-missing probes) per source neutron; the alias method answers the
// same draw with one table row: pick a column uniformly, then either keep
// it or take its alias. Construction is Vose's stable O(n) variant.
//
// Sampling draws exactly one rng.uniform(): the integer part selects the
// column and the fractional part (rescaled) plays the alias coin flip, so a
// batch of source samples costs one uniform + one row read each.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace tnr::physics {

class AliasTable {
public:
    AliasTable() = default;

    /// Builds the table from (possibly unnormalized) non-negative weights.
    /// Throws std::invalid_argument if `weights` is empty, contains a
    /// negative or non-finite entry, or sums to zero.
    explicit AliasTable(const std::vector<double>& weights);

    /// Index in [0, size()), distributed proportionally to the weights.
    [[nodiscard]] std::size_t sample(stats::Rng& rng) const noexcept {
        const double u = rng.uniform() * static_cast<double>(prob_.size());
        auto i = static_cast<std::size_t>(u);
        if (i >= prob_.size()) i = prob_.size() - 1;  // u == size() guard.
        const double coin = u - static_cast<double>(i);
        return coin < prob_[i] ? i : alias_[i];
    }

    [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
    [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

    /// Exact probability of drawing index i (reconstructed from the table;
    /// used by tests to verify the construction).
    [[nodiscard]] double probability(std::size_t i) const noexcept;

private:
    std::vector<double> prob_;          ///< keep-probability per column.
    std::vector<std::uint32_t> alias_;  ///< fallback column.
};

}  // namespace tnr::physics

#include "physics/cross_sections.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/units.hpp"

namespace tnr::physics {

double one_over_v(double sigma_thermal_barns, double energy_ev) {
    if (energy_ev <= 0.0) {
        throw std::domain_error("one_over_v: energy must be > 0");
    }
    return sigma_thermal_barns * std::sqrt(kThermalReferenceEv / energy_ev);
}

double b10_capture_barns(double energy_ev) {
    // 1/v holds for 10B(n,a) to within a few percent up to ~10 keV; above
    // that the cross section keeps falling — 1/v remains a serviceable and
    // slightly conservative approximation for this study.
    return one_over_v(kB10CaptureBarns, energy_ev);
}

double he3_capture_barns(double energy_ev) {
    return one_over_v(kHe3CaptureBarns, energy_ev);
}

double cd_absorption_barns(double energy_ev) {
    // Model: 1/v body multiplied by a smooth roll-off above the 0.5 eV
    // cadmium cutoff (the downslope of the 0.178 eV 113Cd resonance).
    const double body = one_over_v(kCdCaptureBarns, energy_ev);
    if (energy_ev <= kThermalCutoffEv) return body;
    // Beyond the cutoff the absorption falls roughly as E^-3 (resonance tail)
    // until the ~7 b epithermal floor.
    const double ratio = energy_ev / kThermalCutoffEv;
    const double tail = body / (ratio * ratio * ratio);
    const double floor_barns = 7.0;
    return std::max(tail, floor_barns * std::sqrt(kThermalCutoffEv / energy_ev));
}

double h1_capture_barns(double energy_ev) {
    return one_over_v(kH1CaptureBarns, energy_ev);
}

double elastic_mean_energy_fraction(double mass_number) {
    if (mass_number < 1.0) {
        throw std::domain_error("elastic_mean_energy_fraction: A >= 1");
    }
    const double a1 = mass_number + 1.0;
    return 1.0 - 2.0 * mass_number / (a1 * a1);
}

double mean_log_energy_decrement(double mass_number) {
    if (mass_number < 1.0) {
        throw std::domain_error("mean_log_energy_decrement: A >= 1");
    }
    if (mass_number == 1.0) return 1.0;
    const double a = mass_number;
    const double alpha = ((a - 1.0) * (a - 1.0)) / ((a + 1.0) * (a + 1.0));
    return 1.0 + alpha * std::log(alpha) / (1.0 - alpha);
}

double scatters_to_thermalize(double e_from_ev, double e_to_ev, double xi) {
    if (!(e_from_ev > e_to_ev) || !(e_to_ev > 0.0) || !(xi > 0.0)) {
        throw std::domain_error("scatters_to_thermalize: bad arguments");
    }
    return std::log(e_from_ev / e_to_ev) / xi;
}

}  // namespace tnr::physics

#pragma once
// Energy-grid cross-section cache for the Monte Carlo inner loop.
//
// Material::sigma_scatter / sigma_absorb walk the component list and pay a
// division (elastic) or sqrt (1/v capture) per nuclide on every scatter
// step. MaterialXsTable evaluates them once, on a log-spaced energy grid,
// and answers lookups with one std::log, an O(1) grid locate, and two
// linear interpolations — no exp/sqrt/div in the hot path:
//
//   * the grid is log-uniform (128 nodes per decade), so the bracketing
//     interval comes from one multiply-and-floor instead of a binary
//     search;
//   * sigma values are stored linearly and interpolated linearly in ln E;
//     at this node density the curvature error of every branch the library
//     materials use (1/v capture, the elastic roll-off, cadmium's E^-3
//     resonance tail) stays well below the 1e-3 contract;
//   * the cadmium resonance-edge model has slope kinks at the 0.5 eV cutoff
//     and at the resonance-tail/epithermal-floor crossover; both energies
//     are inserted as exact grid nodes (the locate falls back to a short
//     in-cell scan there) so no interval straddles a kink.
//
// The table also stores, per node, the cumulative per-component elastic
// fractions, so sampling the scattering nuclide is a table walk instead of
// re-deriving every component's macroscopic contribution.
//
// Accuracy contract (pinned by tests): relative error < 1e-3 on
// sigma_scatter and sigma_absorb across 1 meV .. 20 MeV for every library
// material. Lookups below/above the grid clamp to the end nodes.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd/dispatch.hpp"
#include "physics/materials.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

class MaterialXsTable {
public:
    explicit MaterialXsTable(const Material& material);

    /// Grid position of an energy plus the interpolated macroscopic cross
    /// sections there; sample_scatter_mass reuses it so one transport step
    /// pays for the grid search once.
    struct Lookup {
        double sigma_scatter = 0.0;  ///< [1/cm]
        double sigma_absorb = 0.0;   ///< [1/cm]
        std::size_t node = 0;        ///< lower grid node index.
        double frac = 0.0;           ///< position within [node, node+1].
    };

    [[nodiscard]] Lookup lookup(double energy_ev) const noexcept;

    [[nodiscard]] double sigma_scatter(double energy_ev) const noexcept {
        return lookup(energy_ev).sigma_scatter;
    }
    [[nodiscard]] double sigma_absorb(double energy_ev) const noexcept {
        return lookup(energy_ev).sigma_absorb;
    }
    [[nodiscard]] double sigma_total(double energy_ev) const noexcept {
        const Lookup lk = lookup(energy_ev);
        return lk.sigma_scatter + lk.sigma_absorb;
    }

    /// Samples the mass number of the scattering nuclide at the looked-up
    /// energy, proportional to each component's macroscopic elastic cross
    /// section. One rng.uniform() call — the same draw count as the exact
    /// path, so table and exact runs stay stream-compatible.
    [[nodiscard]] double sample_scatter_mass(const Lookup& lk,
                                             stats::Rng& rng) const noexcept;

    /// Batched lookup over `n` energies for the vectorized transport sweep.
    /// The scalar tier loops lookup() (bitwise identical to n single calls);
    /// the AVX2 tier does the whole locate — vector log, multiply-and-floor
    /// cell index, accel_/node gathers, interpolation — 4 lanes at a time,
    /// with lanes that land in a cell holding inserted kink nodes (or on an
    /// exact cell edge) patched up by a scalar lookup() over the rare-lane
    /// mask. Same <1e-3 accuracy contract as lookup().
    void lookup_batch(const double* energy_ev, std::size_t n, double* sigma_s,
                      double* sigma_a, std::uint32_t* node, double* frac,
                      core::simd::Tier tier) const noexcept;

    /// Batched sample_scatter_mass over pre-drawn uniforms: mass[i] is the
    /// nuclide selected by u[i] at grid position (node[i], frac[i]). Both
    /// tiers implement the identical cumulative-table walk (the AVX2 tier
    /// with per-component gathers and blends).
    void sample_scatter_mass_batch(const std::uint32_t* node,
                                   const double* frac, const double* u,
                                   std::size_t n, double* mass,
                                   core::simd::Tier tier) const noexcept;

    [[nodiscard]] std::size_t grid_size() const noexcept {
        return ln_energy_.size();
    }
    [[nodiscard]] double min_energy_ev() const noexcept;
    [[nodiscard]] double max_energy_ev() const noexcept;

private:
#if TNR_SIMD_X86_AVX2
    void lookup_batch_avx2(const double* energy_ev, std::size_t n,
                           double* sigma_s, double* sigma_a,
                           std::uint32_t* node, double* frac) const noexcept;
    void sample_scatter_mass_batch_avx2(const std::uint32_t* node,
                                        const double* frac, const double* u,
                                        std::size_t n,
                                        double* mass) const noexcept;
#endif

    std::size_t components_ = 0;
    double ln_e_min_ = 0.0;
    double inv_cell_width_ = 0.0;        ///< 1 / uniform cell width in ln E.
    std::vector<double> ln_energy_;      ///< sorted grid, ln(E/eV).
    std::vector<double> sigma_s_;        ///< macroscopic elastic per node.
    std::vector<double> sigma_a_;        ///< macroscopic absorption per node.
    /// accel_[cell] = index of the last node at or below the cell's left
    /// edge; with no inserted kink nodes this is the identity map.
    std::vector<std::uint32_t> accel_;
    /// Node-major cumulative elastic fractions: cum_[node * components_ + c]
    /// rises to 1 across c.
    std::vector<double> cum_elastic_;
    std::vector<double> mass_numbers_;   ///< per component.
};

}  // namespace tnr::physics

#include "physics/alias_table.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tnr::physics {

AliasTable::AliasTable(const std::vector<double>& weights) {
    if (weights.empty()) {
        throw std::invalid_argument("AliasTable: no weights");
    }
    double total = 0.0;
    for (const double w : weights) {
        if (!(w >= 0.0) || !std::isfinite(w)) {
            throw std::invalid_argument(
                "AliasTable: weights must be finite and >= 0");
        }
        total += w;
    }
    if (!(total > 0.0)) {
        throw std::invalid_argument("AliasTable: weights sum to zero");
    }

    const std::size_t n = weights.size();
    if (n > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument("AliasTable: too many columns");
    }
    prob_.assign(n, 1.0);
    alias_.resize(n);

    // Vose's method: scale so the mean column holds probability 1, then pair
    // each under-full column with an over-full donor.
    std::vector<double> scaled(n);
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * scale;

    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        (scaled[i] < 1.0 ? small : large).push_back(
            static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        const std::uint32_t l = large.back();
        small.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        // The donor hands (1 - scaled[s]) of its mass to column s.
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
        }
    }
    // Leftovers (rounding): they hold their full column.
    for (const std::uint32_t i : small) prob_[i] = 1.0;
    for (const std::uint32_t i : large) prob_[i] = 1.0;
}

double AliasTable::probability(std::size_t i) const noexcept {
    if (i >= prob_.size()) return 0.0;
    double p = prob_[i];
    for (std::size_t j = 0; j < prob_.size(); ++j) {
        if (alias_[j] == i && j != i) p += 1.0 - prob_[j];
    }
    return p / static_cast<double>(prob_.size());
}

}  // namespace tnr::physics

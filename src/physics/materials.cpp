#include "physics/materials.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/cross_sections.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

namespace {

/// Number density [atoms/cm^3] from density [g/cm^3], mass fraction, and
/// atomic weight [g/mol].
double number_density(double density_g_cm3, double mass_fraction,
                      double atomic_weight) {
    return density_g_cm3 * mass_fraction / atomic_weight * kAvogadro;
}

}  // namespace

Material::Material(std::string name, std::vector<NuclideComponent> components)
    : name_(std::move(name)), components_(std::move(components)) {
    if (components_.empty()) {
        throw std::invalid_argument("Material: needs at least one component");
    }
    for (const auto& c : components_) {
        if (c.number_density < 0.0 || c.mass_number < 1.0) {
            throw std::invalid_argument("Material: bad component " + c.symbol);
        }
    }
}

double Material::sigma_scatter(double energy_ev) const {
    double sigma = 0.0;
    for (const auto& c : components_) {
        sigma += c.macro_elastic_per_cm(energy_ev);
    }
    return sigma;
}

double Material::sigma_absorb(double energy_ev) const {
    double sigma = 0.0;
    for (const auto& c : components_) {
        const double micro =
            c.cadmium_like
                ? cd_absorption_barns(energy_ev) *
                      (c.sigma_absorb_thermal_barns / kCdCaptureBarns)
                : one_over_v(c.sigma_absorb_thermal_barns, energy_ev);
        sigma += c.number_density * micro * kBarnToCm2;
    }
    return sigma;
}

double Material::mean_free_path(double energy_ev) const {
    const double sigma = sigma_total(energy_ev);
    if (sigma <= 0.0) {
        throw std::runtime_error("Material::mean_free_path: vacuum material");
    }
    return 1.0 / sigma;
}

double Material::sample_scatter_mass(double energy_ev,
                                     double sigma_scatter_total,
                                     stats::Rng& rng) const {
    double pick = rng.uniform() * sigma_scatter_total;
    for (const auto& c : components_) {
        const double contrib = c.macro_elastic_per_cm(energy_ev);
        if (pick < contrib) return c.mass_number;
        pick -= contrib;
    }
    // Rounding left pick past the last component: historical behaviour is to
    // fall back to the first one.
    return components_.front().mass_number;
}

double Material::average_xi() const {
    // Weight xi by the (flat) macroscopic scattering cross section.
    double num = 0.0;
    double den = 0.0;
    for (const auto& c : components_) {
        const double sig = c.number_density * c.sigma_elastic_barns;
        num += sig * mean_log_energy_decrement(c.mass_number);
        den += sig;
    }
    return den > 0.0 ? num / den : 0.0;
}

Material Material::water() {
    constexpr double rho = 1.0;
    const double n_h = number_density(rho, 2.016 / 18.015, 1.008);
    const double n_o = number_density(rho, 15.999 / 18.015, 15.999);
    return Material(
        "water",
        {{"H", 1.0, n_h, 20.4, kH1CaptureBarns, false, 2.6e5},
         {"O", 16.0, n_o, 3.8, 0.00019, false}});
}

Material Material::concrete() {
    // Ordinary Portland concrete, 2.3 g/cm^3 (NIST composition, simplified
    // to the six species that dominate scattering/absorption).
    constexpr double rho = 2.3;
    return Material(
        "concrete",
        {{"H", 1.0, number_density(rho, 0.010, 1.008), 20.4, kH1CaptureBarns, false, 2.6e5},
         {"O", 16.0, number_density(rho, 0.532, 15.999), 3.8, 0.00019, false},
         {"Si", 28.0, number_density(rho, 0.337, 28.086), 2.0, 0.171, false},
         {"Ca", 40.0, number_density(rho, 0.044, 40.078), 2.8, 0.43, false},
         {"Al", 27.0, number_density(rho, 0.034, 26.982), 1.4, 0.231, false},
         {"Fe", 56.0, number_density(rho, 0.014, 55.845), 11.4, 2.56, false}});
}

Material Material::polyethylene() {
    constexpr double rho = 0.94;
    const double n_c = number_density(rho, 12.011 / 14.027, 12.011);
    const double n_h = number_density(rho, 2.016 / 14.027, 1.008);
    return Material(
        "polyethylene",
        {{"H", 1.0, n_h, 20.4, kH1CaptureBarns, false, 2.6e5},
         {"C", 12.0, n_c, 4.7, 0.0035, false}});
}

Material Material::cadmium() {
    constexpr double rho = 8.65;
    const double n_cd = number_density(rho, 1.0, 112.41);
    return Material("cadmium",
                    {{"Cd", 112.0, n_cd, 6.0, kCdCaptureBarns, true}});
}

Material Material::borated_poly() {
    // 5 wt-% natural boron loaded polyethylene (a standard shielding stock).
    constexpr double rho = 0.95;
    constexpr double boron_fraction = 0.05;
    const double n_b = number_density(rho, boron_fraction, 10.81);
    const double n_c =
        number_density(rho, (1.0 - boron_fraction) * 12.011 / 14.027, 12.011);
    const double n_h =
        number_density(rho, (1.0 - boron_fraction) * 2.016 / 14.027, 1.008);
    // Natural boron: 19.9% 10B carries essentially all of the absorption.
    const double sigma_b_natural = kB10CaptureBarns * kNaturalB10Fraction;
    return Material(
        "borated polyethylene (5 wt-% B)",
        {{"H", 1.0, n_h, 20.4, kH1CaptureBarns, false, 2.6e5},
         {"C", 12.0, n_c, 4.7, 0.0035, false},
         {"B", 10.8, n_b, 4.3, sigma_b_natural, false}});
}

Material Material::air() {
    constexpr double rho = 1.205e-3;
    return Material(
        "air",
        {{"N", 14.0, number_density(rho, 0.755, 14.007), 10.0, 1.90, false},
         {"O", 16.0, number_density(rho, 0.232, 15.999), 3.8, 0.00019, false},
         {"Ar", 40.0, number_density(rho, 0.013, 39.948), 0.65, 0.66, false}});
}

Material Material::silicon() {
    constexpr double rho = 2.33;
    const double n_si = number_density(rho, 1.0, 28.086);
    return Material("silicon", {{"Si", 28.0, n_si, 2.0, 0.171, false}});
}

Material Material::aluminum() {
    constexpr double rho = 2.70;
    const double n_al = number_density(rho, 1.0, 26.982);
    return Material("aluminum", {{"Al", 27.0, n_al, 1.4, 0.231, false}});
}

Material Material::fr4() {
    // Glass-reinforced epoxy laminate (PCB): hydrogenous enough to scatter
    // thermals strongly — the reason a DUT board stack blocks most of an
    // incident thermal beam (ROTAX tests one board at a time).
    constexpr double rho = 1.85;
    return Material(
        "FR4 laminate",
        {{"H", 1.0, number_density(rho, 0.040, 1.008), 20.4, kH1CaptureBarns, false, 2.6e5},
         {"C", 12.0, number_density(rho, 0.340, 12.011), 4.7, 0.0035, false},
         {"O", 16.0, number_density(rho, 0.370, 15.999), 3.8, 0.00019, false},
         {"Si", 28.0, number_density(rho, 0.180, 28.086), 2.0, 0.171, false},
         {"Al", 27.0, number_density(rho, 0.030, 26.982), 1.4, 0.231, false},
         {"Ca", 40.0, number_density(rho, 0.040, 40.078), 2.8, 0.43, false}});
}

}  // namespace tnr::physics

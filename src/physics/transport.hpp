#pragma once
// 1-D Monte Carlo neutron transport through a homogeneous slab.
//
// This is the engine behind two of the paper's claims:
//   * a thin cadmium sheet transmits fast neutrons but absorbs thermals
//     (the Tin-II shielded tube, Fig. 6 analysis);
//   * hydrogen-rich materials near a device (water cooling, concrete floors)
//     moderate fast neutrons into thermals and bounce them back, raising the
//     local thermal flux by tens of percent (§V).
//
// Geometry: a slab of thickness T along x; neutrons enter at x=0 travelling
// in +x. Elastic scattering is isotropic in the centre-of-mass frame; capture
// follows 1/v (Cd gets its resonance-edge model). Below the thermal floor the
// neutron re-equilibrates with the medium (energies resampled from a room-
// temperature Maxwellian).

#include <cstdint>

#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/xs_table.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

/// Terminal fate of one transported neutron.
enum class Fate : std::uint8_t {
    kTransmitted,  ///< exited the back face (x > T).
    kReflected,    ///< exited the front face (x < 0) — the albedo component.
    kAbsorbed,     ///< captured inside the slab.
    kLost,         ///< exceeded the scatter budget (treated as absorbed).
};

struct TransportConfig {
    std::uint32_t max_scatters = 10'000;
    /// Below this energy the neutron is in equilibrium with the medium and
    /// its energy is resampled from a Maxwellian each scatter.
    double thermal_floor_ev = 0.1;
    double maxwellian_kt_ev = 0.0253;
    /// Worker count for run_monoenergetic / run_spectrum: 1 = serial (bitwise
    /// identical to the historical loops), 0 = all available cores, N = N
    /// deterministic RNG streams on the shared pool. Results are bitwise
    /// reproducible for a fixed (seed, threads) pair and statistically
    /// equivalent across thread counts.
    unsigned threads = 1;
    /// Use the log-grid MaterialXsTable cache in the scatter loop instead of
    /// exact per-component formulas (< 1e-3 relative error, measurably
    /// faster for multi-component materials).
    bool use_xs_table = true;
};

/// Aggregated result of transporting N neutrons through a slab.
struct TransportResult {
    std::uint64_t transmitted = 0;
    std::uint64_t reflected = 0;
    std::uint64_t absorbed = 0;
    std::uint64_t lost = 0;
    /// Of the transmitted / reflected neutrons, how many exited thermal
    /// (E < 0.5 eV).
    std::uint64_t transmitted_thermal = 0;
    std::uint64_t reflected_thermal = 0;
    std::uint64_t total = 0;
    /// Scattering collisions summed over all histories (telemetry: where
    /// the transport time goes).
    std::uint64_t collisions = 0;

    [[nodiscard]] double transmission() const noexcept {
        return total ? static_cast<double>(transmitted) / static_cast<double>(total) : 0.0;
    }
    [[nodiscard]] double reflection() const noexcept {
        return total ? static_cast<double>(reflected) / static_cast<double>(total) : 0.0;
    }
    [[nodiscard]] double absorption() const noexcept {
        return total ? static_cast<double>(absorbed + lost) / static_cast<double>(total)
                     : 0.0;
    }
    /// Thermal albedo: thermal neutrons re-emitted from the front face per
    /// incident neutron — the quantity that raises the ambient thermal flux
    /// above a concrete slab or next to a cooling loop.
    [[nodiscard]] double thermal_albedo() const noexcept {
        return total ? static_cast<double>(reflected_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }
    [[nodiscard]] double thermal_transmission() const noexcept {
        return total ? static_cast<double>(transmitted_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /// Accumulates another result (parallel-reduction merge).
    void merge(const TransportResult& other) noexcept;
};

/// Monte Carlo transport through one slab.
class SlabTransport {
public:
    SlabTransport(Material material, double thickness_cm,
                  TransportConfig config = {});

    [[nodiscard]] const Material& material() const noexcept { return material_; }
    [[nodiscard]] double thickness_cm() const noexcept { return thickness_; }

    /// Transport one neutron of the given energy; returns its fate and (via
    /// out-params) its exit energy when it escapes and its scattering
    /// collision count.
    Fate transport_one(double energy_ev, stats::Rng& rng,
                       double* exit_energy_ev = nullptr,
                       std::uint64_t* collisions = nullptr) const;

    /// Transport `n` monoenergetic neutrons, on config.threads workers of
    /// the shared pool (1 = serial, bitwise identical to the historical
    /// loop).
    [[nodiscard]] TransportResult run_monoenergetic(double energy_ev,
                                                    std::uint64_t n,
                                                    stats::Rng& rng) const;

    /// Transport `n` neutrons with energies sampled from `spectrum`, on
    /// config.threads workers of the shared pool.
    [[nodiscard]] TransportResult run_spectrum(const Spectrum& spectrum,
                                               std::uint64_t n,
                                               stats::Rng& rng) const;

    /// DEPRECATED — set TransportConfig::threads and call run_monoenergetic
    /// instead. Kept as a thin forwarding wrapper for one release; the old
    /// per-call std::thread spawning is gone (work now runs on the shared
    /// pool). threads == 0 uses all available cores.
    [[nodiscard]] TransportResult run_monoenergetic_parallel(
        double energy_ev, std::uint64_t n, stats::Rng& rng,
        unsigned threads = 0) const;

    /// Analytic narrow-beam transmission for an absorber at energy E,
    /// exp(-Sigma_total * T): the standard foil-attenuation formula, used to
    /// cross-check the MC and to model thin Cd shields cheaply.
    [[nodiscard]] double analytic_transmission(double energy_ev) const;

private:
    template <typename SampleEnergy>
    [[nodiscard]] TransportResult run_histories(SampleEnergy&& sample,
                                                std::uint64_t n,
                                                stats::Rng& rng,
                                                unsigned threads) const;

    Material material_;
    double thickness_;
    TransportConfig config_;
    MaterialXsTable xs_;  ///< built once per material at construction.
};

}  // namespace tnr::physics

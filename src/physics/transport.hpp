#pragma once
// 1-D Monte Carlo neutron transport through a homogeneous slab.
//
// This is the engine behind two of the paper's claims:
//   * a thin cadmium sheet transmits fast neutrons but absorbs thermals
//     (the Tin-II shielded tube, Fig. 6 analysis);
//   * hydrogen-rich materials near a device (water cooling, concrete floors)
//     moderate fast neutrons into thermals and bounce them back, raising the
//     local thermal flux by tens of percent (§V).
//
// Geometry: a slab of thickness T along x; neutrons enter at x=0 travelling
// in +x. Elastic scattering is isotropic in the centre-of-mass frame; capture
// follows 1/v (Cd gets its resonance-edge model). Below the thermal floor the
// neutron re-equilibrates with the medium (energies resampled from a room-
// temperature Maxwellian).

#include <cstdint>
#include <functional>

#include "core/parallel/cancel.hpp"
#include "core/simd/dispatch.hpp"
#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/xs_table.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {

/// Terminal fate of one transported neutron.
enum class Fate : std::uint8_t {
    kTransmitted,  ///< exited the back face (x > T).
    kReflected,    ///< exited the front face (x < 0) — the albedo component.
    kAbsorbed,     ///< captured inside the slab.
    kLost,         ///< exceeded the scatter budget (treated as absorbed).
};

/// Which inner loop transports the histories.
enum class TransportMode : std::uint8_t {
    /// One neutron at a time, analog absorption (a collision either kills
    /// the history or scatters it). Bitwise-stable reference path: for
    /// threads == 1 it reproduces the historical loops exactly.
    kAnalog,
    /// Batched structure-of-arrays kernel with implicit capture: absorption
    /// reduces the history's weight by sigma_a/sigma_t instead of killing
    /// it, Russian roulette trims low-weight survivors, and source energies
    /// come from O(1) alias-table sampling. Same expectations as analog with
    /// far lower variance on rare (thermal-capture) tallies; draw sequences
    /// differ, so results are statistically — not bitwise — equivalent.
    kImplicitCapture,
};

struct TransportConfig {
    std::uint32_t max_scatters = 10'000;
    /// Below this energy the neutron is in equilibrium with the medium and
    /// its energy is resampled from a Maxwellian each scatter.
    double thermal_floor_ev = 0.1;
    double maxwellian_kt_ev = 0.0253;
    /// Worker count for run_monoenergetic / run_spectrum: 1 = serial (bitwise
    /// identical to the historical loops), 0 = all available cores, N = N
    /// deterministic RNG streams on the shared pool. Results are bitwise
    /// reproducible for a fixed (seed, threads) pair and statistically
    /// equivalent across thread counts.
    unsigned threads = 1;
    /// Use the log-grid MaterialXsTable cache in the scatter loop instead of
    /// exact per-component formulas (< 1e-3 relative error, measurably
    /// faster for multi-component materials).
    bool use_xs_table = true;
    /// Inner-loop selection; see TransportMode.
    TransportMode mode = TransportMode::kAnalog;
    /// Lanes advanced in lockstep by the implicit-capture kernel. Larger
    /// batches amortize the sweep overhead; the default keeps the SoA
    /// working set inside L1/L2.
    std::uint32_t batch_size = 512;
    /// Weight window: a history whose weight falls below `weight_floor`
    /// plays Russian roulette — it survives with probability w /
    /// `weight_survival` and continues at `weight_survival`, else it is
    /// terminated. Unbiased for any 0 < floor <= survival.
    double weight_floor = 0.25;
    double weight_survival = 1.0;
    /// SIMD tier for the implicit-capture kernels: kAuto runs the AVX2
    /// sweeps when the build/CPU/TNR_SIMD-env kill switches allow it,
    /// kForceScalar pins the bitwise-reproducible scalar tier, kForceAvx2
    /// requires AVX2 (user-facing layers reject it when unavailable; the
    /// kernels themselves fall back to scalar). The analog mode and any
    /// scalar-tier run are unaffected — they keep their historical draw
    /// sequences exactly.
    core::simd::Policy simd = core::simd::Policy::kAuto;
    /// Cooperative cancellation: checked between worker chunks and at batch
    /// boundaries inside the kernels (every `max_lanes` histories in the
    /// batched tiers, every few thousand in the analog loop), so a serve
    /// request or SIGINT aborts mid-run via RunError::cancelled instead of
    /// computing the remaining histories. Null disables the checks; a
    /// cancelled run's partial tallies are discarded, never returned.
    const core::parallel::CancelToken* cancel = nullptr;
};

/// Mean / variance of one weighted tally, normalized per source neutron.
/// The variance is that of the *mean estimator* (sample variance / n), so
/// rel_std_error shrinks like 1/sqrt(n) and the figure of merit
/// 1 / (rel_err^2 * t) is independent of n — it measures statistics per
/// CPU-second, the currency variance reduction buys.
struct EstimatorStats {
    double mean = 0.0;
    double variance = 0.0;       ///< variance of the mean estimator.
    double rel_std_error = 0.0;  ///< sqrt(variance) / mean (0 if mean == 0).

    [[nodiscard]] double figure_of_merit(double seconds) const noexcept {
        const double r2 = rel_std_error * rel_std_error;
        return (r2 > 0.0 && seconds > 0.0) ? 1.0 / (r2 * seconds) : 0.0;
    }
};

/// Turns per-history tally sums (sum of contributions, sum of squares) over
/// `n` source histories into the mean-estimator statistics above. Shared by
/// the slab and layered result types.
[[nodiscard]] EstimatorStats estimator_from_sums(double sum, double sum_sq,
                                                 std::uint64_t n) noexcept;

/// Aggregated result of transporting N neutrons through a slab.
struct TransportResult {
    std::uint64_t transmitted = 0;
    std::uint64_t reflected = 0;
    std::uint64_t absorbed = 0;
    std::uint64_t lost = 0;
    /// Of the transmitted / reflected neutrons, how many exited thermal
    /// (E < 0.5 eV).
    std::uint64_t transmitted_thermal = 0;
    std::uint64_t reflected_thermal = 0;
    std::uint64_t total = 0;
    /// Scattering collisions summed over all histories (telemetry: where
    /// the transport time goes).
    std::uint64_t collisions = 0;

    /// Kernel health telemetry (implicit-capture batched kernel; all zero
    /// in analog mode). Tallied in plain result fields — off the RNG path —
    /// and flushed into the obs Registry once per run, so counting never
    /// perturbs draw sequences or the bitwise-determinism contract.
    std::uint64_t compactions = 0;        ///< active-lane compaction passes.
    std::uint64_t roulette_kills = 0;     ///< histories roulette terminated.
    std::uint64_t roulette_survivals = 0; ///< histories restored to survival weight.
    std::uint64_t bank_events = 0;        ///< implicit-capture weight bankings.

    /// Weighted tallies: per-history contributions and their squares, for
    /// variance estimation. In analog mode every contribution is 0 or 1, so
    /// e.g. transmitted_w == transmitted; in implicit-capture mode the
    /// weights carry the variance reduction. `absorbed_w` folds kLost in
    /// (matching absorption()).
    double transmitted_w = 0.0;
    double reflected_w = 0.0;
    double absorbed_w = 0.0;
    double transmitted_thermal_w = 0.0;
    double reflected_thermal_w = 0.0;
    double transmitted_w2 = 0.0;
    double reflected_w2 = 0.0;
    double absorbed_w2 = 0.0;

    [[nodiscard]] double transmission() const noexcept {
        return total ? static_cast<double>(transmitted) / static_cast<double>(total) : 0.0;
    }
    [[nodiscard]] double reflection() const noexcept {
        return total ? static_cast<double>(reflected) / static_cast<double>(total) : 0.0;
    }
    [[nodiscard]] double absorption() const noexcept {
        return total ? static_cast<double>(absorbed + lost) / static_cast<double>(total)
                     : 0.0;
    }
    /// Thermal albedo: thermal neutrons re-emitted from the front face per
    /// incident neutron — the quantity that raises the ambient thermal flux
    /// above a concrete slab or next to a cooling loop.
    [[nodiscard]] double thermal_albedo() const noexcept {
        return total ? static_cast<double>(reflected_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }
    [[nodiscard]] double thermal_transmission() const noexcept {
        return total ? static_cast<double>(transmitted_thermal) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /// Weighted (variance-reduced) estimates with uncertainty. In analog
    /// mode these reproduce the count ratios above plus their binomial
    /// error bars.
    [[nodiscard]] EstimatorStats transmission_estimate() const noexcept {
        return estimate(transmitted_w, transmitted_w2);
    }
    [[nodiscard]] EstimatorStats reflection_estimate() const noexcept {
        return estimate(reflected_w, reflected_w2);
    }
    [[nodiscard]] EstimatorStats absorption_estimate() const noexcept {
        return estimate(absorbed_w, absorbed_w2);
    }

    /// Accumulates another result (parallel-reduction merge).
    void merge(const TransportResult& other) noexcept;

private:
    [[nodiscard]] EstimatorStats estimate(double sum, double sum_sq)
        const noexcept;
};

/// Monte Carlo transport through one slab.
class SlabTransport {
public:
    SlabTransport(Material material, double thickness_cm,
                  TransportConfig config = {});

    [[nodiscard]] const Material& material() const noexcept { return material_; }
    [[nodiscard]] double thickness_cm() const noexcept { return thickness_; }

    /// Transport one neutron of the given energy; returns its fate and (via
    /// out-params) its exit energy when it escapes and its scattering
    /// collision count.
    Fate transport_one(double energy_ev, stats::Rng& rng,
                       double* exit_energy_ev = nullptr,
                       std::uint64_t* collisions = nullptr) const;

    /// Transport `n` monoenergetic neutrons, on config.threads workers of
    /// the shared pool (1 = serial, bitwise identical to the historical
    /// loop).
    [[nodiscard]] TransportResult run_monoenergetic(double energy_ev,
                                                    std::uint64_t n,
                                                    stats::Rng& rng) const;

    /// Transport `n` neutrons with energies sampled from `spectrum`, on
    /// config.threads workers of the shared pool.
    [[nodiscard]] TransportResult run_spectrum(const Spectrum& spectrum,
                                               std::uint64_t n,
                                               stats::Rng& rng) const;

    /// Analytic narrow-beam transmission for an absorber at energy E,
    /// exp(-Sigma_total * T): the standard foil-attenuation formula, used to
    /// cross-check the MC and to model thin Cd shields cheaply.
    [[nodiscard]] double analytic_transmission(double energy_ev) const;

private:
    /// `block`, when non-empty, is handed to the batched kernel as its lane
    /// refill source (the AVX2 tier's vectorized path); the scalar tiers
    /// ignore it.
    template <typename SampleEnergy>
    [[nodiscard]] TransportResult run_histories(
        SampleEnergy&& sample, std::uint64_t n, stats::Rng& rng,
        unsigned threads,
        const std::function<void(stats::Rng&, double*, std::uint32_t)>&
            block = {}) const;

    Material material_;
    double thickness_;
    TransportConfig config_;
    MaterialXsTable xs_;  ///< built once per material at construction.
};

}  // namespace tnr::physics

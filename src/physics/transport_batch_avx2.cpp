// AVX2 tier of SlabBatchKernel: the branch-free flight/collision sweep.
//
// Layout and physics match run_scalar — the same implicit-capture weight
// bookkeeping, roulette window and elastic kinematics — but the control
// flow is inverted for vectors:
//
//   * lanes are kept dense: exits/kills mark a lane dead and a compaction
//     pass packs survivors to the array front, so the vector sweeps always
//     run over contiguous live lanes and freed slots are refilled from the
//     source block sampler;
//   * every random draw is pre-filled per lane index through the RNG-block
//     facade (flight exponential, roulette uniform, scatter-mass uniform,
//     mu_cm uniform, two Maxwellian exponentials, new-mu uniform), so the
//     sweeps consume draws by slot instead of calling the generator
//     mid-loop. A lane draws its whole collision budget even when a branch
//     (roulette above the floor, fast-vs-thermal kinematics) would have
//     skipped a draw in the scalar walk — draws are independent of the
//     state that skips them, so expectations are unchanged; only the draw
//     assignment differs, which is why this tier is statistically rather
//     than bitwise equivalent to scalar (pinned at 3 sigma by the tests);
//   * rare per-lane outcomes (exits, transparent media, scatter-budget
//     exhaustion, roulette deaths) drop to scalar fix-up loops driven by
//     movemask bits; everything hot stays masked vector arithmetic.

#include "physics/transport_batch.hpp"

#if TNR_SIMD_X86_AVX2

#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "core/simd/rng_block.hpp"
#include "core/simd/vmath_avx2.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

__attribute__((target("avx2,fma")))
void SlabBatchKernel::run_avx2(const SourceBlockSampler& block,
                               std::uint64_t count, stats::Rng& rng,
                               TransportResult& result) const {
    namespace simd = core::simd;
    constexpr auto kAvx2 = simd::Tier::kAvx2;

    const std::uint32_t max_lanes =
        std::max<std::uint32_t>(4, config_.batch_size);
    const double w_floor = config_.weight_floor;
    const double w_survival = config_.weight_survival;
    const double kt = config_.maxwellian_kt_ev;
    const double thermal_floor = config_.thermal_floor_ev;
    const double max_steps = static_cast<double>(config_.max_scatters);
    const double thickness = thickness_;

    // Persistent lane state (compacted together).
    std::vector<double> e(max_lanes), x(max_lanes), mu(max_lanes),
        w(max_lanes), acc(max_lanes), steps(max_lanes);
    std::vector<std::uint32_t> node(max_lanes);
    std::vector<double> frac(max_lanes);
    std::vector<std::uint8_t> alive(max_lanes);
    // Per-step scratch.
    std::vector<double> sig_s(max_lanes), sig_a(max_lanes), flight(max_lanes),
        u_roul(max_lanes), u_mass(max_lanes), u_mucm(max_lanes),
        mx1(max_lanes), mx2(max_lanes), u_mu(max_lanes), mass(max_lanes);

    const auto tally_exit = [&result](bool transmitted, double weight,
                                      double energy) {
        if (transmitted) {
            ++result.transmitted;
            result.transmitted_w += weight;
            result.transmitted_w2 += weight * weight;
            if (energy < kThermalCutoffEv) {
                ++result.transmitted_thermal;
                result.transmitted_thermal_w += weight;
            }
        } else {
            ++result.reflected;
            result.reflected_w += weight;
            result.reflected_w2 += weight * weight;
            if (energy < kThermalCutoffEv) {
                ++result.reflected_thermal;
                result.reflected_thermal_w += weight;
            }
        }
    };
    const auto tally_absorbed = [&result](double banked) {
        result.absorbed_w += banked;
        result.absorbed_w2 += banked * banked;
    };

    std::uint32_t n = 0;
    const auto compact = [&]() {
        std::uint32_t dst = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!alive[i]) continue;
            if (dst != i) {
                e[dst] = e[i];
                x[dst] = x[i];
                mu[dst] = mu[i];
                w[dst] = w[i];
                acc[dst] = acc[i];
                steps[dst] = steps[i];
                node[dst] = node[i];
                frac[dst] = frac[i];
                alive[dst] = 1;
            }
            ++dst;
        }
        if (dst < n) ++result.compactions;
        n = dst;
    };

    const __m256d v_zero = _mm256_setzero_pd();
    const __m256d v_one = _mm256_set1_pd(1.0);
    const __m256d v_two = _mm256_set1_pd(2.0);
    const __m256d v_neg1 = _mm256_set1_pd(-1.0);
    const __m256d v_thick = _mm256_set1_pd(thickness);
    const __m256d v_maxst = _mm256_set1_pd(max_steps);
    const __m256d v_wfloor = _mm256_set1_pd(w_floor);
    const __m256d v_wsurv = _mm256_set1_pd(w_survival);
    const __m256d v_efloor = _mm256_set1_pd(thermal_floor);
    const __m256d v_kt = _mm256_set1_pd(kt);
    const __m256d v_tiny = _mm256_set1_pd(1e-12);

    std::uint64_t remaining = count;
    for (;;) {
        if (config_.cancel != nullptr) config_.cancel->throw_if_cancelled();
        compact();  // drop lanes killed by the previous roulette pass.

        if (remaining > 0 && n < max_lanes) {
            const auto take = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(max_lanes - n, remaining));
            block(rng, e.data() + n, take);
            for (std::uint32_t i = n; i < n + take; ++i) {
                x[i] = 0.0;
                mu[i] = 1.0;
                w[i] = 1.0;
                acc[i] = 0.0;
                steps[i] = 0.0;
                alive[i] = 1;
            }
            n += take;
            remaining -= take;
            result.total += take;
        }
        if (n == 0) break;

        // Vectorized xs-table sweep + flight-length block.
        xs_->lookup_batch(e.data(), n, sig_s.data(), sig_a.data(),
                          node.data(), frac.data(), kAvx2);
        simd::fill_unit_exponential(rng, flight.data(), n, kAvx2);

        // Sweep A: flight, exits, implicit capture, scatter budget.
        std::uint32_t i = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256d vss = _mm256_loadu_pd(sig_s.data() + i);
            const __m256d vsa = _mm256_loadu_pd(sig_a.data() + i);
            const __m256d vsig = _mm256_add_pd(vss, vsa);
            const __m256d m_trans = _mm256_cmp_pd(vsig, v_zero, _CMP_LE_OQ);
            const __m256d vinv = _mm256_div_pd(v_one, vsig);

            const __m256d vx = _mm256_loadu_pd(x.data() + i);
            const __m256d vmu = _mm256_loadu_pd(mu.data() + i);
            const __m256d vfl = _mm256_loadu_pd(flight.data() + i);
            const __m256d vxn =
                _mm256_fmadd_pd(_mm256_mul_pd(vmu, vfl), vinv, vx);

            // Ordered compares are false on the transparent lanes' NaNs —
            // those lanes are dead via m_trans regardless.
            const __m256d m_exit =
                _mm256_or_pd(_mm256_cmp_pd(vxn, v_thick, _CMP_GE_OQ),
                             _mm256_cmp_pd(vxn, v_zero, _CMP_LE_OQ));
            const __m256d m_dead = _mm256_or_pd(m_trans, m_exit);

            // Keep the old x on transparent lanes (exit side comes from mu);
            // exit lanes store x' so the fix-up can read the crossing side.
            _mm256_storeu_pd(x.data() + i, _mm256_blendv_pd(vxn, vx, m_trans));

            const __m256d vw = _mm256_loadu_pd(w.data() + i);
            const __m256d vacc = _mm256_loadu_pd(acc.data() + i);
            const __m256d captured = _mm256_andnot_pd(
                m_dead, _mm256_mul_pd(_mm256_mul_pd(vw, vsa), vinv));
            _mm256_storeu_pd(acc.data() + i, _mm256_add_pd(vacc, captured));
            const __m256d vw_new =
                _mm256_mul_pd(_mm256_mul_pd(vw, vss), vinv);
            _mm256_storeu_pd(w.data() + i,
                             _mm256_blendv_pd(vw_new, vw, m_dead));

            __m256d vst = _mm256_loadu_pd(steps.data() + i);
            vst = _mm256_add_pd(vst, _mm256_andnot_pd(m_dead, v_one));
            _mm256_storeu_pd(steps.data() + i, vst);
            const __m256d m_budget = _mm256_andnot_pd(
                m_dead, _mm256_cmp_pd(vst, v_maxst, _CMP_GE_OQ));

            const int dead_bits = _mm256_movemask_pd(m_dead);
            const int trans_bits = _mm256_movemask_pd(m_trans);
            const int budget_bits = _mm256_movemask_pd(m_budget);
            const auto colliding =
                static_cast<std::uint64_t>(4 - __builtin_popcount(dead_bits));
            result.collisions += colliding;
            result.bank_events += colliding;

            if (dead_bits) {
                for (int lane = 0; lane < 4; ++lane) {
                    if (!(dead_bits & (1 << lane))) continue;
                    const std::uint32_t j = i + lane;
                    const bool transmitted = (trans_bits & (1 << lane))
                                                 ? mu[j] > 0.0
                                                 : x[j] >= thickness;
                    tally_exit(transmitted, w[j], e[j]);
                    tally_absorbed(acc[j]);
                    alive[j] = 0;
                }
            }
            if (budget_bits) {
                for (int lane = 0; lane < 4; ++lane) {
                    if (!(budget_bits & (1 << lane))) continue;
                    const std::uint32_t j = i + lane;
                    ++result.lost;
                    tally_absorbed(acc[j] + w[j]);
                    alive[j] = 0;
                }
            }
        }
        for (; i < n; ++i) {  // scalar tail, same semantics.
            const double sig_t = sig_s[i] + sig_a[i];
            if (sig_t <= 0.0) {
                tally_exit(mu[i] > 0.0, w[i], e[i]);
                tally_absorbed(acc[i]);
                alive[i] = 0;
                continue;
            }
            x[i] += mu[i] * flight[i] / sig_t;
            if (x[i] >= thickness || x[i] <= 0.0) {
                tally_exit(x[i] >= thickness, w[i], e[i]);
                tally_absorbed(acc[i]);
                alive[i] = 0;
                continue;
            }
            ++result.collisions;
            ++result.bank_events;
            acc[i] += w[i] * (sig_a[i] / sig_t);
            w[i] *= sig_s[i] / sig_t;
            steps[i] += 1.0;
            if (steps[i] >= max_steps) {
                ++result.lost;
                tally_absorbed(acc[i] + w[i]);
                alive[i] = 0;
            }
        }

        compact();  // ~half the lanes exit per step on thin slabs.
        if (n == 0) continue;

        // Collision draw blocks for the survivors, in fixed slot order.
        simd::fill_uniform(rng, u_roul.data(), n, kAvx2);
        simd::fill_uniform(rng, u_mass.data(), n, kAvx2);
        simd::fill_uniform(rng, u_mucm.data(), n, kAvx2);
        simd::fill_unit_exponential(rng, mx1.data(), n, kAvx2);
        simd::fill_unit_exponential(rng, mx2.data(), n, kAvx2);
        simd::fill_uniform(rng, u_mu.data(), n, kAvx2);

        // Sweep B1: Russian roulette below the weight floor.
        i = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256d vw = _mm256_loadu_pd(w.data() + i);
            const __m256d m_below = _mm256_cmp_pd(vw, v_wfloor, _CMP_LT_OQ);
            const __m256d vu = _mm256_loadu_pd(u_roul.data() + i);
            const __m256d m_surv =
                _mm256_cmp_pd(_mm256_mul_pd(vu, v_wsurv), vw, _CMP_LT_OQ);
            const __m256d m_boost = _mm256_and_pd(m_below, m_surv);
            const __m256d m_die = _mm256_andnot_pd(m_surv, m_below);
            _mm256_storeu_pd(w.data() + i,
                             _mm256_blendv_pd(vw, v_wsurv, m_boost));
            const int die_bits = _mm256_movemask_pd(m_die);
            result.roulette_survivals += static_cast<std::uint64_t>(
                __builtin_popcount(_mm256_movemask_pd(m_boost)));
            result.roulette_kills +=
                static_cast<std::uint64_t>(__builtin_popcount(die_bits));
            if (die_bits) {
                for (int lane = 0; lane < 4; ++lane) {
                    if (!(die_bits & (1 << lane))) continue;
                    const std::uint32_t j = i + lane;
                    ++result.absorbed;
                    tally_absorbed(acc[j]);
                    alive[j] = 0;
                }
            }
        }
        for (; i < n; ++i) {
            if (w[i] >= w_floor) continue;
            if (u_roul[i] * w_survival < w[i]) {
                w[i] = w_survival;
                ++result.roulette_survivals;
            } else {
                ++result.absorbed;
                ++result.roulette_kills;
                tally_absorbed(acc[i]);
                alive[i] = 0;
            }
        }

        // Sweep B2: scattering-nuclide selection + elastic kinematics.
        // Roulette-killed lanes compute garbage here and are compacted away
        // at the top of the next iteration — cheaper than re-packing twice.
        xs_->sample_scatter_mass_batch(node.data(), frac.data(),
                                       u_mass.data(), n, mass.data(), kAvx2);
        i = 0;
        for (; i + 4 <= n; i += 4) {
            const __m256d va = _mm256_loadu_pd(mass.data() + i);
            __m256d ve = _mm256_loadu_pd(e.data() + i);
            const __m256d m_fast = _mm256_cmp_pd(ve, v_efloor, _CMP_GT_OQ);

            const __m256d vmu_cm = _mm256_fmadd_pd(
                _mm256_loadu_pd(u_mucm.data() + i), v_two, v_neg1);
            const __m256d va1 = _mm256_add_pd(va, v_one);
            const __m256d num =
                _mm256_fmadd_pd(_mm256_mul_pd(v_two, va), vmu_cm,
                                _mm256_fmadd_pd(va, va, v_one));
            const __m256d ve_fast =
                _mm256_mul_pd(ve, _mm256_div_pd(num, _mm256_mul_pd(va1, va1)));
            ve = _mm256_blendv_pd(ve, ve_fast, m_fast);

            const __m256d m_cold = _mm256_cmp_pd(ve, v_efloor, _CMP_LE_OQ);
            const __m256d ve_maxw = _mm256_mul_pd(
                v_kt, _mm256_add_pd(_mm256_loadu_pd(mx1.data() + i),
                                    _mm256_loadu_pd(mx2.data() + i)));
            ve = _mm256_blendv_pd(ve, ve_maxw, m_cold);
            _mm256_storeu_pd(e.data() + i, ve);

            __m256d vmu = _mm256_fmadd_pd(_mm256_loadu_pd(u_mu.data() + i),
                                          v_two, v_neg1);
            const __m256d m_zero_mu = _mm256_cmp_pd(vmu, v_zero, _CMP_EQ_OQ);
            vmu = _mm256_blendv_pd(vmu, v_tiny, m_zero_mu);
            _mm256_storeu_pd(mu.data() + i, vmu);
        }
        for (; i < n; ++i) {
            const double a = mass[i];
            if (e[i] > thermal_floor) {
                const double mu_cm = -1.0 + 2.0 * u_mucm[i];
                const double a1 = a + 1.0;
                e[i] *= (a * a + 1.0 + 2.0 * a * mu_cm) / (a1 * a1);
            }
            if (e[i] <= thermal_floor) {
                e[i] = kt * (mx1[i] + mx2[i]);
            }
            mu[i] = -1.0 + 2.0 * u_mu[i];
            if (mu[i] == 0.0) mu[i] = 1e-12;
        }
    }
}

}  // namespace tnr::physics

#endif  // TNR_SIMD_X86_AVX2

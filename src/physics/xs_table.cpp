#include "physics/xs_table.hpp"

#include <algorithm>
#include <cmath>

#include "physics/cross_sections.hpp"
#include "physics/units.hpp"

namespace tnr::physics {

namespace {

// Grid span. The lower end sits below any Maxwellian re-sample the transport
// can realistically produce; the upper end covers the atmospheric spectrum's
// 1 GeV tail. At 128 nodes per decade the steepest library branch (cadmium's
// E^-3 resonance tail) carries a linear-interpolation error of
// alpha^2 h^2 / 8 ~ 4e-4, inside the 1e-3 contract with margin.
constexpr double kGridMinEv = 1.0e-7;
constexpr double kGridMaxEv = 2.0e9;
constexpr int kNodesPerDecade = 128;

/// The cadmium model (cross_sections.cpp) switches branches at the 0.5 eV
/// cutoff and again where the E^-3 resonance tail meets the 1/v epithermal
/// floor; solve tail(E) == floor(E) for the second kink. Both are scale-free:
/// Material scales the whole curve by sigma_thermal / kCdCaptureBarns.
double cd_tail_floor_crossover_ev() noexcept {
    // body/r^3 = 7 sqrt(cutoff/E) with body = sigma0 sqrt(E_th/E):
    // E^3 = sigma0 sqrt(E_th) cutoff^3 / (7 sqrt(cutoff)).
    const double lhs = kCdCaptureBarns * std::sqrt(kThermalReferenceEv) *
                       kThermalCutoffEv * kThermalCutoffEv * kThermalCutoffEv /
                       (7.0 * std::sqrt(kThermalCutoffEv));
    return std::cbrt(lhs);
}

}  // namespace

MaterialXsTable::MaterialXsTable(const Material& material) {
    const auto& comps = material.components();
    components_ = comps.size();

    ln_e_min_ = std::log(kGridMinEv);
    const double ln_e_max = std::log(kGridMaxEv);
    const double decades = (ln_e_max - ln_e_min_) / std::log(10.0);
    const auto base_nodes =
        static_cast<std::size_t>(decades * kNodesPerDecade) + 1;
    const std::size_t cells = base_nodes - 1;
    const double cell_width = (ln_e_max - ln_e_min_) / static_cast<double>(cells);
    inv_cell_width_ = 1.0 / cell_width;

    ln_energy_.reserve(base_nodes + 4);
    for (std::size_t i = 0; i < base_nodes; ++i) {
        const double f = static_cast<double>(i) /
                         static_cast<double>(base_nodes - 1);
        ln_energy_.push_back(ln_e_min_ + f * (ln_e_max - ln_e_min_));
    }

    const bool has_cadmium =
        std::any_of(comps.begin(), comps.end(),
                    [](const NuclideComponent& c) { return c.cadmium_like; });
    if (has_cadmium) {
        ln_energy_.push_back(std::log(kThermalCutoffEv));
        ln_energy_.push_back(std::log(cd_tail_floor_crossover_ev()));
        std::sort(ln_energy_.begin(), ln_energy_.end());
        ln_energy_.erase(std::unique(ln_energy_.begin(), ln_energy_.end()),
                         ln_energy_.end());
    }

    const std::size_t nodes = ln_energy_.size();
    sigma_s_.resize(nodes);
    sigma_a_.resize(nodes);
    cum_elastic_.resize(nodes * components_);
    mass_numbers_.reserve(components_);
    for (const auto& c : comps) mass_numbers_.push_back(c.mass_number);

    for (std::size_t i = 0; i < nodes; ++i) {
        const double e = std::exp(ln_energy_[i]);
        double sigma_s = 0.0;
        double* cum = &cum_elastic_[i * components_];
        for (std::size_t c = 0; c < components_; ++c) {
            sigma_s += comps[c].macro_elastic_per_cm(e);
            cum[c] = sigma_s;
        }
        if (sigma_s > 0.0) {
            for (std::size_t c = 0; c < components_; ++c) cum[c] /= sigma_s;
        } else {
            for (std::size_t c = 0; c < components_; ++c) cum[c] = 1.0;
        }
        sigma_s_[i] = sigma_s;
        sigma_a_[i] = material.sigma_absorb(e);
    }

    // Per-cell locate table: the last node at or below each uniform cell's
    // left edge. Without kink nodes this is the identity map; with them the
    // lookup's forward scan covers the (at most two) extra nodes.
    accel_.resize(cells);
    std::size_t node = 0;
    for (std::size_t j = 0; j < cells; ++j) {
        const double cell_lo = ln_e_min_ + static_cast<double>(j) * cell_width;
        while (node + 1 < nodes && ln_energy_[node + 1] <= cell_lo) ++node;
        accel_[j] = static_cast<std::uint32_t>(node);
    }
}

MaterialXsTable::Lookup MaterialXsTable::lookup(
    double energy_ev) const noexcept {
    const double ln_e =
        std::log(std::clamp(energy_ev, kGridMinEv, kGridMaxEv));

    const auto cell = std::min<std::size_t>(
        accel_.size() - 1,
        static_cast<std::size_t>(
            std::max(0.0, (ln_e - ln_e_min_) * inv_cell_width_)));
    std::size_t lo = accel_[cell];
    const std::size_t last = ln_energy_.size() - 1;
    while (lo + 1 < last && ln_energy_[lo + 1] <= ln_e) ++lo;
    while (lo > 0 && ln_energy_[lo] > ln_e) --lo;  // rounding guard.
    const std::size_t hi = lo + 1;

    const double span = ln_energy_[hi] - ln_energy_[lo];
    const double frac =
        span > 0.0 ? std::clamp((ln_e - ln_energy_[lo]) / span, 0.0, 1.0) : 0.0;

    Lookup lk;
    lk.node = lo;
    lk.frac = frac;
    lk.sigma_scatter = sigma_s_[lo] + frac * (sigma_s_[hi] - sigma_s_[lo]);
    lk.sigma_absorb = sigma_a_[lo] + frac * (sigma_a_[hi] - sigma_a_[lo]);
    return lk;
}

double MaterialXsTable::sample_scatter_mass(const Lookup& lk,
                                            stats::Rng& rng) const noexcept {
    const double u = rng.uniform();
    if (components_ == 1) return mass_numbers_.front();
    const double* lo = &cum_elastic_[lk.node * components_];
    const double* hi = lo + components_;
    for (std::size_t c = 0; c + 1 < components_; ++c) {
        // Interpolated cumulative fraction: a convex mix of two monotone
        // vectors ending at 1, so the walk always terminates.
        const double cum = lo[c] + lk.frac * (hi[c] - lo[c]);
        if (u < cum) return mass_numbers_[c];
    }
    return mass_numbers_.back();
}

void MaterialXsTable::lookup_batch(const double* energy_ev, std::size_t n,
                                   double* sigma_s, double* sigma_a,
                                   std::uint32_t* node, double* frac,
                                   core::simd::Tier tier) const noexcept {
#if TNR_SIMD_X86_AVX2
    if (tier == core::simd::Tier::kAvx2) {
        lookup_batch_avx2(energy_ev, n, sigma_s, sigma_a, node, frac);
        return;
    }
#endif
    (void)tier;
    for (std::size_t i = 0; i < n; ++i) {
        const Lookup lk = lookup(energy_ev[i]);
        sigma_s[i] = lk.sigma_scatter;
        sigma_a[i] = lk.sigma_absorb;
        node[i] = static_cast<std::uint32_t>(lk.node);
        frac[i] = lk.frac;
    }
}

void MaterialXsTable::sample_scatter_mass_batch(
    const std::uint32_t* node, const double* frac, const double* u,
    std::size_t n, double* mass, core::simd::Tier tier) const noexcept {
    if (components_ == 1) {
        const double m = mass_numbers_.front();
        for (std::size_t i = 0; i < n; ++i) mass[i] = m;
        return;
    }
#if TNR_SIMD_X86_AVX2
    if (tier == core::simd::Tier::kAvx2) {
        sample_scatter_mass_batch_avx2(node, frac, u, n, mass);
        return;
    }
#endif
    (void)tier;
    for (std::size_t i = 0; i < n; ++i) {
        const double* lo = &cum_elastic_[node[i] * components_];
        const double* hi = lo + components_;
        double m = mass_numbers_.back();
        for (std::size_t c = 0; c + 1 < components_; ++c) {
            const double cum = lo[c] + frac[i] * (hi[c] - lo[c]);
            if (u[i] < cum) {
                m = mass_numbers_[c];
                break;
            }
        }
        mass[i] = m;
    }
}

double MaterialXsTable::min_energy_ev() const noexcept { return kGridMinEv; }
double MaterialXsTable::max_energy_ev() const noexcept { return kGridMaxEv; }

}  // namespace tnr::physics

// Monte Carlo slab transport tests: analytic cross-checks, moderation
// physics (water thermalizes fast neutrons), and the shielding claims of the
// paper's §V (thin Cd kills thermals; borated plastic absorbs; water/concrete
// slabs return a thermal albedo).

#include <gtest/gtest.h>

#include <cmath>

#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {
namespace {

constexpr std::uint64_t kNeutrons = 20000;

TEST(Transport, ConservesNeutrons) {
    const SlabTransport slab(Material::water(), 5.0);
    stats::Rng rng(40);
    const TransportResult r = slab.run_monoenergetic(1.0e6, kNeutrons, rng);
    EXPECT_EQ(r.transmitted + r.reflected + r.absorbed + r.lost, r.total);
    EXPECT_EQ(r.total, kNeutrons);
}

TEST(Transport, ThinSlabMatchesAnalyticTransmission) {
    // A very thin absorber-dominated slab: MC transmission ~ exp(-Sigma t).
    const SlabTransport slab(Material::cadmium(), 0.002);
    stats::Rng rng(41);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, 100000, rng);
    const double analytic = slab.analytic_transmission(kThermalReferenceEv);
    EXPECT_NEAR(r.transmission(), analytic, 0.02);
}

TEST(Transport, CadmiumBlocksThermals) {
    // 0.5 mm Cd: thermal transmission essentially zero.
    const SlabTransport slab(Material::cadmium(), 0.05);
    stats::Rng rng(42);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, kNeutrons, rng);
    EXPECT_LT(r.transmission(), 0.01);
    EXPECT_GT(r.absorption(), 0.9);
}

TEST(Transport, CadmiumPassesFastNeutrons) {
    // The same sheet barely attenuates 1 MeV neutrons — the Tin-II shielded
    // tube still sees all the fast/gamma background.
    const SlabTransport slab(Material::cadmium(), 0.05);
    stats::Rng rng(43);
    const TransportResult r = slab.run_monoenergetic(1.0e6, kNeutrons, rng);
    EXPECT_GT(r.transmission(), 0.95);
}

TEST(Transport, WaterThermalizesFastNeutrons) {
    // 10 cm of water: a meaningful share of 2 MeV neutrons leave thermal.
    const SlabTransport slab(Material::water(), 10.0);
    stats::Rng rng(44);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    const double thermal_out =
        static_cast<double>(r.transmitted_thermal + r.reflected_thermal) /
        static_cast<double>(r.total);
    EXPECT_GT(thermal_out, 0.10);
}

TEST(Transport, WaterThermalAlbedoSignificant) {
    // Fast neutrons bounced back *as thermals* are what raises the ambient
    // thermal flux next to a cooling loop: the albedo should be >5% and the
    // dominant thermal exit channel for a thick slab.
    const SlabTransport slab(Material::water(), 30.0);
    stats::Rng rng(45);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_GT(r.thermal_albedo(), 0.05);
    EXPECT_GT(r.thermal_albedo(), r.thermal_transmission());
}

TEST(Transport, ConcreteAlsoModerates) {
    const SlabTransport slab(Material::concrete(), 20.0);
    stats::Rng rng(46);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_GT(r.thermal_albedo(), 0.02);
}

TEST(Transport, BoratedPolyAbsorbsThermalizedNeutrons) {
    // Borated poly moderates like poly but eats the thermals it makes:
    // its thermal albedo is far below plain polyethylene's.
    const SlabTransport borated(Material::borated_poly(), 10.0);
    const SlabTransport plain(Material::polyethylene(), 10.0);
    stats::Rng rng(47);
    const TransportResult rb = borated.run_monoenergetic(2.0e6, kNeutrons, rng);
    const TransportResult rp = plain.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_LT(rb.thermal_albedo(), 0.3 * rp.thermal_albedo());
}

TEST(Transport, BoratedPolyShieldsThermalBeam) {
    // "Some inches of boron plastic" (§V) kill an incident thermal beam.
    const SlabTransport slab(Material::borated_poly(), 5.0);
    stats::Rng rng(48);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, kNeutrons, rng);
    EXPECT_LT(r.transmission(), 0.01);
}

TEST(Transport, ThickerSlabAbsorbsMore) {
    stats::Rng rng(49);
    const SlabTransport thin(Material::water(), 2.0);
    const SlabTransport thick(Material::water(), 20.0);
    const double t_thin =
        thin.run_monoenergetic(1.0e6, kNeutrons, rng).transmission();
    const double t_thick =
        thick.run_monoenergetic(1.0e6, kNeutrons, rng).transmission();
    EXPECT_GT(t_thin, t_thick);
}

TEST(Transport, SpectrumRunUsesAllEnergies) {
    const SlabTransport slab(Material::water(), 5.0);
    stats::Rng rng(50);
    const auto spectrum = chipir_spectrum();
    const TransportResult r = slab.run_spectrum(*spectrum, 5000, rng);
    EXPECT_EQ(r.total, 5000u);
    // With a mixed spectrum there must be some of everything.
    EXPECT_GT(r.transmitted, 0u);
    EXPECT_GT(r.absorbed + r.reflected, 0u);
}

TEST(Transport, InvalidThicknessThrows) {
    EXPECT_THROW(SlabTransport(Material::water(), 0.0), std::invalid_argument);
    EXPECT_THROW(SlabTransport(Material::water(), -1.0), std::invalid_argument);
}

TEST(Transport, AnalyticTransmissionDecreasesWithEnergyForCd) {
    const SlabTransport slab(Material::cadmium(), 0.05);
    // Thermal deeply absorbed, epithermal window open.
    EXPECT_LT(slab.analytic_transmission(0.0253), 1e-2);
    EXPECT_GT(slab.analytic_transmission(100.0), 0.5);
}

}  // namespace
}  // namespace tnr::physics

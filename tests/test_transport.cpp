// Monte Carlo slab transport tests: analytic cross-checks, moderation
// physics (water thermalizes fast neutrons), and the shielding claims of the
// paper's §V (thin Cd kills thermals; borated plastic absorbs; water/concrete
// slabs return a thermal albedo).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "physics/alias_table.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/transport_batch.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {
namespace {

constexpr std::uint64_t kNeutrons = 20000;

TEST(Transport, ConservesNeutrons) {
    const SlabTransport slab(Material::water(), 5.0);
    stats::Rng rng(40);
    const TransportResult r = slab.run_monoenergetic(1.0e6, kNeutrons, rng);
    EXPECT_EQ(r.transmitted + r.reflected + r.absorbed + r.lost, r.total);
    EXPECT_EQ(r.total, kNeutrons);
}

TEST(Transport, ThinSlabMatchesAnalyticTransmission) {
    // A very thin absorber-dominated slab: MC transmission ~ exp(-Sigma t).
    const SlabTransport slab(Material::cadmium(), 0.002);
    stats::Rng rng(41);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, 100000, rng);
    const double analytic = slab.analytic_transmission(kThermalReferenceEv);
    EXPECT_NEAR(r.transmission(), analytic, 0.02);
}

TEST(Transport, CadmiumBlocksThermals) {
    // 0.5 mm Cd: thermal transmission essentially zero.
    const SlabTransport slab(Material::cadmium(), 0.05);
    stats::Rng rng(42);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, kNeutrons, rng);
    EXPECT_LT(r.transmission(), 0.01);
    EXPECT_GT(r.absorption(), 0.9);
}

TEST(Transport, CadmiumPassesFastNeutrons) {
    // The same sheet barely attenuates 1 MeV neutrons — the Tin-II shielded
    // tube still sees all the fast/gamma background.
    const SlabTransport slab(Material::cadmium(), 0.05);
    stats::Rng rng(43);
    const TransportResult r = slab.run_monoenergetic(1.0e6, kNeutrons, rng);
    EXPECT_GT(r.transmission(), 0.95);
}

TEST(Transport, WaterThermalizesFastNeutrons) {
    // 10 cm of water: a meaningful share of 2 MeV neutrons leave thermal.
    const SlabTransport slab(Material::water(), 10.0);
    stats::Rng rng(44);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    const double thermal_out =
        static_cast<double>(r.transmitted_thermal + r.reflected_thermal) /
        static_cast<double>(r.total);
    EXPECT_GT(thermal_out, 0.10);
}

TEST(Transport, WaterThermalAlbedoSignificant) {
    // Fast neutrons bounced back *as thermals* are what raises the ambient
    // thermal flux next to a cooling loop: the albedo should be >5% and the
    // dominant thermal exit channel for a thick slab.
    const SlabTransport slab(Material::water(), 30.0);
    stats::Rng rng(45);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_GT(r.thermal_albedo(), 0.05);
    EXPECT_GT(r.thermal_albedo(), r.thermal_transmission());
}

TEST(Transport, ConcreteAlsoModerates) {
    const SlabTransport slab(Material::concrete(), 20.0);
    stats::Rng rng(46);
    const TransportResult r = slab.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_GT(r.thermal_albedo(), 0.02);
}

TEST(Transport, BoratedPolyAbsorbsThermalizedNeutrons) {
    // Borated poly moderates like poly but eats the thermals it makes:
    // its thermal albedo is far below plain polyethylene's.
    const SlabTransport borated(Material::borated_poly(), 10.0);
    const SlabTransport plain(Material::polyethylene(), 10.0);
    stats::Rng rng(47);
    const TransportResult rb = borated.run_monoenergetic(2.0e6, kNeutrons, rng);
    const TransportResult rp = plain.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_LT(rb.thermal_albedo(), 0.3 * rp.thermal_albedo());
}

TEST(Transport, BoratedPolyShieldsThermalBeam) {
    // "Some inches of boron plastic" (§V) kill an incident thermal beam.
    const SlabTransport slab(Material::borated_poly(), 5.0);
    stats::Rng rng(48);
    const TransportResult r =
        slab.run_monoenergetic(kThermalReferenceEv, kNeutrons, rng);
    EXPECT_LT(r.transmission(), 0.01);
}

TEST(Transport, ThickerSlabAbsorbsMore) {
    stats::Rng rng(49);
    const SlabTransport thin(Material::water(), 2.0);
    const SlabTransport thick(Material::water(), 20.0);
    const double t_thin =
        thin.run_monoenergetic(1.0e6, kNeutrons, rng).transmission();
    const double t_thick =
        thick.run_monoenergetic(1.0e6, kNeutrons, rng).transmission();
    EXPECT_GT(t_thin, t_thick);
}

TEST(Transport, SpectrumRunUsesAllEnergies) {
    const SlabTransport slab(Material::water(), 5.0);
    stats::Rng rng(50);
    const auto spectrum = chipir_spectrum();
    const TransportResult r = slab.run_spectrum(*spectrum, 5000, rng);
    EXPECT_EQ(r.total, 5000u);
    // With a mixed spectrum there must be some of everything.
    EXPECT_GT(r.transmitted, 0u);
    EXPECT_GT(r.absorbed + r.reflected, 0u);
}

TEST(Transport, InvalidThicknessThrows) {
    EXPECT_THROW(SlabTransport(Material::water(), 0.0), std::invalid_argument);
    EXPECT_THROW(SlabTransport(Material::water(), -1.0), std::invalid_argument);
}

TEST(Transport, AnalyticTransmissionDecreasesWithEnergyForCd) {
    const SlabTransport slab(Material::cadmium(), 0.05);
    // Thermal deeply absorbed, epithermal window open.
    EXPECT_LT(slab.analytic_transmission(0.0253), 1e-2);
    EXPECT_GT(slab.analytic_transmission(100.0), 0.5);
}

// --- Implicit-capture (batched SoA) kernel equivalence -----------------------

namespace {

TransportConfig implicit_config() {
    TransportConfig cfg;
    cfg.mode = TransportMode::kImplicitCapture;
    return cfg;
}

/// |a - b| within 3 combined sigmas (plus a tiny absolute slack for
/// near-deterministic channels whose variance estimate is ~0).
void expect_within_3_sigma(const EstimatorStats& a, const EstimatorStats& b,
                           const char* what) {
    const double sigma = std::sqrt(a.variance + b.variance);
    EXPECT_LE(std::abs(a.mean - b.mean), 3.0 * sigma + 1e-4)
        << what << ": analog " << a.mean << " vs implicit " << b.mean
        << " (sigma " << sigma << ")";
}

}  // namespace

TEST(TransportImplicit, MatchesAnalogAcrossMaterialsAndEnergies) {
    struct Case {
        Material material;
        double thickness_cm;
    };
    const Case cases[] = {{Material::water(), 5.0},
                          {Material::concrete(), 10.0},
                          {Material::cadmium(), 0.05}};
    const double energies[] = {0.0253, 100.0, 1.0e6};
    constexpr std::uint64_t kN = 40'000;
    std::uint64_t seed = 7000;
    for (const auto& c : cases) {
        const SlabTransport analog(c.material, c.thickness_cm);
        const SlabTransport implicit(c.material, c.thickness_cm,
                                     implicit_config());
        for (const double e : energies) {
            stats::Rng rng_a(seed);
            stats::Rng rng_i(seed);
            ++seed;
            const auto a = analog.run_monoenergetic(e, kN, rng_a);
            const auto i = implicit.run_monoenergetic(e, kN, rng_i);
            EXPECT_EQ(i.total, kN);
            expect_within_3_sigma(a.transmission_estimate(),
                                  i.transmission_estimate(), "transmission");
            expect_within_3_sigma(a.reflection_estimate(),
                                  i.reflection_estimate(), "reflection");
            expect_within_3_sigma(a.absorption_estimate(),
                                  i.absorption_estimate(), "absorption");
        }
    }
}

TEST(TransportImplicit, AnalogEstimatesReproduceCountRatios) {
    // In analog mode the weighted tallies are 0/1 contributions: the
    // estimator means are exactly the historical count ratios, and the
    // error bars are the binomial ones.
    const SlabTransport slab(Material::water(), 5.0);
    stats::Rng rng(7100);
    const auto r = slab.run_monoenergetic(1.0e6, 20'000, rng);
    EXPECT_DOUBLE_EQ(r.transmission_estimate().mean, r.transmission());
    EXPECT_DOUBLE_EQ(r.reflection_estimate().mean, r.reflection());
    EXPECT_DOUBLE_EQ(r.absorption_estimate().mean, r.absorption());
    const double p = r.transmission();
    const double n = static_cast<double>(r.total);
    EXPECT_NEAR(r.transmission_estimate().variance, p * (1.0 - p) / n,
                1e-12);
}

TEST(TransportImplicit, WeightIsConserved) {
    // Expected total weight out (transmitted + reflected + absorbed) is one
    // per source neutron; roulette adds variance but no bias.
    TransportConfig cfg = implicit_config();
    cfg.weight_floor = 0.9;  // aggressive roulette.
    const SlabTransport slab(Material::water(), 5.0, cfg);
    stats::Rng rng(7200);
    const auto r = slab.run_monoenergetic(100.0, 50'000, rng);
    const auto t = r.transmission_estimate();
    const auto refl = r.reflection_estimate();
    const auto absd = r.absorption_estimate();
    const double total_w = t.mean + refl.mean + absd.mean;
    const double sigma =
        std::sqrt(t.variance + refl.variance + absd.variance);
    EXPECT_NEAR(total_w, 1.0, 3.0 * sigma + 1e-3);
}

TEST(TransportImplicit, PureThermalAbsorberTerminates) {
    // Thermal beam on cadmium: sigma_s/sigma_t is tiny, so weights collapse
    // and roulette must terminate every history (no spin on zero weights).
    const SlabTransport slab(Material::cadmium(), 0.05, implicit_config());
    stats::Rng rng(7300);
    const auto r = slab.run_monoenergetic(kThermalReferenceEv, 20'000, rng);
    EXPECT_EQ(r.total, 20'000u);
    EXPECT_GT(r.absorption_estimate().mean, 0.9);
    EXPECT_LT(r.transmission_estimate().mean, 0.01);
}

TEST(TransportImplicit, BatchSizeIsStatisticallyInvariant) {
    constexpr std::uint64_t kN = 30'000;
    TransportConfig small = implicit_config();
    small.batch_size = 1;
    TransportConfig large = implicit_config();
    large.batch_size = 4096;
    const SlabTransport a(Material::water(), 5.0, small);
    const SlabTransport b(Material::water(), 5.0, large);
    stats::Rng rng_a(7400);
    stats::Rng rng_b(7401);
    const auto ra = a.run_monoenergetic(1.0e6, kN, rng_a);
    const auto rb = b.run_monoenergetic(1.0e6, kN, rng_b);
    expect_within_3_sigma(ra.transmission_estimate(),
                          rb.transmission_estimate(), "transmission");
    expect_within_3_sigma(ra.absorption_estimate(),
                          rb.absorption_estimate(), "absorption");
}

TEST(TransportImplicit, ReducesVarianceOnRareAbsorption) {
    // The tentpole claim: for a rare capture tally (thin moderator, few-%
    // absorption) implicit capture resolves the channel with far less
    // variance at equal history count.
    const SlabTransport analog(Material::water(), 0.5);
    const SlabTransport implicit(Material::water(), 0.5, implicit_config());
    stats::Rng rng_a(7500);
    stats::Rng rng_i(7500);
    constexpr std::uint64_t kN = 40'000;
    const auto a = analog.run_monoenergetic(kThermalReferenceEv, kN, rng_a);
    const auto i = implicit.run_monoenergetic(kThermalReferenceEv, kN, rng_i);
    ASSERT_GT(a.absorption_estimate().mean, 0.0);
    ASSERT_GT(i.absorption_estimate().mean, 0.0);
    expect_within_3_sigma(a.absorption_estimate(), i.absorption_estimate(),
                          "absorption");
    EXPECT_LT(i.absorption_estimate().variance,
              0.25 * a.absorption_estimate().variance);
}

TEST(TransportImplicit, InvalidWeightWindowThrows) {
    TransportConfig cfg = implicit_config();
    cfg.weight_floor = 0.0;
    const SlabTransport slab(Material::water(), 5.0, cfg);
    stats::Rng rng(7600);
    EXPECT_THROW((void)slab.run_monoenergetic(1.0e6, 100, rng),
                 std::invalid_argument);
    TransportConfig inverted = implicit_config();
    inverted.weight_floor = 0.5;
    inverted.weight_survival = 0.25;
    const SlabTransport slab2(Material::water(), 5.0, inverted);
    EXPECT_THROW((void)slab2.run_monoenergetic(1.0e6, 100, rng),
                 std::invalid_argument);
}

TEST(TransportImplicit, RouletteHelperIsUnbiasedAndTerminal) {
    // Dead histories end with exactly zero weight; survivors at exactly the
    // survival weight; above the floor the weight is untouched.
    stats::Rng rng(7700);
    double untouched = 0.8;
    EXPECT_TRUE(roulette_survives(untouched, 0.5, 1.0, rng));
    EXPECT_DOUBLE_EQ(untouched, 0.8);

    double survived_sum = 0.0;
    constexpr int kTrials = 200'000;
    const double w0 = 0.1;
    for (int t = 0; t < kTrials; ++t) {
        double w = w0;
        if (roulette_survives(w, 0.5, 1.0, rng)) {
            EXPECT_DOUBLE_EQ(w, 1.0);
            survived_sum += w;
        } else {
            EXPECT_DOUBLE_EQ(w, 0.0);
        }
    }
    // E[w after] = w0: the survivor boost offsets the kill probability.
    EXPECT_NEAR(survived_sum / kTrials, w0, 5e-3);

    // A zero weight always dies — the kernel cannot spin on it.
    double zero = 0.0;
    EXPECT_FALSE(roulette_survives(zero, 0.5, 1.0, rng));
}

// --- Alias-table source sampling ---------------------------------------------

TEST(AliasSampling, MatchesInverseCdfDistribution) {
    // Two-sample chi-square between the lower_bound inverse-CDF sampler and
    // the alias-table sampler on the same tabulated spectrum. The alias bin
    // probabilities equal the CDF bin masses and both interpolate
    // log-uniformly within a bin, so the distributions are identical — the
    // statistic stays near its degrees of freedom.
    const TabulatedSpectrum spectrum(
        "test", {{1.0e-3, 5.0}, {1.0e-1, 40.0}, {1.0e1, 8.0},
                 {1.0e3, 0.5}, {1.0e5, 2.0}});
    constexpr int kSamples = 200'000;
    constexpr int kBins = 24;
    const double lo = std::log(spectrum.min_energy_ev());
    const double hi = std::log(spectrum.max_energy_ev());
    std::vector<double> a(kBins, 0.0);
    std::vector<double> b(kBins, 0.0);
    const auto bin_of = [&](double e) {
        const int i = static_cast<int>((std::log(e) - lo) / (hi - lo) * kBins);
        return std::clamp(i, 0, kBins - 1);
    };
    stats::Rng rng_a(7800);
    stats::Rng rng_b(7801);
    for (int s = 0; s < kSamples; ++s) {
        a[static_cast<std::size_t>(bin_of(spectrum.sample_energy(rng_a)))] +=
            1.0;
        b[static_cast<std::size_t>(
            bin_of(spectrum.sample_energy_fast(rng_b)))] += 1.0;
    }
    double chi2 = 0.0;
    int dof = 0;
    for (int i = 0; i < kBins; ++i) {
        const auto k = static_cast<std::size_t>(i);
        if (a[k] + b[k] < 10.0) continue;
        const double d = a[k] - b[k];
        chi2 += d * d / (a[k] + b[k]);
        ++dof;
    }
    ASSERT_GT(dof, 5);
    // P(chi2 > dof + 4*sqrt(2*dof)) is ~1e-4; with fixed seeds this is a
    // deterministic regression check, not a flake source.
    EXPECT_LT(chi2, dof + 4.0 * std::sqrt(2.0 * dof));
}

TEST(AliasSampling, TableMatchesWeights) {
    const std::vector<double> weights = {1.0, 3.0, 0.5, 0.0, 5.5};
    const AliasTable table(weights);
    ASSERT_EQ(table.size(), weights.size());
    double total = 0.0;
    for (const double w : weights) total += w;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        EXPECT_NEAR(table.probability(i), weights[i] / total, 1e-12);
    }
    // Empirical frequencies agree too.
    stats::Rng rng(7900);
    std::vector<double> counts(weights.size(), 0.0);
    constexpr int kDraws = 100'000;
    for (int d = 0; d < kDraws; ++d) counts[table.sample(rng)] += 1.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        EXPECT_NEAR(counts[i] / kDraws, weights[i] / total, 0.01);
    }
}

TEST(AliasSampling, RejectsDegenerateWeights) {
    EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
    EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
    EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(AliasSampling, CompositeSpectrumFastSamplerStaysInSupport) {
    const auto spectrum = chipir_spectrum();
    stats::Rng rng(8000);
    for (int i = 0; i < 10'000; ++i) {
        const double e = spectrum->sample_energy_fast(rng);
        EXPECT_TRUE(std::isfinite(e));
        EXPECT_GE(e, spectrum->min_energy_ev());
        EXPECT_LE(e, spectrum->max_energy_ev());
    }
}

// --- Lazy sampling-table thread safety ---------------------------------------

TEST(SpectrumThreadSafety, ConcurrentFirstSampleIsSafe) {
    // Regression for the lazy CDF build race: many threads take their first
    // sample from a freshly built spectrum with no prepare_sampling() call.
    // Run under TSan (TNR_SANITIZE=thread) this pins the std::call_once fix.
    const TabulatedSpectrum spectrum(
        "race", {{1.0e-2, 1.0}, {1.0, 10.0}, {1.0e2, 3.0}, {1.0e4, 0.2}});
    constexpr int kThreads = 8;
    std::atomic<int> bad{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&spectrum, &bad, t] {
            stats::Rng rng(9000 + static_cast<std::uint64_t>(t));
            for (int i = 0; i < 2'000; ++i) {
                const double e = (i % 2 == 0)
                                     ? spectrum.sample_energy(rng)
                                     : spectrum.sample_energy_fast(rng);
                if (!(e >= spectrum.min_energy_ev() &&
                      e <= spectrum.max_energy_ev())) {
                    bad.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(bad.load(), 0);
}

// --- SIMD dispatch: scalar bitwise contract and AVX2 equivalence -------------

TEST(TransportSimd, ForcedScalarImplicitIsBitwiseGolden) {
    // Golden tallies captured from the pre-SIMD kernel (threads == 1): the
    // scalar tier is the bitwise-reproducible reference, so the dispatch
    // layer and RNG-block facade must not move a single bit. TNR_SIMD=off
    // exercises the same path through the env kill switch (CI forced-scalar
    // job).
    TransportConfig cfg;
    cfg.mode = TransportMode::kImplicitCapture;
    cfg.simd = core::simd::Policy::kForceScalar;
    const SlabTransport slab(Material::water(), 5.0, cfg);
    stats::Rng rng(7001);
    const TransportResult r = slab.run_monoenergetic(0.0253, 40000, rng);
    EXPECT_EQ(r.transmitted, 7179u);
    EXPECT_EQ(r.reflected, 32523u);
    EXPECT_EQ(r.absorbed, 298u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.transmitted_thermal, 7179u);
    EXPECT_EQ(r.reflected_thermal, 32523u);
    EXPECT_EQ(r.collisions, 686413u);
    EXPECT_EQ(r.transmitted_w, 0x1.2955de78a4642p+12);
    EXPECT_EQ(r.reflected_w, 0x1.ba61d87ef563dp+14);
    EXPECT_EQ(r.absorbed_w, 0x1.b1afba31348abp+12);
    EXPECT_EQ(r.transmitted_thermal_w, 0x1.2955de78a4642p+12);
    EXPECT_EQ(r.reflected_thermal_w, 0x1.ba61d87ef563dp+14);
    EXPECT_EQ(r.transmitted_w2, 0x1.a349517862d74p+11);
    EXPECT_EQ(r.reflected_w2, 0x1.8c59dbe9581b6p+14);
    EXPECT_EQ(r.absorbed_w2, 0x1.3f91e2ba9ad78p+11);
}

TEST(TransportSimd, ForcedScalarCadmiumSpectrumIsBitwiseGolden) {
    // Cadmium's inserted kink nodes plus a Maxwellian source: the spectrum's
    // block sampler and the xs sweep both ride the scalar tier here.
    TransportConfig cfg;
    cfg.mode = TransportMode::kImplicitCapture;
    cfg.simd = core::simd::Policy::kForceScalar;
    const SlabTransport slab(Material::cadmium(), 0.05, cfg);
    stats::Rng rng(9001);
    const MaxwellianSpectrum spec(1.0, 0.0253);
    const TransportResult r = slab.run_spectrum(spec, 40000, rng);
    EXPECT_EQ(r.transmitted, 822u);
    EXPECT_EQ(r.reflected, 21u);
    EXPECT_EQ(r.absorbed, 39157u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.collisions, 39283u);
    EXPECT_EQ(r.transmitted_w, 0x1.9bp+9);
    EXPECT_EQ(r.reflected_w, 0x1.5p+4);
    EXPECT_EQ(r.absorbed_w, 0x1.31e9328aed576p+15);
    EXPECT_EQ(r.absorbed_w2, 0x1.32827f0a96c14p+15);
}

TEST(TransportSimd, AnalogIsBitwiseInvariantUnderSimdPolicy) {
    // The analog walk never enters the batched kernel, so any policy —
    // including an explicit AVX2 request — leaves it bit-for-bit stable.
    const auto run = [](core::simd::Policy policy) {
        TransportConfig cfg;
        cfg.simd = policy;
        const SlabTransport slab(Material::water(), 5.0, cfg);
        stats::Rng rng(7001);
        return slab.run_monoenergetic(0.0253, 40000, rng);
    };
    for (const auto policy :
         {core::simd::Policy::kAuto, core::simd::Policy::kForceScalar}) {
        const TransportResult r = run(policy);
        EXPECT_EQ(r.transmitted, 4839u);
        EXPECT_EQ(r.reflected, 28128u);
        EXPECT_EQ(r.absorbed, 7033u);
        EXPECT_EQ(r.lost, 0u);
        EXPECT_EQ(r.collisions, 532447u);
        EXPECT_EQ(r.transmitted_w, 0x1.2e7p+12);
        EXPECT_EQ(r.reflected_w, 0x1.b78p+14);
        EXPECT_EQ(r.absorbed_w, 0x1.b79p+12);
    }
}

TEST(TransportSimd, Avx2MatchesScalarWithinThreeSigma) {
    if (core::simd::resolve(core::simd::Policy::kForceAvx2) !=
        core::simd::Tier::kAvx2) {
        GTEST_SKIP() << "AVX2 tier unavailable";
    }
    // The AVX2 kernel consumes pre-drawn blocks by slot, so it is a
    // different (equally valid) realization of the same estimator — the two
    // tiers must agree channel-by-channel within combined 3-sigma error
    // bars across materials and energies, kinks included.
    struct Case {
        Material mat;
        double thickness_cm;
        double energy_ev;
    };
    const Case cases[] = {
        {Material::water(), 5.0, 0.0253},
        {Material::water(), 2.0, 1000.0},
        {Material::cadmium(), 0.05, 0.0253},
        {Material::cadmium(), 0.05, 2.0},  // resonance-kink neighbourhood.
        {Material::polyethylene(), 2.0, 1.0},
        {Material::borated_poly(), 1.0, 0.0253},
    };
    for (const auto& c : cases) {
        const auto run = [&c](core::simd::Policy policy) {
            TransportConfig cfg;
            cfg.mode = TransportMode::kImplicitCapture;
            cfg.simd = policy;
            const SlabTransport slab(c.mat, c.thickness_cm, cfg);
            stats::Rng rng(8101);
            return slab.run_monoenergetic(c.energy_ev, 30000, rng);
        };
        const TransportResult scalar = run(core::simd::Policy::kForceScalar);
        const TransportResult avx2 = run(core::simd::Policy::kForceAvx2);
        EXPECT_EQ(scalar.total, avx2.total);
        const auto close = [&c](const EstimatorStats& a,
                                const EstimatorStats& b, const char* ch) {
            const double se = std::sqrt(a.variance + b.variance);
            EXPECT_LE(std::abs(a.mean - b.mean), 3.0 * se + 1e-12)
                << c.mat.name() << " " << c.energy_ev << " eV " << ch;
        };
        close(scalar.transmission_estimate(), avx2.transmission_estimate(),
              "transmission");
        close(scalar.reflection_estimate(), avx2.reflection_estimate(),
              "reflection");
        close(scalar.absorption_estimate(), avx2.absorption_estimate(),
              "absorption");
    }
}

}  // namespace
}  // namespace tnr::physics

// Fault-tolerant campaign execution: the structured error model, per-device
// failure isolation and bounded retry, the append-only journal, and the
// resume path's bitwise-identity guarantee (docs/robustness.md).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "beam/campaign.hpp"
#include "beam/journal.hpp"
#include "core/error.hpp"
#include "devices/catalog.hpp"

namespace tnr::beam {
namespace {

using core::ErrorCategory;
using core::RunError;

// --- Error model ------------------------------------------------------------

TEST(RunError, CategoriesMapToDocumentedExitCodes) {
    EXPECT_EQ(RunError::config("x").exit_code(), 2);
    EXPECT_EQ(RunError::numeric("x").exit_code(), 3);
    EXPECT_EQ(RunError::io("x").exit_code(), 3);
    EXPECT_EQ(RunError::cancelled("x").exit_code(), 130);
}

TEST(RunError, CarriesCategoryAndMessage) {
    const RunError e = RunError::io("disk on fire");
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
    EXPECT_STREQ(e.what(), "disk on fire");
    // RunError must flow through generic std::exception handlers.
    const std::exception& base = e;
    EXPECT_STREQ(base.what(), "disk on fire");
}

TEST(RunError, CategoryNamesAreStable) {
    EXPECT_STREQ(core::to_string(ErrorCategory::kConfig), "config");
    EXPECT_STREQ(core::to_string(ErrorCategory::kNumeric), "numeric");
    EXPECT_STREQ(core::to_string(ErrorCategory::kIo), "io");
    EXPECT_STREQ(core::to_string(ErrorCategory::kCancelled), "cancelled");
}

// --- Shared fixtures --------------------------------------------------------

CampaignConfig small_config() {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 30.0;
    cfg.seed = 99;
    cfg.threads = 2;
    return cfg;
}

std::vector<devices::Device> small_roster() {
    auto all = devices::standard_catalog();
    return {all.begin(), all.begin() + 3};
}

bool same_row(const DeviceRatioRow& a, const DeviceRatioRow& b) {
    return a.device == b.device && a.type == b.type &&
           a.errors_he == b.errors_he && a.fluence_he == b.fluence_he &&
           a.errors_th == b.errors_th && a.fluence_th == b.fluence_th;
}

bool same_measurements(const std::vector<CrossSectionMeasurement>& a,
                       const std::vector<CrossSectionMeasurement>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].device != b[i].device || a[i].workload != b[i].workload ||
            a[i].beamline != b[i].beamline || a[i].type != b[i].type ||
            a[i].errors != b[i].errors || a[i].fluence != b[i].fluence) {
            return false;
        }
    }
    return true;
}

std::filesystem::path temp_journal(const char* name) {
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove(path);
    return path;
}

// --- Failure isolation ------------------------------------------------------

TEST(FaultIsolation, OneFailingDeviceLeavesTheRestIntact) {
    const auto roster = small_roster();
    const std::string victim = roster[1].name();

    CampaignConfig clean = small_config();
    const CampaignResult reference = Campaign(clean).run(roster);

    CampaignConfig faulty = small_config();
    faulty.fault_hook = [&victim](const std::string& device, unsigned) {
        if (device == victim) throw std::runtime_error("injected fault");
    };
    const CampaignResult result = Campaign(faulty).run(roster);

    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].name, victim);
    EXPECT_EQ(result.failures[0].what, "injected fault");
    EXPECT_EQ(result.failures[0].attempt, 0u);
    EXPECT_TRUE(result.device_failed(victim));

    // The survivors' rows are bitwise identical to the clean run: the
    // victim's stream was pre-split, so its death perturbs nobody.
    for (const auto& device : {roster[0], roster[2]}) {
        for (const auto type :
             {devices::ErrorType::kSdc, devices::ErrorType::kDue}) {
            EXPECT_TRUE(same_row(reference.row(device.name(), type),
                                 result.row(device.name(), type)))
                << device.name();
        }
    }
    // The victim has no rows; asking for one names the device and type.
    EXPECT_THROW((void)result.row(victim, devices::ErrorType::kSdc),
                 std::out_of_range);
}

TEST(FaultIsolation, RetrySucceedsOnAFreshAttemptAndKeepsTheFailure) {
    const auto roster = small_roster();
    const std::string victim = roster[0].name();

    CampaignConfig cfg = small_config();
    cfg.max_attempts = 3;
    cfg.fault_hook = [&victim](const std::string& device, unsigned attempt) {
        if (device == victim && attempt == 0) {
            throw std::runtime_error("transient fault");
        }
    };
    const CampaignResult result = Campaign(cfg).run(roster);

    // The retry produced a real outcome...
    EXPECT_FALSE(result.device_failed(victim));
    EXPECT_NO_THROW((void)result.row(victim, devices::ErrorType::kSdc));
    // ...and the first attempt's failure stays on the record.
    ASSERT_EQ(result.failures.size(), 1u);
    EXPECT_EQ(result.failures[0].name, victim);
    EXPECT_EQ(result.failures[0].attempt, 0u);
}

TEST(FaultIsolation, RetriesAreDeterministic) {
    const auto roster = small_roster();
    CampaignConfig cfg = small_config();
    cfg.max_attempts = 2;
    cfg.fault_hook = [](const std::string&, unsigned attempt) {
        if (attempt == 0) throw std::runtime_error("flaky rig");
    };
    const CampaignResult a = Campaign(cfg).run(roster);
    const CampaignResult b = Campaign(cfg).run(roster);
    ASSERT_EQ(a.ratio_rows.size(), b.ratio_rows.size());
    for (std::size_t i = 0; i < a.ratio_rows.size(); ++i) {
        EXPECT_TRUE(same_row(a.ratio_rows[i], b.ratio_rows[i]));
    }
    EXPECT_TRUE(same_measurements(a.measurements, b.measurements));
}

TEST(FaultIsolation, ExhaustedAttemptsRecordEveryFailure) {
    const auto roster = small_roster();
    const std::string victim = roster[2].name();

    CampaignConfig cfg = small_config();
    cfg.max_attempts = 3;
    cfg.fault_hook = [&victim](const std::string& device, unsigned) {
        if (device == victim) throw std::runtime_error("hard fault");
    };
    const CampaignResult result = Campaign(cfg).run(roster);

    EXPECT_TRUE(result.device_failed(victim));
    ASSERT_EQ(result.failures.size(), 3u);
    for (unsigned i = 0; i < 3; ++i) {
        EXPECT_EQ(result.failures[i].name, victim);
        EXPECT_EQ(result.failures[i].attempt, i);
    }
}

TEST(FaultIsolation, ZeroFluenceRowErrorsNameTheDevice) {
    DeviceRatioRow row;
    row.device = "Xilinx Zynq-7000 FPGA";
    try {
        (void)row.sigma_th();
        FAIL() << "expected RunError";
    } catch (const RunError& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kNumeric);
        EXPECT_NE(std::string(e.what()).find("Xilinx Zynq-7000 FPGA"),
                  std::string::npos);
    }
}

// --- Journal round trip -----------------------------------------------------

TEST(Journal, ReplayReconstructsOutcomesBitwise) {
    const auto path = temp_journal("tnr_robustness_roundtrip.jsonl");
    const auto roster = small_roster();

    CampaignConfig cfg = small_config();
    CampaignJournal journal(path.string(), /*truncate=*/true);
    journal.write_header(cfg, roster.size());
    cfg.on_device_outcome = [&journal](const devices::Device& device,
                                       unsigned attempt,
                                       const DeviceOutcome& outcome) {
        journal.append_device(device.name(), attempt, outcome);
    };
    const CampaignResult result = Campaign(cfg).run(roster);

    const JournalReplay replay = replay_journal(path.string());
    EXPECT_EQ(replay.seed, cfg.seed);
    EXPECT_EQ(replay.beam_time_per_run_s, cfg.beam_time_per_run_s);
    EXPECT_EQ(replay.device_count, roster.size());
    ASSERT_EQ(replay.completed.size(), roster.size());
    for (const auto& device : roster) {
        const auto it = replay.completed.find(device.name());
        ASSERT_NE(it, replay.completed.end()) << device.name();
        // Doubles round-trip exactly through obs::json::number, so the
        // replayed rows are bitwise equal to the computed ones.
        EXPECT_TRUE(same_row(it->second.sdc_row,
                             result.row(device.name(),
                                        devices::ErrorType::kSdc)));
        EXPECT_TRUE(same_row(it->second.due_row,
                             result.row(device.name(),
                                        devices::ErrorType::kDue)));
    }
    std::filesystem::remove(path);
}

TEST(Journal, ResumedRunEqualsUninterruptedRun) {
    const auto path = temp_journal("tnr_robustness_resume.jsonl");
    const auto roster = small_roster();

    // Uninterrupted reference, journaled so both runs use the isolated grid.
    CampaignConfig ref_cfg = small_config();
    CampaignJournal ref_journal(path.string(), /*truncate=*/true);
    ref_journal.write_header(ref_cfg, roster.size());
    ref_cfg.on_device_outcome = [&ref_journal](const devices::Device& device,
                                               unsigned attempt,
                                               const DeviceOutcome& outcome) {
        ref_journal.append_device(device.name(), attempt, outcome);
    };
    const CampaignResult reference = Campaign(ref_cfg).run(roster);

    // "Interrupted" run: pretend only the first device completed, resume
    // with the other two to compute.
    const JournalReplay full = replay_journal(path.string());
    CampaignConfig resume_cfg = small_config();
    const auto it = full.completed.find(roster[0].name());
    ASSERT_NE(it, full.completed.end());
    resume_cfg.completed.emplace(it->first, it->second);
    const CampaignResult resumed = Campaign(resume_cfg).run(roster);

    ASSERT_EQ(reference.ratio_rows.size(), resumed.ratio_rows.size());
    for (std::size_t i = 0; i < reference.ratio_rows.size(); ++i) {
        EXPECT_TRUE(same_row(reference.ratio_rows[i], resumed.ratio_rows[i]))
            << reference.ratio_rows[i].device;
    }
    EXPECT_TRUE(same_measurements(reference.measurements,
                                  resumed.measurements));
    std::filesystem::remove(path);
}

TEST(Journal, TornTailIsDroppedOnReplay) {
    const auto path = temp_journal("tnr_robustness_torn.jsonl");
    {
        std::ofstream out(path);
        out << R"({"kind":"header","tool":"tnr","version":"t","seed":7,)"
            << R"("beam_time_s":30,"avf_trials":0,"threads":2,"devices":3})"
            << "\n";
        // A crash mid-append: the final line has no trailing newline.
        out << R"({"kind":"device","device":"X","attempt":0,"sdc":{"er)";
    }
    const JournalReplay replay = replay_journal(path.string());
    EXPECT_EQ(replay.seed, 7u);
    EXPECT_TRUE(replay.completed.empty());
    std::filesystem::remove(path);
}

TEST(Journal, MalformedInteriorLineIsAnIoError) {
    const auto path = temp_journal("tnr_robustness_corrupt.jsonl");
    {
        std::ofstream out(path);
        out << R"({"kind":"header","tool":"tnr","version":"t","seed":7,)"
            << R"("beam_time_s":30,"avf_trials":0,"threads":2,"devices":3})"
            << "\n";
        out << "this is not json\n";  // newline => not a torn tail.
    }
    try {
        replay_journal(path.string());
        FAIL() << "expected RunError";
    } catch (const RunError& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kIo);
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
    std::filesystem::remove(path);
}

TEST(Journal, MissingHeaderIsAConfigError) {
    const auto path = temp_journal("tnr_robustness_headless.jsonl");
    {
        std::ofstream out(path);
        out << R"({"kind":"failure","device":"X","attempt":0,"what":"w"})"
            << "\n";
    }
    try {
        replay_journal(path.string());
        FAIL() << "expected RunError";
    } catch (const RunError& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kConfig);
    }
    std::filesystem::remove(path);
}

TEST(Journal, UnreadableFileIsAnIoError) {
    try {
        replay_journal("/nonexistent-dir/missing.jsonl");
        FAIL() << "expected RunError";
    } catch (const RunError& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kIo);
    }
}

TEST(Journal, ValidateResumeRejectsMismatchedParameters) {
    JournalReplay replay;
    replay.seed = 7;
    replay.beam_time_per_run_s = 30.0;
    replay.avf_trials = 0;

    CampaignConfig cfg;
    cfg.seed = 7;
    cfg.beam_time_per_run_s = 30.0;
    cfg.avf_trials = 0;
    EXPECT_NO_THROW(validate_resume(replay, cfg));

    CampaignConfig bad_seed = cfg;
    bad_seed.seed = 8;
    EXPECT_THROW(validate_resume(replay, bad_seed), RunError);

    CampaignConfig bad_time = cfg;
    bad_time.beam_time_per_run_s = 60.0;
    EXPECT_THROW(validate_resume(replay, bad_time), RunError);

    CampaignConfig bad_avf = cfg;
    bad_avf.avf_trials = 10;
    EXPECT_THROW(validate_resume(replay, bad_avf), RunError);

    // The thread count may legitimately differ between the original and the
    // resuming run: isolated-grid results are thread-invariant.
    CampaignConfig more_threads = cfg;
    more_threads.threads = 8;
    replay.threads = 2;
    EXPECT_NO_THROW(validate_resume(replay, more_threads));
}

// --- Cancellation -----------------------------------------------------------

TEST(Cancellation, PreCancelledCampaignThrowsAfterJournalingNothing) {
    core::parallel::CancelToken token;
    token.cancel();
    CampaignConfig cfg = small_config();
    cfg.cancel = &token;
    cfg.max_attempts = 2;  // force the isolated grid.
    try {
        Campaign(cfg).run(small_roster());
        FAIL() << "expected RunError";
    } catch (const RunError& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kCancelled);
        EXPECT_EQ(e.exit_code(), 130);
    }
}

TEST(Cancellation, SerialWalkChecksTheTokenBetweenDevices) {
    core::parallel::CancelToken token;
    token.cancel();
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 30.0;
    cfg.threads = 1;  // historical serial walk.
    cfg.cancel = &token;
    EXPECT_THROW(Campaign(cfg).run(small_roster()), RunError);
}

}  // namespace
}  // namespace tnr::beam

// Charge-deposition model tests: ion constants, geometry limits, and the
// consistency of the derived upset probability with the catalog's effective
// constant.

#include <gtest/gtest.h>

#include "physics/charge_deposition.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {
namespace {

TEST(ChargeDeposition, IonConstants) {
    EXPECT_NEAR(b10_alpha().energy_kev, 1471.0, 1.0);
    EXPECT_NEAR(b10_alpha().range_um, 5.0, 0.1);
    EXPECT_NEAR(b10_lithium().energy_kev, 840.0, 1.0);
    // The lithium ion is shorter-ranged but denser-ionizing.
    EXPECT_GT(b10_lithium().mean_let(), b10_alpha().mean_let());
}

TEST(ChargeDeposition, FullAlphaStopIsSixtyFiveFc) {
    // A 1.47 MeV alpha fully stopped deposits ~65 fC — the classic number
    // that makes the boron reaction so dangerous.
    EXPECT_NEAR(charge_fc(b10_alpha().energy_kev), 65.4, 1.0);
}

TEST(ChargeDeposition, ChargeValidation) {
    EXPECT_THROW(charge_fc(-1.0), std::domain_error);
    EXPECT_DOUBLE_EQ(charge_fc(0.0), 0.0);
}

TEST(UpsetProbability, ZeroWhenVolumeOutOfRange) {
    // Sensitive window farther than the alpha range: nothing arrives.
    stats::Rng rng(950);
    SensitiveVolume volume;
    volume.standoff_um = 10.0;  // > 5 um alpha range.
    volume.depth_um = 1.0;
    volume.qcrit_fc = 1.0;
    EXPECT_DOUBLE_EQ(upset_probability(0.5, volume, 20000, rng), 0.0);
}

TEST(UpsetProbability, AdjacentLayerGivesLargeProbability) {
    // Boron directly on top of a deep low-Qcrit volume with full areal
    // coverage: most geometries upset (one of the two back-to-back ions
    // almost always flies into the window).
    stats::Rng rng(951);
    SensitiveVolume volume;
    volume.standoff_um = 0.0;
    volume.depth_um = 2.0;
    volume.qcrit_fc = 0.5;
    volume.area_coverage = 1.0;
    const double p = upset_probability(0.2, volume, 50000, rng);
    EXPECT_GT(p, 0.3);
    EXPECT_LE(p, 1.0);
}

TEST(UpsetProbability, DecreasesWithStandoff) {
    stats::Rng rng(952);
    SensitiveVolume volume = volume_28nm_planar();
    double last = 1.0;
    for (const double standoff : {0.0, 1.0, 2.0, 4.0}) {
        volume.standoff_um = standoff;
        const double p = upset_probability(0.3, volume, 50000, rng);
        EXPECT_LE(p, last + 0.01) << standoff;
        last = p;
    }
}

TEST(UpsetProbability, IncreasesWithCollectionDepth) {
    stats::Rng rng(953);
    SensitiveVolume shallow = volume_28nm_planar();
    shallow.depth_um = 0.2;
    SensitiveVolume deep = volume_28nm_planar();
    deep.depth_um = 2.0;
    EXPECT_LT(upset_probability(0.3, shallow, 50000, rng),
              upset_probability(0.3, deep, 50000, rng));
}

TEST(UpsetProbability, QcritGateWorks) {
    // Raise Qcrit beyond the maximum depositable charge: no upsets.
    stats::Rng rng(954);
    SensitiveVolume volume = volume_28nm_planar();
    volume.qcrit_fc = 100.0;  // > 65 fC alpha total.
    EXPECT_DOUBLE_EQ(upset_probability(0.3, volume, 20000, rng), 0.0);
}

TEST(UpsetProbability, CatalogConstantIsPlausible) {
    // The catalog uses P(observable | capture) = 5%. The 28 nm geometry
    // with realistic standoff should land within a factor of a few —
    // grounding the constant rather than fitting it.
    stats::Rng rng(955);
    const double p =
        upset_probability(0.3, volume_28nm_planar(), 100000, rng);
    EXPECT_GT(p, 0.01);
    EXPECT_LT(p, 0.30);
}

TEST(UpsetProbability, FinFetLessVulnerableThanPlanar) {
    // The paper's transistor observation in microscopic form: the 16 nm
    // FinFET geometry (tiny sparse fins) upsets less per capture than the
    // 28 nm planar one, despite its lower critical charge.
    stats::Rng rng(956);
    const double p90 = upset_probability(0.3, volume_90nm_legacy(), 80000, rng);
    const double p28 = upset_probability(0.3, volume_28nm_planar(), 80000, rng);
    const double p16 = upset_probability(0.3, volume_16nm_finfet(), 80000, rng);
    EXPECT_GT(p28, 0.0);
    EXPECT_GT(p90, 0.0);
    EXPECT_GT(p16, 0.0);
    EXPECT_GT(p28, p16);
}

TEST(UpsetProbability, Validation) {
    stats::Rng rng(957);
    SensitiveVolume volume;
    EXPECT_THROW(upset_probability(0.0, volume, 100, rng),
                 std::invalid_argument);
    EXPECT_THROW(upset_probability(1.0, volume, 0, rng),
                 std::invalid_argument);
    volume.qcrit_fc = -1.0;
    EXPECT_THROW(upset_probability(1.0, volume, 100, rng),
                 std::invalid_argument);
}

}  // namespace
}  // namespace tnr::physics

// FPGA configuration-memory tests: upset mechanics, essential-bit
// accounting, scrub policies, and the §IV behaviours (persistence,
// reprogram-on-error, rare DUEs).

#include <gtest/gtest.h>

#include "fpga/beam_run.hpp"
#include "fpga/config_memory.hpp"
#include "stats/rng.hpp"
#include "workloads/mnist.hpp"

namespace tnr::fpga {
namespace {

TEST(ConfigMemory, FlipAndRestore) {
    ConfigMemory mem;
    mem.flip(100);
    EXPECT_TRUE(mem.is_upset(100));
    EXPECT_EQ(mem.upset_count(), 1u);
    mem.flip(100);  // second strike restores.
    EXPECT_FALSE(mem.is_upset(100));
    EXPECT_EQ(mem.upset_count(), 0u);
}

TEST(ConfigMemory, EssentialAccounting) {
    ConfigMemoryLayout layout;
    layout.total_bits = 1000;
    layout.essential_fraction = 0.10;
    ConfigMemory mem(layout);
    EXPECT_EQ(mem.essential_bits(), 100u);
    mem.flip(50);    // essential region.
    mem.flip(500);   // non-essential.
    EXPECT_EQ(mem.upset_count(), 2u);
    EXPECT_EQ(mem.essential_upsets(), 1u);
    EXPECT_EQ(mem.essential_upset_bits(), std::vector<std::uint64_t>{50});
}

TEST(ConfigMemory, IrradiateDepositsUpsets) {
    ConfigMemory mem;
    stats::Rng rng(200);
    mem.irradiate(1000, rng);
    // Collisions possible but rare in 32 Mbit: nearly all stick.
    EXPECT_GT(mem.upset_count(), 990u);
}

TEST(ConfigMemory, EssentialFractionStatistics) {
    ConfigMemoryLayout layout;
    layout.essential_fraction = 0.10;
    ConfigMemory mem(layout);
    stats::Rng rng(201);
    mem.irradiate(20000, rng);
    const double frac = static_cast<double>(mem.essential_upsets()) /
                        static_cast<double>(mem.upset_count());
    EXPECT_NEAR(frac, 0.10, 0.01);
}

TEST(ConfigMemory, ReprogramClearsEverything) {
    ConfigMemory mem;
    stats::Rng rng(202);
    mem.irradiate(100, rng);
    mem.reprogram();
    EXPECT_EQ(mem.upset_count(), 0u);
}

TEST(ConfigMemory, PartialScrub) {
    ConfigMemoryLayout layout;
    layout.total_bits = 1000;
    ConfigMemory mem(layout);
    mem.flip(100);
    mem.flip(900);
    mem.scrub(0.5);  // repairs bits < 500.
    EXPECT_FALSE(mem.is_upset(100));
    EXPECT_TRUE(mem.is_upset(900));
}

TEST(ConfigMemory, Validation) {
    ConfigMemoryLayout bad;
    bad.total_bits = 0;
    EXPECT_THROW(ConfigMemory{bad}, std::invalid_argument);
    ConfigMemory mem;
    EXPECT_THROW(mem.flip(1u << 30), std::out_of_range);
    EXPECT_THROW(mem.scrub(2.0), std::invalid_argument);
}

// --- Beam runs --------------------------------------------------------------------

FpgaBeamConfig hot_beam(ScrubPolicy policy) {
    FpgaBeamConfig cfg;
    cfg.policy = policy;
    // Hot enough to see events in a few hundred runs: ~0.3 upsets/run.
    cfg.sigma_bit_cm2 = 4.0e-16;
    cfg.flux_n_cm2_s = 2.72e6;
    cfg.seconds_per_run = 30.0;
    return cfg;
}

TEST(FpgaBeam, ErrorsPersistWithoutMitigation) {
    // §IV: corruption changes the circuit until a new bitstream is loaded —
    // with no mitigation the same wrong output repeats (error streams).
    FpgaBeamRun run(hot_beam(ScrubPolicy::kNone),
                    workloads::make_mnist(), 300);
    const FpgaBeamReport report = run.run(800);
    ASSERT_GT(report.output_errors, 10u);
    EXPECT_GT(report.repeated_error_runs, report.distinct_error_events);
    EXPECT_EQ(report.reprograms, report.dues);  // only collapses reprogram.
}

TEST(FpgaBeam, ReprogramOnErrorStopsStreams) {
    FpgaBeamRun run(hot_beam(ScrubPolicy::kReprogramOnError),
                    workloads::make_mnist(), 301);
    const FpgaBeamReport report = run.run(2000);
    ASSERT_GT(report.output_errors, 5u);
    // Every observed error triggers a reload: no repeated corrupted data.
    EXPECT_EQ(report.repeated_error_runs, 0u);
    EXPECT_GE(report.reprograms, report.output_errors);
}

TEST(FpgaBeam, PeriodicScrubReducesErrorRate) {
    FpgaBeamRun none(hot_beam(ScrubPolicy::kNone), workloads::make_mnist(),
                     302);
    FpgaBeamConfig scrub_cfg = hot_beam(ScrubPolicy::kPeriodicScrub);
    scrub_cfg.scrub_period_runs = 4;
    FpgaBeamRun scrubbed(scrub_cfg, workloads::make_mnist(), 302);
    const auto r_none = none.run(800);
    const auto r_scrub = scrubbed.run(800);
    EXPECT_LT(r_scrub.output_errors, r_none.output_errors);
    EXPECT_GT(r_scrub.scrubs, 0u);
}

TEST(FpgaBeam, DuesAreRare) {
    // §IV: "a considerable amount of errors would need to accumulate ...
    // making the observation of DUEs very rare". With reprogram-on-error
    // the accumulation threshold is effectively never reached.
    FpgaBeamRun run(hot_beam(ScrubPolicy::kReprogramOnError),
                    workloads::make_mnist(), 303);
    const FpgaBeamReport report = run.run(1000);
    EXPECT_EQ(report.dues, 0u);
    EXPECT_GT(report.output_errors, 0u);
}

TEST(FpgaBeam, AccumulationEventuallyCollapses) {
    // Without mitigation on a very hot beam, functionality eventually
    // collapses (the rare DUE mechanism).
    FpgaBeamConfig cfg = hot_beam(ScrubPolicy::kNone);
    cfg.sigma_bit_cm2 = 6.0e-14;  // much hotter.
    cfg.functional_collapse_upsets = 64;
    FpgaBeamRun run(cfg, workloads::make_mnist(), 304);
    const FpgaBeamReport report = run.run(500);
    EXPECT_GT(report.dues, 0u);
}

TEST(FpgaBeam, CrossSectionScalesWithEssentialFraction) {
    // A fuller design (more essential bits) shows a larger observed cross
    // section — the area argument behind the MNIST-dp 2x/4x scaling.
    FpgaBeamConfig small = hot_beam(ScrubPolicy::kReprogramOnError);
    small.layout.essential_fraction = 0.05;
    FpgaBeamConfig large = small;
    large.layout.essential_fraction = 0.20;
    FpgaBeamRun run_small(small, workloads::make_mnist(), 305);
    FpgaBeamRun run_large(large, workloads::make_mnist(), 305);
    const auto r_small = run_small.run(4000);
    const auto r_large = run_large.run(4000);
    ASSERT_GT(r_small.distinct_error_events, 5u);
    const double ratio = r_large.sigma_sdc() / r_small.sigma_sdc();
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(FpgaBeam, TmrSuppressesErrors) {
    // Triplicated design with voting: despite 3x the upset arrival rate,
    // single upsets are voted out and the error rate collapses.
    FpgaBeamConfig plain = hot_beam(ScrubPolicy::kPeriodicScrub);
    plain.scrub_period_runs = 16;
    FpgaBeamConfig tmr = plain;
    tmr.tmr = true;
    FpgaBeamRun run_plain(plain, workloads::make_mnist(), 400);
    FpgaBeamRun run_tmr(tmr, workloads::make_mnist(), 400);
    const auto r_plain = run_plain.run(2000);
    const auto r_tmr = run_tmr.run(2000);
    ASSERT_GT(r_plain.output_errors, 20u);
    EXPECT_LT(r_tmr.output_errors, r_plain.output_errors / 5);
}

TEST(FpgaBeam, TmrDefeatedByAccumulation) {
    // Without scrubbing the second replica eventually gets hit too: TMR
    // delays but cannot prevent errors under accumulation (the classic
    // TMR+scrubbing pairing argument).
    FpgaBeamConfig tmr = hot_beam(ScrubPolicy::kNone);
    tmr.tmr = true;
    tmr.sigma_bit_cm2 = 2.0e-14;  // hot beam: accumulate fast.
    tmr.functional_collapse_upsets = 100000;  // isolate the voting effect.
    FpgaBeamRun run(tmr, workloads::make_mnist(), 401);
    const auto r = run.run(1500);
    EXPECT_GT(r.output_errors, 10u);
}

TEST(FpgaBeam, Validation) {
    FpgaBeamConfig cfg;
    EXPECT_THROW(FpgaBeamRun(cfg, nullptr, 1), std::invalid_argument);
    cfg.sigma_bit_cm2 = 0.0;
    EXPECT_THROW(FpgaBeamRun(cfg, workloads::make_mnist(), 1),
                 std::invalid_argument);
}

TEST(FpgaBeam, PolicyNames) {
    EXPECT_STREQ(to_string(ScrubPolicy::kNone), "none");
    EXPECT_STREQ(to_string(ScrubPolicy::kReprogramOnError),
                 "reprogram-on-error");
    EXPECT_STREQ(to_string(ScrubPolicy::kPeriodicScrub), "periodic-scrub");
}

}  // namespace
}  // namespace tnr::fpga

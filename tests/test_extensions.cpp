// Tests for the extension features: ECC device configurations, the
// checkpoint/restart (Young/Daly) model, DUT beam attenuation (why ROTAX
// tests one board at a time), FR4, and CSV export.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "beam/dut_attenuation.hpp"
#include "core/checkpoint.hpp"
#include "core/fit.hpp"
#include "core/report.hpp"
#include "devices/catalog.hpp"
#include "devices/ecc_policy.hpp"
#include "environment/site.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/units.hpp"

namespace tnr {
namespace {

// --- ECC policy --------------------------------------------------------------------

devices::Device k20() {
    return devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
}

TEST(EccPolicy, ReducesSdcIncreasesDue) {
    const auto raw = k20();
    const auto protection = devices::EccProtection{};
    const auto protected_device = devices::with_ecc(raw, protection);
    const auto chipir = physics::chipir_spectrum();

    const double sdc_raw =
        raw.error_rate(devices::ErrorType::kSdc, *chipir);
    const double sdc_ecc =
        protected_device.error_rate(devices::ErrorType::kSdc, *chipir);
    const double due_raw =
        raw.error_rate(devices::ErrorType::kDue, *chipir);
    const double due_ecc =
        protected_device.error_rate(devices::ErrorType::kDue, *chipir);

    EXPECT_NEAR(sdc_ecc / sdc_raw, 1.0 - protection.memory_fraction_sdc, 0.01);
    EXPECT_GT(due_ecc, due_raw);
}

TEST(EccPolicy, DueGrowthMatchesUncorrectableShare) {
    const auto raw = k20();
    devices::EccProtection protection;
    protection.memory_fraction_sdc = 0.6;
    protection.correctable_fraction = 0.95;
    const auto protected_device = devices::with_ecc(raw, protection);
    const auto rotax = physics::rotax_spectrum();

    const double transferred =
        raw.error_rate(devices::ErrorType::kSdc, *rotax) * 0.6 * 0.05;
    const double due_growth =
        protected_device.error_rate(devices::ErrorType::kDue, *rotax) -
        raw.error_rate(devices::ErrorType::kDue, *rotax);
    EXPECT_NEAR(due_growth, transferred, 0.02 * transferred);
}

TEST(EccPolicy, PerfectEccRemovesMemorySdcEntirely) {
    devices::EccProtection protection;
    protection.memory_fraction_sdc = 1.0;
    protection.correctable_fraction = 1.0;
    const auto protected_device = devices::with_ecc(k20(), protection);
    const auto rotax = physics::rotax_spectrum();
    EXPECT_DOUBLE_EQ(
        protected_device.error_rate(devices::ErrorType::kSdc, *rotax), 0.0);
    // DUE unchanged (nothing uncorrectable).
    EXPECT_NEAR(protected_device.error_rate(devices::ErrorType::kDue, *rotax),
                k20().error_rate(devices::ErrorType::kDue, *rotax), 1e-12);
}

TEST(EccPolicy, BothChannelsProtected) {
    // ECC masks memory faults regardless of the neutron that caused them:
    // thermal and HE SDC rates shrink by the same factor.
    const auto raw = k20();
    const auto prot = devices::with_ecc(raw, devices::EccProtection{});
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double he_factor =
        prot.error_rate(devices::ErrorType::kSdc, *chipir) /
        raw.error_rate(devices::ErrorType::kSdc, *chipir);
    const double th_factor =
        prot.error_rate(devices::ErrorType::kSdc, *rotax) /
        raw.error_rate(devices::ErrorType::kSdc, *rotax);
    EXPECT_NEAR(he_factor, th_factor, 0.01);
}

TEST(EccPolicy, NameTagged) {
    EXPECT_EQ(devices::with_ecc(k20(), {}).name(), "NVIDIA K20 (ECC)");
}

TEST(EccPolicy, Validation) {
    devices::EccProtection bad;
    bad.memory_fraction_sdc = 1.5;
    EXPECT_THROW(devices::with_ecc(k20(), bad), std::invalid_argument);
}

// --- Checkpoint model ----------------------------------------------------------------

TEST(Checkpoint, DalyFormula) {
    // tau = sqrt(2 * C * M): C=300 s, M=6 h => sqrt(2*300*21600) = 3600 s.
    EXPECT_NEAR(core::daly_optimal_interval(21600.0, 300.0), 3600.0, 1e-9);
}

TEST(Checkpoint, WasteMinimizedAtOptimum) {
    const double mtbf = 100000.0;
    core::CheckpointParameters params;
    const double tau = core::daly_optimal_interval(mtbf, params.checkpoint_cost_s);
    const double at_opt = core::waste_fraction(tau, mtbf, params);
    // Property: scanning a grid of intervals never beats the optimum.
    for (double t = 0.2 * tau; t <= 5.0 * tau; t *= 1.3) {
        EXPECT_GE(core::waste_fraction(t, mtbf, params), at_opt - 1e-12);
    }
}

TEST(Checkpoint, PlanScalesWithNodes) {
    const auto small = core::plan_for_fit(1000.0, 100);
    const auto large = core::plan_for_fit(1000.0, 10000);
    EXPECT_GT(small.mtbf_s, large.mtbf_s);
    EXPECT_GT(small.optimal_interval_s, large.optimal_interval_s);
    EXPECT_LT(small.waste_fraction, large.waste_fraction);
}

TEST(Checkpoint, RainyDayShortensInterval) {
    // The paper's checkpoint-vs-weather point, end to end.
    const auto device = k20();
    environment::Site sunny = environment::leadville_datacenter();
    environment::Site rainy = sunny;
    rainy.environment.weather = environment::Weather::kRainy;
    const auto fit_sunny =
        core::device_fit(device, devices::ErrorType::kDue, sunny);
    const auto fit_rainy =
        core::device_fit(device, devices::ErrorType::kDue, rainy);
    const auto plan_sunny = core::plan_for_fit(fit_sunny, 4000);
    const auto plan_rainy = core::plan_for_fit(fit_rainy, 4000);
    EXPECT_LT(plan_rainy.optimal_interval_s, plan_sunny.optimal_interval_s);
    EXPECT_GT(plan_rainy.waste_fraction, plan_sunny.waste_fraction);
}

TEST(Checkpoint, Validation) {
    EXPECT_THROW(core::daly_optimal_interval(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(core::plan_for_fit(0.0, 10), std::invalid_argument);
    EXPECT_THROW(core::plan_for_fit(10.0, 0), std::invalid_argument);
}

// --- DUT attenuation -----------------------------------------------------------------

TEST(DutAttenuation, ThermalBlockedFastPasses) {
    const beam::DutStack stack;
    const auto t = beam::dut_transmission(stack);
    // The paper: the DUT "blocks most of the incoming [thermal] neutrons";
    // fast neutrons barely notice it.
    EXPECT_LT(t.thermal, 0.25);
    EXPECT_GT(t.high_energy, 0.75);
    EXPECT_GT(t.high_energy, 3.0 * t.thermal);
}

TEST(DutAttenuation, StackedBoardsBiasThermalFluence) {
    const auto t = beam::dut_transmission(beam::DutStack{});
    // Board 3 in a thermal stack sees a tiny fraction of nominal fluence:
    // cross sections measured there would be wildly overestimated.
    const double f2 = beam::stacked_board_fluence_fraction(2, t.thermal);
    EXPECT_LT(f2, 0.1);
    // At ChipIR the same stack barely attenuates: derating works.
    const double f2_fast =
        beam::stacked_board_fluence_fraction(2, t.high_energy);
    EXPECT_GT(f2_fast, 0.5);
}

TEST(DutAttenuation, TransmissionMonotonicInEnergyBands) {
    const beam::DutStack stack;
    // Epithermal neutrons already pass better than thermals.
    EXPECT_GT(beam::dut_transmission_at(stack, 1.0),
              beam::dut_transmission_at(stack, physics::kThermalReferenceEv));
}

TEST(DutAttenuation, Validation) {
    beam::DutStack bad;
    bad.board_fr4_cm = 0.0;
    EXPECT_THROW(beam::dut_transmission(bad), std::invalid_argument);
    EXPECT_THROW(beam::stacked_board_fluence_fraction(1, 1.5),
                 std::invalid_argument);
}

TEST(Fr4, IsHydrogenousModerator) {
    const auto fr4 = physics::Material::fr4();
    EXPECT_GT(fr4.average_xi(), physics::Material::silicon().average_xi());
    EXPECT_LT(fr4.mean_free_path(physics::kThermalReferenceEv), 3.0);
}

// --- 14 MeV comparison (related work) --------------------------------------------------

TEST(Dt14, SpectrumIsNarrow14MeVLine) {
    const auto s = physics::dt14_spectrum();
    EXPECT_NEAR(s->total_flux(), physics::kDt14Flux, 0.02 * physics::kDt14Flux);
    // All flux within the 13.8-14.4 MeV window; none thermal.
    EXPECT_NEAR(s->integral_flux(13.8e6, 14.4e6), s->total_flux(),
                0.02 * s->total_flux());
    EXPECT_DOUBLE_EQ(s->thermal_flux(), 0.0);
}

TEST(Weulersse, PartsSpanPublishedRange) {
    const auto& parts = devices::weulersse_parts();
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_DOUBLE_EQ(parts.front().thermal_to_14mev_ratio, 1.4);
    EXPECT_DOUBLE_EQ(parts.back().thermal_to_14mev_ratio, 0.03);
}

TEST(Weulersse, CalibrationHitsRatios) {
    const auto dt14 = physics::dt14_spectrum();
    const auto rotax = physics::rotax_spectrum();
    for (const auto& spec : devices::weulersse_parts()) {
        const auto part = devices::build_memory_part(spec);
        const double sigma_14 =
            part.error_rate(devices::ErrorType::kSdc, *dt14) /
            dt14->total_flux();
        const double sigma_th =
            part.error_rate(devices::ErrorType::kSdc, *rotax) /
            physics::kRotaxTotalFlux;
        EXPECT_NEAR(sigma_14, spec.sigma_14mev_cm2, 0.02 * spec.sigma_14mev_cm2)
            << spec.name;
        EXPECT_NEAR(sigma_th / sigma_14, spec.thermal_to_14mev_ratio,
                    0.05 * spec.thermal_to_14mev_ratio)
            << spec.name;
    }
}

TEST(Weulersse, MemoryPartsHaveNoDueChannel) {
    const auto part =
        devices::build_memory_part(devices::weulersse_parts().front());
    const auto rotax = physics::rotax_spectrum();
    EXPECT_DOUBLE_EQ(part.error_rate(devices::ErrorType::kDue, *rotax), 0.0);
}

TEST(Weulersse, Validation) {
    devices::MemoryPartSpec bad;
    EXPECT_THROW(devices::build_memory_part(bad), std::invalid_argument);
}

// --- CSV export ------------------------------------------------------------------------

TEST(Csv, EscapesSpecials) {
    EXPECT_EQ(core::csv_escape("plain"), "plain");
    EXPECT_EQ(core::csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(core::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, TableRoundTrip) {
    core::TablePrinter table({"device", "sigma"});
    table.add_row({"K20, rev A", "1.0e-8"});
    std::ostringstream oss;
    table.print_csv(oss);
    EXPECT_EQ(oss.str(), "device,sigma\n\"K20, rev A\",1.0e-8\n");
}

}  // namespace
}  // namespace tnr

// Tests for the environment model: altitude scaling of fluxes, the thermal
// environment modifiers of §V (rain x2, concrete +20%, water +24%, combined
// +44%), and the site catalog.

#include <gtest/gtest.h>

#include "environment/location.hpp"
#include "environment/modifiers.hpp"
#include "environment/site.hpp"

namespace tnr::environment {
namespace {

TEST(Location, SeaLevelDepth) {
    const Location nyc = Location::new_york_city();
    EXPECT_NEAR(nyc.atmospheric_depth(), kSeaLevelDepth, 0.5);
    EXPECT_NEAR(nyc.altitude_factor(), 1.0, 1e-6);
}

TEST(Location, NycReferenceFlux) {
    const Location nyc = Location::new_york_city();
    EXPECT_NEAR(nyc.high_energy_flux(), kNycHighEnergyFlux, 0.05);
    EXPECT_NEAR(nyc.thermal_flux_baseline(), kSeaLevelThermalFlux, 0.05);
}

TEST(Location, LeadvilleCanonicalAcceleration) {
    // Leadville's HE flux is the classic ~13x NYC.
    const Location lead = Location::leadville_co();
    const double factor = lead.altitude_factor();
    EXPECT_GT(factor, 10.0);
    EXPECT_LT(factor, 16.0);
}

TEST(Location, ThermalGrowsFasterWithAltitude) {
    const Location lead = Location::leadville_co();
    EXPECT_GT(lead.thermal_altitude_factor(), lead.altitude_factor());
}

TEST(Location, FluxIncreasesMonotonicallyWithAltitude) {
    double last = 0.0;
    for (const double alt : {0.0, 500.0, 1500.0, 3000.0, 5000.0}) {
        const Location loc("test", 40.0, -100.0, alt);
        EXPECT_GT(loc.high_energy_flux(), last);
        last = loc.high_energy_flux();
    }
}

TEST(Location, RigidityFactorGentle) {
    const Location equator("eq", 0.0, 0.0, 0.0);
    const Location pole("pole", 89.0, 0.0, 0.0);
    EXPECT_LT(equator.rigidity_factor(), 1.0);
    EXPECT_GT(pole.rigidity_factor(), 1.0);
    EXPECT_GT(equator.rigidity_factor(), 0.7);
    EXPECT_LT(pole.rigidity_factor(), 1.3);
}

TEST(Location, Validation) {
    EXPECT_THROW(Location("bad", 91.0, 0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Location("bad", 0.0, 200.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Location("bad", 0.0, 0.0, 30000.0), std::invalid_argument);
}

TEST(Modifiers, OpenFieldIsUnity) {
    EXPECT_DOUBLE_EQ(ThermalEnvironment::open_field().thermal_multiplier(), 1.0);
}

TEST(Modifiers, ConcreteAddsTwentyPercent) {
    ThermalEnvironment env;
    env.concrete_slab = true;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 1.20);
}

TEST(Modifiers, WaterAddsTwentyFourPercent) {
    ThermalEnvironment env;
    env.water_cooling = true;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 1.24);
}

TEST(Modifiers, DatacenterCombinedFortyFour) {
    // The paper's FIT adjustment: slab + cooling = +44%.
    EXPECT_DOUBLE_EQ(ThermalEnvironment::datacenter().thermal_multiplier(),
                     1.44);
}

TEST(Modifiers, RainDoubles) {
    ThermalEnvironment env;
    env.weather = Weather::kRainy;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 2.0);
}

TEST(Modifiers, RainScalesAmbientOnly) {
    // Regression for the double-application audit: rain replaces the
    // open-field ambient term (1.0 -> 2.0) and the material boosts add on
    // top, because back-scatter scales with the fast flux, which rain does
    // not change. A rainy datacenter is 2.0 + 0.44 = 2.44, not
    // (1 + 0.44) x 2 = 2.88.
    ThermalEnvironment env = ThermalEnvironment::datacenter();
    env.weather = Weather::kRainy;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 2.44);
}

TEST(Modifiers, TripleCompositionNoDoubleApplication) {
    // Every modifier composes additively against one ambient term: the
    // rainy + water-cooled + extra-material case is 2.0 + 0.24 + 0.10,
    // never a product of per-modifier factors.
    ThermalEnvironment env;
    env.weather = Weather::kRainy;
    env.water_cooling = true;
    env.extra_material_boost = 0.10;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 2.34);

    // Sunny counterpart differs by exactly the ambient delta (+1.0).
    ThermalEnvironment sunny = env;
    sunny.weather = Weather::kSunny;
    EXPECT_DOUBLE_EQ(env.thermal_multiplier() - sunny.thermal_multiplier(),
                     1.0);
}

TEST(Modifiers, ExtraMaterialBoost) {
    ThermalEnvironment env;
    env.extra_material_boost = 0.1;  // e.g. passengers in a car.
    EXPECT_DOUBLE_EQ(env.thermal_multiplier(), 1.1);
}

TEST(Modifiers, WeatherNames) {
    EXPECT_STREQ(to_string(Weather::kSunny), "sunny");
    EXPECT_STREQ(to_string(Weather::kRainy), "rainy");
}

TEST(Site, ThermalFluxIncludesEnvironment) {
    const Site site = nyc_datacenter();
    EXPECT_NEAR(site.thermal_flux(),
                kSeaLevelThermalFlux * 1.44, 0.05);
}

TEST(Site, StarHallPinsAdoptedFlux) {
    // docs/fleet.md: adopted thermal flux for the BNL STAR hall
    // (arXiv:1310.2495). The override bypasses the location model.
    const Site* star = site_by_slug("star-hall");
    ASSERT_NE(star, nullptr);
    EXPECT_DOUBLE_EQ(star->thermal_flux(), 4.3e4);
    EXPECT_GT(star->high_energy_flux(), 0.0);  // HE still from location.
}

TEST(Site, HotnesPinsAdoptedFlux) {
    // docs/fleet.md: HOTNES thermal chamber (arXiv:1802.08132) — a pure
    // thermal source, so the high-energy flux is pinned to zero.
    const Site* hotnes = site_by_slug("hotnes");
    ASSERT_NE(hotnes, nullptr);
    EXPECT_DOUBLE_EQ(hotnes->thermal_flux(), 2.52e6);
    EXPECT_DOUBLE_EQ(hotnes->high_energy_flux(), 0.0);
}

TEST(Site, SlugLookupCoversAllSlugs) {
    for (const std::string& slug : site_slugs()) {
        EXPECT_NE(site_by_slug(slug), nullptr) << slug;
    }
    EXPECT_EQ(site_by_slug("atlantis"), nullptr);
}

TEST(Site, LeadvilleDatacenterHotterThanNyc) {
    EXPECT_GT(leadville_datacenter().thermal_flux(),
              5.0 * nyc_datacenter().thermal_flux());
    EXPECT_GT(leadville_datacenter().high_energy_flux(),
              5.0 * nyc_datacenter().high_energy_flux());
}

TEST(SolarModulation, ExtremesAndMean) {
    EXPECT_NEAR(solar_modulation_factor(0.0), 1.15, 1e-12);   // solar min.
    EXPECT_NEAR(solar_modulation_factor(0.5), 0.85, 1e-12);   // solar max.
    EXPECT_NEAR(solar_modulation_factor(0.25), 1.0, 1e-12);
    EXPECT_THROW(solar_modulation_factor(1.0), std::invalid_argument);
    EXPECT_THROW(solar_modulation_factor(-0.1), std::invalid_argument);
}

TEST(SolarModulation, CycleAverageIsUnity) {
    double sum = 0.0;
    constexpr int n = 1000;
    for (int i = 0; i < n; ++i) {
        sum += solar_modulation_factor(static_cast<double>(i) / n);
    }
    EXPECT_NEAR(sum / n, 1.0, 1e-6);
}

TEST(Site, Top10CatalogShape) {
    const auto sites = top10_supercomputers();
    ASSERT_EQ(sites.size(), 10u);
    for (const auto& s : sites) {
        EXPECT_FALSE(s.system_name.empty());
        EXPECT_GT(s.dram_capacity_gbit, 0.0);
        // All modelled as liquid-cooled data centers (+44%).
        EXPECT_DOUBLE_EQ(s.environment.thermal_multiplier(), 1.44);
    }
}

TEST(Site, TrinityHighestThermalFlux) {
    // Trinity (Los Alamos, 2231 m) should have the highest thermal flux of
    // the Top-10 (all others are near sea level).
    const auto sites = top10_supercomputers();
    double trinity = 0.0;
    double best_other = 0.0;
    for (const auto& s : sites) {
        if (s.system_name.find("Trinity") != std::string::npos) {
            trinity = s.thermal_flux();
        } else {
            best_other = std::max(best_other, s.thermal_flux());
        }
    }
    EXPECT_GT(trinity, best_other);
}

}  // namespace
}  // namespace tnr::environment

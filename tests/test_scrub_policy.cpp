// DRAM patrol-scrub policy tests: analytic birthday model vs Monte Carlo,
// monotonicity in the scrub interval, and parallel-transport equivalence
// (grouped here with the other operational-model tests).

#include <gtest/gtest.h>

#include <cmath>

#include "memory/scrub_policy.hpp"
#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "stats/rng.hpp"

namespace tnr::memory {
namespace {

constexpr double kLeadvilleDcFlux = 4.0 * 22.5 * 1.44;  // ~130 n/cm^2/h.

TEST(ScrubPolicy, FaultsScaleWithInterval) {
    const auto day = analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux,
                                            86400.0);
    const auto week = analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux,
                                             7.0 * 86400.0);
    EXPECT_NEAR(week.faults_per_interval / day.faults_per_interval, 7.0, 1e-9);
}

TEST(ScrubPolicy, CollisionProbabilityGrowsWithInterval) {
    double last = 0.0;
    for (const double interval : {3600.0, 86400.0, 7.0 * 86400.0,
                                  30.0 * 86400.0, 365.0 * 86400.0}) {
        const auto a =
            analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux, interval);
        EXPECT_GT(a.collision_probability, last);
        last = a.collision_probability;
    }
}

TEST(ScrubPolicy, FrequentScrubbingSuppressesUncorrectables) {
    // Uncorrectable events per year fall as the interval shrinks: the whole
    // point of patrol scrubbing.
    const auto hourly =
        analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux, 3600.0);
    const auto yearly = analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux,
                                               365.0 * 86400.0);
    EXPECT_LT(hourly.uncorrectable_per_year,
              0.01 * yearly.uncorrectable_per_year);
}

TEST(ScrubPolicy, AnalyticMatchesMonteCarlo) {
    stats::Rng rng(1000);
    // A synthetic small module on a hot beam so collisions are frequent
    // enough to measure with modest trials.
    DramConfig tiny = ddr3_module();
    tiny.capacity_gbit = 0.01;  // 156k ECC words.
    const double flux = 3.3e13;
    const double interval = 3600.0;
    const auto analytic = analyze_scrub_interval(tiny, flux, interval);
    const double mc =
        simulate_collision_probability(tiny, flux, interval, 3000, rng);
    ASSERT_GT(analytic.collision_probability, 0.05);
    ASSERT_LT(analytic.collision_probability, 0.95);
    EXPECT_NEAR(mc, analytic.collision_probability,
                0.15 * analytic.collision_probability + 0.01);
}

TEST(ScrubPolicy, RealisticFluxesMakeAlignmentNegligible) {
    // The operational headline, quantified: at data-center thermal fluxes
    // even a *yearly* scrub leaves the double-fault alignment probability
    // astronomically small — SECDED handles the paper's all-single-bit
    // thermal faults; the residual DUE threat is SEFI/control events, not
    // word collisions.
    const auto yearly = analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux,
                                               365.0 * 86400.0);
    EXPECT_LT(yearly.uncorrectable_per_year, 1e-6);
    EXPECT_GT(yearly.uncorrectable_per_year, 0.0);
}

TEST(ScrubPolicy, Ddr4SaferThanDdr3) {
    const auto d3 = analyze_scrub_interval(ddr3_module(), kLeadvilleDcFlux,
                                           7.0 * 86400.0);
    const auto d4 = analyze_scrub_interval(ddr4_module(), kLeadvilleDcFlux,
                                           7.0 * 86400.0);
    EXPECT_LT(d4.uncorrectable_per_year, d3.uncorrectable_per_year);
}

TEST(ScrubPolicy, Validation) {
    EXPECT_THROW(analyze_scrub_interval(ddr3_module(), 0.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(analyze_scrub_interval(ddr3_module(), 1.0, 0.0),
                 std::invalid_argument);
    stats::Rng rng(1);
    EXPECT_THROW(
        simulate_collision_probability(ddr3_module(), 1.0, 1.0, 0, rng),
        std::invalid_argument);
}

// --- Parallel transport equivalence ------------------------------------------------

TEST(ParallelTransport, MatchesSerialStatistics) {
    const physics::SlabTransport slab(physics::Material::water(), 10.0);
    physics::TransportConfig parallel_cfg;
    parallel_cfg.threads = 4;
    const physics::SlabTransport parallel_slab(physics::Material::water(),
                                               10.0, parallel_cfg);
    stats::Rng serial_rng(2000);
    stats::Rng parallel_rng(2000);
    const auto serial = slab.run_monoenergetic(2.0e6, 40000, serial_rng);
    const auto parallel =
        parallel_slab.run_monoenergetic(2.0e6, 40000, parallel_rng);
    EXPECT_EQ(parallel.total, 40000u);
    EXPECT_NEAR(parallel.transmission(), serial.transmission(), 0.02);
    EXPECT_NEAR(parallel.absorption(), serial.absorption(), 0.02);
    EXPECT_NEAR(parallel.thermal_albedo(), serial.thermal_albedo(), 0.02);
}

TEST(ParallelTransport, HandlesFewNeutrons) {
    physics::TransportConfig cfg;
    cfg.threads = 8;
    const physics::SlabTransport slab(physics::Material::water(), 5.0, cfg);
    stats::Rng rng(2001);
    const auto r = slab.run_monoenergetic(1.0e6, 3, rng);
    EXPECT_EQ(r.total, 3u);
}

TEST(ParallelTransport, MergeIsAdditive) {
    physics::TransportResult a;
    a.total = 10;
    a.transmitted = 4;
    physics::TransportResult b;
    b.total = 5;
    b.transmitted = 1;
    b.absorbed = 4;
    a.merge(b);
    EXPECT_EQ(a.total, 15u);
    EXPECT_EQ(a.transmitted, 5u);
    EXPECT_EQ(a.absorbed, 4u);
}

}  // namespace
}  // namespace tnr::memory

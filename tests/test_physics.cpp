// Tests for tnr::physics: spectra (shapes, integrals, sampling), microscopic
// cross sections (1/v law, Cd edge), materials, and the beamline factories.

#include <gtest/gtest.h>

#include <cmath>

#include "physics/beamline_spectra.hpp"
#include "physics/cross_sections.hpp"
#include "physics/materials.hpp"
#include "physics/spectrum.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace tnr::physics {
namespace {

// --- Cross sections -----------------------------------------------------------

TEST(CrossSections, OneOverVAtReference) {
    EXPECT_DOUBLE_EQ(one_over_v(1000.0, kThermalReferenceEv), 1000.0);
}

TEST(CrossSections, OneOverVScaling) {
    // 4x the energy -> half the cross section.
    EXPECT_NEAR(one_over_v(1000.0, 4.0 * kThermalReferenceEv), 500.0, 1e-9);
}

TEST(CrossSections, B10ReferenceValue) {
    EXPECT_NEAR(b10_capture_barns(kThermalReferenceEv), 3837.0, 1e-6);
}

TEST(CrossSections, He3ReferenceValue) {
    EXPECT_NEAR(he3_capture_barns(kThermalReferenceEv), 5330.0, 1e-6);
}

TEST(CrossSections, CadmiumFollowsOneOverVBelowCutoff) {
    EXPECT_NEAR(cd_absorption_barns(kThermalReferenceEv), 2450.0, 1e-6);
    EXPECT_NEAR(cd_absorption_barns(0.1),
                one_over_v(2450.0, 0.1), 1e-9);
}

TEST(CrossSections, CadmiumEdgeSuppressesEpithermal) {
    // Above the 0.5 eV cutoff the absorption must fall off much faster than
    // 1/v: at 5 eV the ratio to 1/v should be tiny.
    const double at_5ev = cd_absorption_barns(5.0);
    const double one_over_v_5ev = one_over_v(2450.0, 5.0);
    EXPECT_LT(at_5ev, 0.02 * one_over_v_5ev);
}

TEST(CrossSections, CadmiumTransparentToFast) {
    // At 1 MeV cadmium absorption is essentially gone (< 1 barn).
    EXPECT_LT(cd_absorption_barns(1.0e6), 1.0);
}

TEST(CrossSections, ElasticEnergyFractionHydrogen) {
    // On hydrogen a neutron loses half its energy on average.
    EXPECT_NEAR(elastic_mean_energy_fraction(1.0), 0.5, 1e-12);
}

TEST(CrossSections, ElasticEnergyFractionHeavy) {
    // Heavy nuclei barely moderate.
    EXPECT_GT(elastic_mean_energy_fraction(112.0), 0.98);
}

TEST(CrossSections, XiHydrogenIsOne) {
    EXPECT_DOUBLE_EQ(mean_log_energy_decrement(1.0), 1.0);
}

TEST(CrossSections, XiKnownValues) {
    // Classic values: carbon 0.158, oxygen 0.120.
    EXPECT_NEAR(mean_log_energy_decrement(12.0), 0.158, 0.002);
    EXPECT_NEAR(mean_log_energy_decrement(16.0), 0.120, 0.002);
}

TEST(CrossSections, ScattersToThermalize) {
    // 2 MeV -> 0.025 eV on hydrogen: ~18 collisions (textbook number).
    const double n = scatters_to_thermalize(2.0e6, 0.025, 1.0);
    EXPECT_NEAR(n, 18.2, 0.3);
}

TEST(CrossSections, DomainErrors) {
    EXPECT_THROW(one_over_v(10.0, 0.0), std::domain_error);
    EXPECT_THROW(elastic_mean_energy_fraction(0.5), std::domain_error);
    EXPECT_THROW(scatters_to_thermalize(1.0, 2.0, 1.0), std::domain_error);
}

// --- Maxwellian spectrum --------------------------------------------------------

TEST(Maxwellian, TotalFluxMatches) {
    const MaxwellianSpectrum s(1000.0, 0.0253);
    EXPECT_NEAR(s.total_flux(), 1000.0, 1.0);
}

TEST(Maxwellian, PeaksAtKt) {
    const MaxwellianSpectrum s(1.0, 0.0253);
    // dPhi/dE ∝ E exp(-E/kT) peaks exactly at kT.
    const double at_kt = s.flux_density(0.0253);
    EXPECT_GT(at_kt, s.flux_density(0.01));
    EXPECT_GT(at_kt, s.flux_density(0.06));
}

TEST(Maxwellian, AllFluxIsThermal) {
    const MaxwellianSpectrum s(500.0, 0.0253);
    EXPECT_NEAR(s.thermal_flux(), 500.0, 1.0);
    EXPECT_NEAR(s.high_energy_flux(), 0.0, 1e-9);
}

TEST(Maxwellian, SamplingMeanIsTwoKt) {
    const MaxwellianSpectrum s(1.0, 0.0253);
    stats::Rng rng(30);
    stats::RunningStats st;
    for (int i = 0; i < 100000; ++i) st.add(s.sample_energy(rng));
    // Gamma(2, kT) has mean 2 kT.
    EXPECT_NEAR(st.mean(), 2.0 * 0.0253, 0.001);
}

TEST(Maxwellian, RejectsBadParameters) {
    EXPECT_THROW(MaxwellianSpectrum(0.0, 0.0253), std::invalid_argument);
    EXPECT_THROW(MaxwellianSpectrum(1.0, -1.0), std::invalid_argument);
}

// --- Epithermal spectrum --------------------------------------------------------

TEST(Epithermal, TotalFluxMatches) {
    const EpithermalSpectrum s(100.0, 1.0, 1.0e6);
    EXPECT_NEAR(s.integral_flux(1.0, 1.0e6), 100.0, 0.5);
}

TEST(Epithermal, FlatPerLethargy) {
    const EpithermalSpectrum s(100.0, 1.0, 1.0e6);
    // E * dPhi/dE constant for a 1/E spectrum.
    EXPECT_NEAR(10.0 * s.flux_density(10.0), 1.0e4 * s.flux_density(1.0e4),
                1e-9);
}

TEST(Epithermal, SampleWithinSupport) {
    const EpithermalSpectrum s(1.0, 2.0, 2000.0);
    stats::Rng rng(31);
    for (int i = 0; i < 10000; ++i) {
        const double e = s.sample_energy(rng);
        EXPECT_GE(e, 2.0);
        EXPECT_LE(e, 2000.0);
    }
}

TEST(Epithermal, LogUniformSampling) {
    const EpithermalSpectrum s(1.0, 1.0, 1.0e4);
    stats::Rng rng(32);
    int below_100 = 0;
    constexpr int n = 40000;
    for (int i = 0; i < n; ++i) {
        if (s.sample_energy(rng) < 100.0) ++below_100;
    }
    // Half the lethargy range lies below 100 eV.
    EXPECT_NEAR(static_cast<double>(below_100) / n, 0.5, 0.01);
}

// --- Atmospheric spectrum -------------------------------------------------------

TEST(Atmospheric, GroundLevelReferenceFlux) {
    const AtmosphericSpectrum s(1.0);
    // Gordon fit integral above 10 MeV ~ 3.6e-3 n/cm^2/s (~13/h at NYC).
    const double per_hour = s.high_energy_flux() * 3600.0;
    EXPECT_GT(per_hour, 8.0);
    EXPECT_LT(per_hour, 25.0);
}

TEST(Atmospheric, ScaleIsLinear) {
    const AtmosphericSpectrum s1(1.0);
    const AtmosphericSpectrum s2(5.0);
    EXPECT_NEAR(s2.high_energy_flux(), 5.0 * s1.high_energy_flux(), 1e-9);
}

TEST(Atmospheric, EvaporationPeakPresent) {
    const AtmosphericSpectrum s(1.0);
    // Lethargy flux around 1-2 MeV should exceed that at 30 MeV valley.
    const double at_peak = 1.5e6 * s.flux_density(1.5e6);
    const double at_valley = 3.0e7 * s.flux_density(3.0e7);
    EXPECT_GT(at_peak, at_valley);
}

// --- Tabulated spectrum ---------------------------------------------------------

TEST(Tabulated, InterpolatesLogLog) {
    const TabulatedSpectrum s("test", {{1.0, 100.0}, {100.0, 1.0}});
    // Log-log straight line through (1,100),(100,1): at E=10, value=10.
    EXPECT_NEAR(s.flux_density(10.0), 10.0, 1e-9);
}

TEST(Tabulated, ZeroOutsideSupport) {
    const TabulatedSpectrum s("test", {{1.0, 1.0}, {10.0, 1.0}});
    EXPECT_DOUBLE_EQ(s.flux_density(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s.flux_density(20.0), 0.0);
}

TEST(Tabulated, RejectsBadInput) {
    EXPECT_THROW(TabulatedSpectrum("t", {{1.0, 1.0}}), std::invalid_argument);
    EXPECT_THROW(TabulatedSpectrum("t", {{1.0, 1.0}, {1.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(TabulatedSpectrum("t", {{1.0, 0.0}, {2.0, 1.0}}),
                 std::invalid_argument);
}

// --- Composite / beamline spectra -----------------------------------------------

TEST(ChipIr, PublishedFluxes) {
    const auto s = chipir_spectrum();
    // Phi(>10 MeV) = 5.4e6 within integration tolerance.
    EXPECT_NEAR(s->high_energy_flux(), 5.4e6, 0.02 * 5.4e6);
    // Thermal tail = 4e5.
    EXPECT_NEAR(s->thermal_flux(), 4.0e5, 0.02 * 4.0e5);
}

TEST(Rotax, PublishedFlux) {
    const auto s = rotax_spectrum();
    EXPECT_NEAR(s->total_flux(), 2.72e6, 0.01 * 2.72e6);
    // ROTAX is almost entirely thermal.
    EXPECT_GT(s->thermal_flux() / s->total_flux(), 0.97);
}

TEST(ChipIr, MostlyFastRotaxMostlyThermal) {
    // The Fig.-2 statement: "most neutrons in ROTAX are thermal and most
    // neutrons in ChipIR are high energy" (by lethargy-weighted flux, the
    // fast component dominates ChipIR's spectrum shape).
    const auto chipir = chipir_spectrum();
    const auto rotax = rotax_spectrum();
    EXPECT_GT(chipir->high_energy_flux(), chipir->thermal_flux());
    EXPECT_GT(rotax->thermal_flux(), 0.97 * rotax->total_flux());
}

TEST(Composite, SamplingRespectsComponentWeights) {
    const auto s = chipir_spectrum();
    stats::Rng rng(33);
    int thermal = 0;
    constexpr int n = 60000;
    for (int i = 0; i < n; ++i) {
        if (s->sample_energy(rng) < kThermalCutoffEv) ++thermal;
    }
    const double expected = s->thermal_flux() / s->total_flux();
    EXPECT_NEAR(static_cast<double>(thermal) / n, expected, 0.01);
}

TEST(Composite, LethargyTableCoversSupport) {
    const auto s = chipir_spectrum();
    const auto table = s->lethargy_table(200);
    ASSERT_EQ(table.size(), 200u);
    EXPECT_NEAR(table.front().first, s->min_energy_ev(), 1e-9);
    EXPECT_NEAR(table.back().first, s->max_energy_ev(),
                1e-6 * s->max_energy_ev());
}

TEST(Terrestrial, MatchesRequestedFluxes) {
    const auto s = terrestrial_spectrum(13.0 / 3600.0, 4.0 / 3600.0);
    EXPECT_NEAR(s->high_energy_flux(), 13.0 / 3600.0, 0.03 * 13.0 / 3600.0);
    EXPECT_NEAR(s->thermal_flux(), 4.0 / 3600.0, 0.03 * 4.0 / 3600.0);
}

// --- Materials -----------------------------------------------------------------

TEST(Materials, WaterHydrogenDensity) {
    const Material w = Material::water();
    // N_H in water = 6.69e22 /cm^3.
    double n_h = 0.0;
    for (const auto& c : w.components()) {
        if (c.symbol == "H") n_h = c.number_density;
    }
    EXPECT_NEAR(n_h, 6.69e22, 0.05e22);
}

TEST(Materials, WaterMeanFreePathThermal) {
    const Material w = Material::water();
    // Thermal neutron mfp in water ~ 0.6-0.8 cm (scattering dominated).
    const double mfp = w.mean_free_path(kThermalReferenceEv);
    EXPECT_GT(mfp, 0.3);
    EXPECT_LT(mfp, 1.2);
}

TEST(Materials, CadmiumThermalAbsorptionDominates) {
    const Material cd = Material::cadmium();
    EXPECT_GT(cd.sigma_absorb(kThermalReferenceEv),
              10.0 * cd.sigma_scatter(kThermalReferenceEv));
}

TEST(Materials, CadmiumEpithermalWindowOpen) {
    const Material cd = Material::cadmium();
    // At 10 eV absorption has collapsed relative to thermal.
    EXPECT_LT(cd.sigma_absorb(10.0), 0.01 * cd.sigma_absorb(0.0253));
}

TEST(Materials, BoratedPolyAbsorbsMoreThanPlainPoly) {
    const Material bp = Material::borated_poly();
    const Material pe = Material::polyethylene();
    EXPECT_GT(bp.sigma_absorb(kThermalReferenceEv),
              50.0 * pe.sigma_absorb(kThermalReferenceEv));
}

TEST(Materials, WaterIsBestModerator) {
    // Average xi: water (H-rich) >> concrete >> cadmium.
    EXPECT_GT(Material::water().average_xi(),
              Material::concrete().average_xi());
    EXPECT_GT(Material::concrete().average_xi(),
              Material::cadmium().average_xi());
}

TEST(Materials, AirIsNearlyTransparent) {
    const Material air = Material::air();
    // Macroscopic cross section of air is ~1e-4 /cm: km-scale mfp.
    EXPECT_GT(air.mean_free_path(kThermalReferenceEv), 1.0e3);
}

TEST(Materials, SiliconModeratesWeakly) {
    EXPECT_LT(Material::silicon().average_xi(), 0.1);
}

}  // namespace
}  // namespace tnr::physics

// Core module tests: FIT arithmetic, the fleet projection, report
// formatting, and the ReliabilityStudy facade.

#include <gtest/gtest.h>

#include <sstream>

#include "core/fit.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "memory/dram_config.hpp"

namespace tnr::core {
namespace {

TEST(FitRate, Arithmetic) {
    FitRate fit;
    fit.high_energy = 80.0;
    fit.thermal = 20.0;
    EXPECT_DOUBLE_EQ(fit.total(), 100.0);
    EXPECT_DOUBLE_EQ(fit.thermal_share(), 0.2);
    EXPECT_DOUBLE_EQ(fit.underestimation(), 1.25);
}

TEST(FitRate, EmptyIsSafe) {
    const FitRate fit;
    EXPECT_DOUBLE_EQ(fit.thermal_share(), 0.0);
    EXPECT_DOUBLE_EQ(fit.underestimation(), 1.0);
}

TEST(DeviceFit, BothComponentsPositive) {
    const auto k20 = devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const FitRate fit =
        device_fit(k20, devices::ErrorType::kSdc, environment::nyc_datacenter());
    EXPECT_GT(fit.high_energy, 0.0);
    EXPECT_GT(fit.thermal, 0.0);
}

TEST(DeviceFit, ThermalShareGrowsAtAltitude) {
    const auto k20 = devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const FitRate nyc =
        device_fit(k20, devices::ErrorType::kSdc, environment::nyc_datacenter());
    const FitRate lead = device_fit(k20, devices::ErrorType::kSdc,
                                    environment::leadville_datacenter());
    EXPECT_GT(lead.total(), 5.0 * nyc.total());
    EXPECT_GT(lead.thermal_share(), nyc.thermal_share());
}

TEST(DeviceFit, BoronDepletionRemovesThermalFit) {
    const auto k20 = devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto depleted = k20.with_thermal_scale(0.0);
    const FitRate fit = device_fit(depleted, devices::ErrorType::kSdc,
                                   environment::nyc_datacenter());
    EXPECT_DOUBLE_EQ(fit.thermal, 0.0);
    EXPECT_GT(fit.high_energy, 0.0);
}

TEST(DramFit, Ddr3ExceedsDdr4PerModule) {
    const auto site = environment::nyc_datacenter();
    // Per Gbit DDR3 is 10x DDR4; per module (32 vs 64 Gbit) still ~5x.
    EXPECT_GT(dram_thermal_fit(memory::ddr3_module(), site),
              3.0 * dram_thermal_fit(memory::ddr4_module(), site));
}

TEST(FleetFit, AllTenSystems) {
    const auto rows = fleet_dram_fit(environment::top10_supercomputers());
    ASSERT_EQ(rows.size(), 10u);
    for (const auto& row : rows) {
        EXPECT_GT(row.fit, 0.0) << row.system;
        EXPECT_GT(row.capacity_gbit, 0.0);
    }
}

TEST(FleetFit, TrinityDominatesDespiteModerateCapacity) {
    // Trinity's 2231 m altitude multiplies its thermal flux: its fleet FIT
    // should beat same-capacity sea-level systems by a wide margin.
    const auto rows = fleet_dram_fit(environment::top10_supercomputers());
    double trinity_fit_per_gbit = 0.0;
    double summit_fit_per_gbit = 0.0;
    for (const auto& row : rows) {
        if (row.system.find("Trinity") != std::string::npos) {
            trinity_fit_per_gbit = row.fit / row.capacity_gbit;
        }
        if (row.system.find("Summit") != std::string::npos) {
            summit_fit_per_gbit = row.fit / row.capacity_gbit;
        }
    }
    EXPECT_GT(trinity_fit_per_gbit, 3.0 * summit_fit_per_gbit);
}

// --- Report formatting ------------------------------------------------------------

TEST(Report, ScientificFormat) {
    EXPECT_EQ(format_scientific(1.234e-8, 2), "1.23e-08");
    EXPECT_EQ(format_scientific(0.0, 1), "0.0e+00");
}

TEST(Report, PercentFormat) {
    EXPECT_EQ(format_percent(0.042, 1), "4.2%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(Report, FixedFormat) {
    EXPECT_EQ(format_fixed(10.136, 2), "10.14");
}

TEST(Report, TableRendersAllCells) {
    TablePrinter table({"device", "ratio"});
    table.add_row({"K20", "2.0"});
    table.add_row({"Xeon Phi", "10.14"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("device"), std::string::npos);
    EXPECT_NE(out.find("Xeon Phi"), std::string::npos);
    EXPECT_NE(out.find("10.14"), std::string::npos);
}

TEST(Report, TableValidatesArity) {
    TablePrinter table({"a", "b"});
    EXPECT_THROW(table.add_row({"only one"}), std::invalid_argument);
    EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

// --- ReliabilityStudy -------------------------------------------------------------

TEST(Study, CampaignIsCached) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 300.0;
    ReliabilityStudy study(cfg);
    const auto* first = &study.campaign();
    const auto* second = &study.campaign();
    EXPECT_EQ(first, second);
}

TEST(Study, MeasuredFitPositive) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 3600.0;
    ReliabilityStudy study(cfg);
    const FitRate fit =
        study.measured_fit("NVIDIA K20", devices::ErrorType::kSdc,
                           environment::nyc_datacenter());
    EXPECT_GT(fit.total(), 0.0);
}

TEST(Study, UnknownDeviceThrows) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 300.0;
    ReliabilityStudy study(cfg);
    EXPECT_THROW((void)study.measured_fit("TPU", devices::ErrorType::kSdc,
                                          environment::nyc_datacenter()),
                 std::out_of_range);
}

TEST(Study, FitShareTableCoversDevicesAndSites) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 600.0;
    ReliabilityStudy study(cfg);
    const std::vector<environment::Site> sites = {
        environment::nyc_datacenter(), environment::leadville_datacenter()};
    const auto table = study.fit_share_table(sites);
    // 8 devices x 2 types x 2 sites.
    EXPECT_EQ(table.size(), 32u);
}

}  // namespace
}  // namespace tnr::core

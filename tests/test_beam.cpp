// Beam module tests: beamline conventions, single-experiment statistics,
// multi-board derating, and campaign aggregation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "beam/beamline.hpp"
#include "beam/campaign.hpp"
#include "beam/experiment.hpp"
#include "beam/screening.hpp"
#include "core/error.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "workloads/suite.hpp"

namespace tnr::beam {
namespace {

TEST(Beamline, ChipIrUsesAbove10MeVConvention) {
    const Beamline b = Beamline::chipir();
    EXPECT_EQ(b.convention(), Beamline::FluenceConvention::kAbove10MeV);
    EXPECT_NEAR(b.reference_flux(), 5.4e6, 0.02 * 5.4e6);
}

TEST(Beamline, RotaxUsesTotalConvention) {
    const Beamline b = Beamline::rotax();
    EXPECT_EQ(b.convention(), Beamline::FluenceConvention::kTotal);
    EXPECT_NEAR(b.reference_flux(), 2.72e6, 0.01 * 2.72e6);
}

TEST(Experiment, FluenceAccounting) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::rotax(), device, "MxM", vulnerability);
    stats::Rng rng(110);
    ExperimentConfig cfg;
    cfg.beam_time_s = 100.0;
    const ExperimentResult r = exp.run(cfg, rng);
    EXPECT_NEAR(r.sdc.fluence, 2.72e6 * 100.0, 0.01 * 2.72e8);
    EXPECT_EQ(r.sdc.beamline, "ROTAX");
    EXPECT_EQ(r.sdc.workload, "MxM");
}

TEST(Experiment, MeasuredCrossSectionConvergesToTruth) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::rotax(), device, "MxM", vulnerability);
    stats::Rng rng(111);
    ExperimentConfig cfg;
    cfg.beam_time_s = 3600.0 * 20.0;  // long run: tight statistics.
    const ExperimentResult r = exp.run(cfg, rng);
    const double truth = exp.true_error_rate(devices::ErrorType::kSdc) /
                         Beamline::rotax().reference_flux();
    EXPECT_GT(r.sdc.errors, 100u);
    EXPECT_NEAR(r.sdc.cross_section(), truth, 0.2 * truth);
    EXPECT_TRUE(r.sdc.confidence_interval().contains(truth));
}

TEST(Experiment, PoissonCountsHavePoissonSpread) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::rotax(), device, "LUD", vulnerability);
    stats::Rng rng(112);
    ExperimentConfig cfg;
    cfg.beam_time_s = 3600.0;
    stats::RunningStats counts;
    for (int i = 0; i < 300; ++i) {
        counts.add(static_cast<double>(exp.run(cfg, rng).sdc.errors));
    }
    // Poisson: variance ~ mean.
    ASSERT_GT(counts.mean(), 5.0);
    EXPECT_NEAR(counts.variance() / counts.mean(), 1.0, 0.35);
}

TEST(Experiment, DeratingScalesEventsAndFluenceTogether) {
    // Derated boards see fewer errors AND less fluence: the estimated cross
    // section stays unbiased (the whole point of the derating factor).
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA TitanX"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA TitanX"));
    const BeamExperiment exp(Beamline::chipir(), device, "MxM", vulnerability);
    stats::Rng rng(113);
    ExperimentConfig on_axis;
    on_axis.beam_time_s = 3600.0 * 30.0;
    ExperimentConfig derated = on_axis;
    derated.derating = 0.6;
    const auto r1 = exp.run(on_axis, rng);
    const auto r2 = exp.run(derated, rng);
    EXPECT_NEAR(r2.sdc.fluence / r1.sdc.fluence, 0.6, 1e-9);
    ASSERT_GT(r2.sdc.errors, 50u);
    EXPECT_NEAR(r2.sdc.cross_section(), r1.sdc.cross_section(),
                0.25 * r1.sdc.cross_section());
}

TEST(Experiment, ChipIrSdcRateIncludesThermalContamination) {
    // ChipIR has a real thermal tail (4e5 n/cm^2/s): a boron-heavy device's
    // ChipIR error rate must exceed its pure-HE channel rate.
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::chipir(), device, "MxM", vulnerability);
    const double total_rate = exp.true_error_rate(devices::ErrorType::kSdc);
    const double he_only =
        device.high_energy_response(devices::ErrorType::kSdc)
            .event_rate(Beamline::chipir().spectrum());
    EXPECT_GT(total_rate, he_only);
    // But the contamination is a small correction (<10% for K20).
    EXPECT_LT((total_rate - he_only) / he_only, 0.10);
}

TEST(Experiment, ConfigValidation) {
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::rotax(), device, "MxM", vulnerability);
    stats::Rng rng(114);
    ExperimentConfig bad;
    bad.beam_time_s = -1.0;
    EXPECT_THROW((void)exp.run(bad, rng), std::invalid_argument);
    bad.beam_time_s = 1.0;
    bad.derating = 1.5;
    EXPECT_THROW((void)exp.run(bad, rng), std::invalid_argument);
}

TEST(Experiment, LoggedRunTimestampsAreUniform) {
    // A homogeneous Poisson process conditioned on its count has i.i.d.
    // uniform event times: the logged timestamps must pass a K-S test.
    const auto device =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto vulnerability = faultinject::VulnerabilityTable::uniform(
        workloads::suite_for_device("NVIDIA K20"));
    const BeamExperiment exp(Beamline::rotax(), device, "MxM", vulnerability);
    stats::Rng rng(115);
    ExperimentConfig cfg;
    cfg.beam_time_s = 3600.0 * 40.0;
    const auto logged = exp.run_logged(cfg, rng);
    ASSERT_GT(logged.sdc_times_s.size(), 200u);
    EXPECT_EQ(logged.sdc_times_s.size(), logged.summary.sdc.errors);
    EXPECT_TRUE(std::is_sorted(logged.sdc_times_s.begin(),
                               logged.sdc_times_s.end()));
    const auto ks =
        stats::ks_test_uniform(logged.sdc_times_s, 0.0, cfg.beam_time_s);
    EXPECT_GT(ks.p_value, 0.001);
}

// --- Screening ---------------------------------------------------------------------

TEST(Screening, ZeroFailureTimeFormula) {
    // -ln(0.05) = 3.0 at 95%: T = 3.0 / (sigma * flux).
    const double t = zero_failure_test_time_s(1.0e-8, 1.0e6, 0.95);
    EXPECT_NEAR(t, 299.57, 0.1);
    EXPECT_THROW(zero_failure_test_time_s(0.0, 1.0, 0.95),
                 core::RunError);
}

TEST(Screening, VerdictsPartitionCorrectly) {
    // Clearly clean: 0 errors over a large fluence.
    const auto accept = screen_part(0, 1.0e10, 1.0e-8);
    EXPECT_EQ(accept.verdict, ScreeningVerdict::kAccept);
    // Clearly dirty: many errors.
    const auto reject = screen_part(1000, 1.0e10, 1.0e-8);
    EXPECT_EQ(reject.verdict, ScreeningVerdict::kReject);
    // Borderline: tiny fluence, one error.
    const auto open = screen_part(1, 1.0e8, 1.0e-8);
    EXPECT_EQ(open.verdict, ScreeningVerdict::kInconclusive);
}

TEST(Screening, CatalogPartsClassifyAsExpected) {
    // Budget between the Xeon Phi's thermal sigma (~2e-9) and the K20's
    // (~4e-8): a 2 h ROTAX run must accept the former and reject the latter.
    const double sigma_max = 1.0e-8;
    stats::Rng rng(116);
    const Beamline rotax = Beamline::rotax();
    const auto screen_device = [&](const char* name) {
        const auto device = devices::build_calibrated(devices::spec_by_name(name));
        const auto suite = workloads::suite_for_device(name);
        const BeamExperiment exp(
            rotax, device, suite.front().name,
            faultinject::VulnerabilityTable::uniform(suite));
        ExperimentConfig cfg;
        cfg.beam_time_s = 2.0 * 3600.0;
        const auto r = exp.run(cfg, rng);
        return screen_part(r.sdc.errors, r.sdc.fluence, sigma_max).verdict;
    };
    EXPECT_EQ(screen_device("Intel Xeon Phi"), ScreeningVerdict::kAccept);
    EXPECT_EQ(screen_device("NVIDIA K20"), ScreeningVerdict::kReject);
}

TEST(Screening, VerdictNames) {
    EXPECT_STREQ(to_string(ScreeningVerdict::kAccept), "ACCEPT");
    EXPECT_STREQ(to_string(ScreeningVerdict::kReject), "REJECT");
    EXPECT_STREQ(to_string(ScreeningVerdict::kInconclusive), "INCONCLUSIVE");
}

TEST(Campaign, ProducesAllRows) {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 600.0;
    Campaign campaign(cfg);
    const CampaignResult result = campaign.run();
    // 8 devices x 2 error types.
    EXPECT_EQ(result.ratio_rows.size(), 16u);
    // Measurements: per device, 4 per workload (2 facilities x 2 types).
    std::size_t expected = 0;
    for (const auto& device : devices::standard_catalog()) {
        expected += 4 * workloads::suite_for_device(device.name()).size();
    }
    EXPECT_EQ(result.measurements.size(), expected);
}

TEST(Campaign, RowLookup) {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 600.0;
    const CampaignResult result = Campaign(cfg).run();
    EXPECT_NO_THROW((void)result.row("NVIDIA K20", devices::ErrorType::kSdc));
    EXPECT_THROW((void)result.row("TPU", devices::ErrorType::kSdc),
                 std::out_of_range);
    const auto k20_chipir = result.for_device("NVIDIA K20", "ChipIR",
                                              devices::ErrorType::kSdc);
    EXPECT_EQ(k20_chipir.size(), 5u);  // HPC suite + YOLO.
}

TEST(Campaign, DeterministicForSeed) {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 300.0;
    cfg.seed = 77;
    const CampaignResult a = Campaign(cfg).run();
    const CampaignResult b = Campaign(cfg).run();
    ASSERT_EQ(a.measurements.size(), b.measurements.size());
    for (std::size_t i = 0; i < a.measurements.size(); ++i) {
        EXPECT_EQ(a.measurements[i].errors, b.measurements[i].errors);
    }
}

TEST(Campaign, FpgaHasNoThermalDues) {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 3600.0;
    const CampaignResult result = Campaign(cfg).run();
    const auto& row =
        result.row("Xilinx Zynq-7000 FPGA", devices::ErrorType::kDue);
    EXPECT_EQ(row.errors_th, 0u);
    EXPECT_FALSE(row.ratio().has_value());
}

TEST(Campaign, ValidatesConfig) {
    CampaignConfig bad;
    bad.beam_time_per_run_s = 0.0;
    EXPECT_THROW(Campaign{bad}, core::RunError);
    CampaignConfig no_slots;
    no_slots.chipir_deratings.clear();
    EXPECT_THROW(Campaign{no_slots}, core::RunError);
    CampaignConfig no_attempts;
    no_attempts.max_attempts = 0;
    EXPECT_THROW(Campaign{no_attempts}, core::RunError);
}

TEST(Campaign, ValidatesDeratingEntries) {
    // A negative or super-unity derating would silently produce negative or
    // inflated fluence; every entry must be finite and in (0, 1].
    for (const double bad_entry :
         {-0.5, 0.0, 1.5, std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        CampaignConfig cfg;
        cfg.chipir_deratings = {1.0, bad_entry};
        EXPECT_THROW(Campaign{cfg}, core::RunError) << bad_entry;
    }
    CampaignConfig ok;
    ok.chipir_deratings = {1.0, 0.5, 0.01};
    EXPECT_NO_THROW(Campaign{ok});
}

TEST(Campaign, ConfigErrorsCarryTheConfigCategory) {
    CampaignConfig cfg;
    cfg.chipir_deratings = {-1.0};
    try {
        Campaign campaign(cfg);
        FAIL() << "expected RunError";
    } catch (const core::RunError& e) {
        EXPECT_EQ(e.category(), core::ErrorCategory::kConfig);
        EXPECT_EQ(e.exit_code(), 2);
    }
}

TEST(Campaign, RowErrorNamesDeviceAndType) {
    CampaignConfig cfg;
    cfg.beam_time_per_run_s = 60.0;
    const CampaignResult result =
        Campaign(cfg).run({devices::standard_catalog().front()});
    try {
        (void)result.row("No Such Device", devices::ErrorType::kDue);
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("No Such Device"), std::string::npos);
        EXPECT_NE(what.find("DUE"), std::string::npos);
    }
}

TEST(Campaign, ZeroFluenceRowsFlagInsteadOfReturningZero) {
    DeviceRatioRow row;
    row.device = "ghost";
    EXPECT_THROW((void)row.sigma_he(), core::RunError);
    EXPECT_THROW((void)row.sigma_th(), core::RunError);
    row.fluence_he = 1.0;
    row.fluence_th = 2.0;
    row.errors_he = 3;
    EXPECT_DOUBLE_EQ(row.sigma_he(), 3.0);
    EXPECT_DOUBLE_EQ(row.sigma_th(), 0.0);
}

}  // namespace
}  // namespace tnr::beam

// Tests for the device sensitivity models and the calibrated catalog.

#include <gtest/gtest.h>

#include <cmath>

#include "devices/catalog.hpp"
#include "devices/device.hpp"
#include "devices/sensitivity.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/units.hpp"

namespace tnr::devices {
namespace {

TEST(Weibull, ZeroBelowThreshold) {
    const WeibullResponse w(1.0e-7, 1.0e6, 4.0e7, 1.5);
    EXPECT_DOUBLE_EQ(w.cross_section(0.5e6), 0.0);
    EXPECT_DOUBLE_EQ(w.cross_section(0.0253), 0.0);
}

TEST(Weibull, ApproachesSaturation) {
    const WeibullResponse w(1.0e-7, 1.0e6, 4.0e7, 1.5);
    EXPECT_NEAR(w.cross_section(1.0e9), 1.0e-7, 1e-10);
}

TEST(Weibull, MonotonicallyIncreasing) {
    const WeibullResponse w(1.0e-7, 1.0e6, 4.0e7, 1.5);
    double last = 0.0;
    for (double e = 2.0e6; e < 1.0e9; e *= 2.0) {
        const double s = w.cross_section(e);
        EXPECT_GE(s, last);
        last = s;
    }
}

TEST(Weibull, InertDefault) {
    const WeibullResponse w;
    EXPECT_DOUBLE_EQ(w.cross_section(1.0e8), 0.0);
    EXPECT_DOUBLE_EQ(w.event_rate(*physics::chipir_spectrum()), 0.0);
}

TEST(Weibull, ScaledIsLinear) {
    const WeibullResponse w(1.0e-7, 1.0e6, 4.0e7, 1.5);
    const WeibullResponse w2 = w.scaled(2.0);
    EXPECT_NEAR(w2.cross_section(5.0e7), 2.0 * w.cross_section(5.0e7), 1e-18);
}

TEST(Weibull, NoRotaxResponse) {
    // A pure HE channel must see nothing on a thermal beam.
    const WeibullResponse w(1.0e-7, 1.0e6, 4.0e7, 1.5);
    EXPECT_DOUBLE_EQ(w.event_rate(*physics::rotax_spectrum()), 0.0);
}

TEST(Weibull, RejectsBadParameters) {
    EXPECT_THROW(WeibullResponse(-1.0, 1e6, 1e7, 1.0), std::invalid_argument);
    EXPECT_THROW(WeibullResponse(1e-7, 1e6, 0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(WeibullResponse(1e-7, 1e6, 1e7, 0.0), std::invalid_argument);
}

TEST(B10, OneOverVShape) {
    const B10Response b(1.0e14, 0.05);
    EXPECT_NEAR(b.cross_section(4.0 * physics::kThermalReferenceEv),
                0.5 * b.cross_section(physics::kThermalReferenceEv), 1e-15);
}

TEST(B10, ReferenceMagnitude) {
    // N=1e14, sigma=3837 b, P=0.05 -> 1e14 * 3.837e-21 * 0.05 = 1.92e-8 cm^2.
    const B10Response b(1.0e14, 0.05);
    EXPECT_NEAR(b.cross_section(physics::kThermalReferenceEv), 1.92e-8,
                0.02e-8);
}

TEST(B10, BoronFreeDeviceImmune) {
    const B10Response b;
    EXPECT_DOUBLE_EQ(b.cross_section(0.0253), 0.0);
    EXPECT_DOUBLE_EQ(b.event_rate(*physics::rotax_spectrum()), 0.0);
}

TEST(B10, FoldedRotaxNearPointValue) {
    // Folding 1/v over the ROTAX Maxwellian gives Gamma(1.5)/Gamma(2) =
    // 0.886 of the 25.3 meV point value (for kT = 25.3 meV).
    const B10Response b(1.0e14, 0.05);
    const double folded = b.folded(*physics::rotax_spectrum());
    const double point = b.cross_section(physics::kThermalReferenceEv);
    EXPECT_NEAR(folded / point, 0.886, 0.02);
}

TEST(B10, RejectsBadParameters) {
    EXPECT_THROW(B10Response(-1.0, 0.5), std::invalid_argument);
    EXPECT_THROW(B10Response(1e14, 1.5), std::invalid_argument);
}

TEST(Device, CrossSectionSumsChannels) {
    const Device d("test", {"28nm", TransistorType::kPlanarCmos, "X"},
                   WeibullResponse(1.0e-7, 1.0e6, 4.0e7, 1.5),
                   WeibullResponse(), B10Response(1.0e14, 0.05),
                   B10Response());
    // Thermal energy: only the B10 channel.
    EXPECT_GT(d.cross_section(ErrorType::kSdc, 0.0253), 0.0);
    // Fast energy: only the Weibull channel (B10 1/v is negligible there
    // but nonzero; check dominance instead of equality).
    const double fast = d.cross_section(ErrorType::kSdc, 1.0e8);
    EXPECT_GT(fast, 0.9e-7);
}

TEST(Device, WithThermalScaleZeroMakesImmune) {
    const Device d("test", {"28nm", TransistorType::kPlanarCmos, "X"},
                   WeibullResponse(1.0e-7, 1.0e6, 4.0e7, 1.5),
                   WeibullResponse(1.0e-8, 1.0e6, 4.0e7, 1.5),
                   B10Response(1.0e14, 0.05), B10Response(1.0e13, 0.05));
    const Device depleted = d.with_thermal_scale(0.0);
    EXPECT_DOUBLE_EQ(
        depleted.error_rate(ErrorType::kSdc, *physics::rotax_spectrum()), 0.0);
    // HE channel untouched.
    EXPECT_NEAR(
        depleted.error_rate(ErrorType::kSdc, *physics::chipir_spectrum()),
        d.high_energy_response(ErrorType::kSdc)
            .event_rate(*physics::chipir_spectrum()),
        1e-12);
}

TEST(Device, EnumNames) {
    EXPECT_STREQ(to_string(ErrorType::kSdc), "SDC");
    EXPECT_STREQ(to_string(ErrorType::kDue), "DUE");
    EXPECT_STREQ(to_string(TransistorType::kFinFet), "FinFET");
}

// --- Catalog calibration ---------------------------------------------------------

TEST(Catalog, HasAllPaperDevices) {
    const auto& specs = standard_specs();
    ASSERT_EQ(specs.size(), 8u);
    EXPECT_NO_THROW(spec_by_name("Intel Xeon Phi"));
    EXPECT_NO_THROW(spec_by_name("NVIDIA K20"));
    EXPECT_NO_THROW(spec_by_name("NVIDIA TitanX"));
    EXPECT_NO_THROW(spec_by_name("NVIDIA TitanV"));
    EXPECT_NO_THROW(spec_by_name("AMD APU (CPU)"));
    EXPECT_NO_THROW(spec_by_name("AMD APU (GPU)"));
    EXPECT_NO_THROW(spec_by_name("AMD APU (CPU+GPU)"));
    EXPECT_NO_THROW(spec_by_name("Xilinx Zynq-7000 FPGA"));
    EXPECT_THROW(spec_by_name("TPU"), std::out_of_range);
}

/// The calibration contract: for each device, the analytic (noise-free)
/// ratio of ChipIR-reported HE sigma to ROTAX-reported thermal sigma must
/// equal the Fig.-5 target.
class CatalogCalibrationTest : public ::testing::TestWithParam<DeviceSpec> {};

TEST_P(CatalogCalibrationTest, SdcRatioMatchesTarget) {
    const DeviceSpec& spec = GetParam();
    if (!spec.ratio_sdc.has_value()) GTEST_SKIP();
    const Device d = build_calibrated(spec);
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double sigma_he =
        d.high_energy_response(ErrorType::kSdc).event_rate(*chipir) /
        physics::kChipIrHighEnergyFlux;
    const double sigma_th = d.error_rate(ErrorType::kSdc, *rotax) /
                            physics::kRotaxTotalFlux;
    EXPECT_NEAR(sigma_he / sigma_th, *spec.ratio_sdc, 0.01 * *spec.ratio_sdc)
        << spec.name;
}

TEST_P(CatalogCalibrationTest, DueRatioMatchesTarget) {
    const DeviceSpec& spec = GetParam();
    if (!spec.ratio_due.has_value()) GTEST_SKIP();
    const Device d = build_calibrated(spec);
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double sigma_he =
        d.high_energy_response(ErrorType::kDue).event_rate(*chipir) /
        physics::kChipIrHighEnergyFlux;
    const double sigma_th = d.error_rate(ErrorType::kDue, *rotax) /
                            physics::kRotaxTotalFlux;
    EXPECT_NEAR(sigma_he / sigma_th, *spec.ratio_due, 0.01 * *spec.ratio_due)
        << spec.name;
}

TEST_P(CatalogCalibrationTest, HeSigmaMatchesTarget) {
    const DeviceSpec& spec = GetParam();
    const Device d = build_calibrated(spec);
    const double sigma_he =
        d.high_energy_response(ErrorType::kSdc)
            .event_rate(*physics::chipir_spectrum()) /
        physics::kChipIrHighEnergyFlux;
    EXPECT_NEAR(sigma_he, spec.sigma_he_sdc_cm2, 0.01 * spec.sigma_he_sdc_cm2)
        << spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, CatalogCalibrationTest,
    ::testing::ValuesIn(standard_specs()),
    [](const ::testing::TestParamInfo<DeviceSpec>& info) {
        std::string name = info.param.name;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return name;
    });

TEST(Catalog, FpgaHasNoThermalDueChannel) {
    const Device fpga = build_calibrated(spec_by_name("Xilinx Zynq-7000 FPGA"));
    EXPECT_DOUBLE_EQ(
        fpga.thermal_response(ErrorType::kDue).areal_density(), 0.0);
}

TEST(Catalog, XeonPhiLeastThermalSensitive) {
    // The Xeon Phi's SDC ratio (10.14) is the largest of the roster: the
    // "little or depleted boron" conclusion.
    double max_other = 0.0;
    for (const auto& spec : standard_specs()) {
        if (!spec.ratio_sdc.has_value()) continue;
        if (spec.name == "Intel Xeon Phi") continue;
        max_other = std::max(max_other, *spec.ratio_sdc);
    }
    EXPECT_GT(*spec_by_name("Intel Xeon Phi").ratio_sdc, max_other);
}

TEST(Catalog, ApuCpuGpuWorstDueRatio) {
    // The heterogeneous CPU+GPU configuration has the DUE ratio closest to 1
    // (thermal DUEs almost as likely as HE DUEs).
    const auto& apu = spec_by_name("AMD APU (CPU+GPU)");
    for (const auto& spec : standard_specs()) {
        if (!spec.ratio_due.has_value()) continue;
        EXPECT_GE(*spec.ratio_due, *apu.ratio_due);
    }
}

TEST(Catalog, B10DensityPhysicallyPlausible) {
    // Calibrated areal densities should land in the 1e12-1e16 atoms/cm^2
    // range — consistent with ppm-level boron in contact/doping layers.
    for (const auto& spec : standard_specs()) {
        const Device d = build_calibrated(spec);
        const double n = d.thermal_response(ErrorType::kSdc).areal_density();
        if (n == 0.0) continue;
        EXPECT_GT(n, 1.0e12) << spec.name;
        EXPECT_LT(n, 1.0e16) << spec.name;
    }
}

}  // namespace
}  // namespace tnr::devices

// Cross-module integration tests: full pipelines that exercise several
// libraries together, mirroring how the examples and benches use the API.

#include <gtest/gtest.h>

#include <cmath>

#include "beam/campaign.hpp"
#include "core/fit.hpp"
#include "core/study.hpp"
#include "detector/analysis.hpp"
#include "detector/tin2.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"
#include "faultinject/avf.hpp"
#include "memory/correct_loop.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/transport.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

namespace tnr {
namespace {

TEST(Integration, AvfWeightedCampaignRuns) {
    // Campaign with real fault-injection-derived workload weights.
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 1200.0;
    cfg.avf_trials = 60;  // small but real.
    const auto result = beam::Campaign(cfg).run();
    EXPECT_EQ(result.ratio_rows.size(), 16u);
    // Per-workload measurements must differ when AVF weights differ: check
    // that the K20 suite has at least two distinct SDC cross sections.
    const auto k20 = result.for_device("NVIDIA K20", "ChipIR",
                                       devices::ErrorType::kSdc);
    ASSERT_GE(k20.size(), 2u);
}

TEST(Integration, AblationBoronDepletionKillsThermalErrors) {
    // Build a boron-depleted roster and verify ROTAX sees (almost) nothing.
    std::vector<devices::Device> depleted;
    for (const auto& spec : devices::standard_specs()) {
        depleted.push_back(devices::build_calibrated(spec).with_thermal_scale(0.0));
    }
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 3600.0;
    const auto result = beam::Campaign(cfg).run(depleted);
    for (const auto& row : result.ratio_rows) {
        EXPECT_EQ(row.errors_th, 0u) << row.device;
    }
}

TEST(Integration, BpsgEraDeviceEightTimesWorse) {
    // §II: BPSG-era parts saw ~8x higher error rates from the 10B in the
    // glass. Scale a modern device's thermal channel up 8x and check the
    // total NYC FIT responds in kind when thermals dominate... it does not
    // for K20 (HE dominates at sea level), but the *thermal component*
    // scales exactly 8x.
    const auto k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    const auto bpsg = k20.with_thermal_scale(8.0);
    const auto site = environment::nyc_datacenter();
    const auto fit_modern =
        core::device_fit(k20, devices::ErrorType::kSdc, site);
    const auto fit_bpsg =
        core::device_fit(bpsg, devices::ErrorType::kSdc, site);
    EXPECT_NEAR(fit_bpsg.thermal / fit_modern.thermal, 8.0, 1e-6);
    EXPECT_NEAR(fit_bpsg.high_energy, fit_modern.high_energy, 1e-12);
}

TEST(Integration, RainyDayDoublesThermalFit) {
    // The paper's rain-doubles-thermal claim is an open-field statement:
    // rain swaps the ambient term 1.0 -> 2.0. Indoors the material boosts
    // ride on top (2.44/1.44 for a datacenter), so pin the exact x2 on an
    // open-field site.
    const auto k20 =
        devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
    environment::Site sunny = environment::nyc_datacenter();
    sunny.environment = environment::ThermalEnvironment::open_field();
    environment::Site rainy = sunny;
    rainy.environment.weather = environment::Weather::kRainy;
    const auto fit_sunny = core::device_fit(k20, devices::ErrorType::kSdc, sunny);
    const auto fit_rainy = core::device_fit(k20, devices::ErrorType::kSdc, rainy);
    EXPECT_NEAR(fit_rainy.thermal / fit_sunny.thermal, 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(fit_rainy.high_energy, fit_sunny.high_energy);

    // Datacenter composition: ambient swap only, boosts unchanged.
    environment::Site dc_rainy = environment::nyc_datacenter();
    dc_rainy.environment.weather = environment::Weather::kRainy;
    const auto fit_dc = core::device_fit(k20, devices::ErrorType::kSdc,
                                         environment::nyc_datacenter());
    const auto fit_dc_rainy =
        core::device_fit(k20, devices::ErrorType::kSdc, dc_rainy);
    EXPECT_NEAR(fit_dc_rainy.thermal / fit_dc.thermal, 2.44 / 1.44, 1e-9);
}

TEST(Integration, TransportBackedWaterBoostIsPositive) {
    // Cross-check the +24% water modifier's *sign and order* with the MC:
    // a water slab's thermal albedo adds a two-digit percentage of the
    // incident fast flux back as thermals.
    const physics::SlabTransport water(physics::Material::water(), 15.0);
    stats::Rng rng(140);
    const auto r = water.run_monoenergetic(2.0e6, 20000, rng);
    EXPECT_GT(r.thermal_albedo(), 0.05);
    EXPECT_LT(r.thermal_albedo(), 0.60);
}

TEST(Integration, DetectorSeesEnvironmentModifierEndToEnd) {
    // Tie environment -> detector: simulate Tin-II in the open field vs on
    // a concrete slab with cooling (x1.44); the measured thermal rates must
    // differ by that factor.
    const detector::Tin2Detector tin2;
    stats::Rng rng(141);
    const auto nyc = environment::Location::new_york_city();
    const double base_flux = nyc.thermal_flux_baseline() / 3600.0;
    const std::vector<detector::SchedulePhase> schedule = {
        {"open field", 4.0 * 86400.0, base_flux, 20.0 * base_flux},
        {"datacenter", 4.0 * 86400.0, base_flux * 1.44, 20.0 * base_flux},
    };
    const auto rec = tin2.record(schedule, rng);
    const double before = detector::thermal_rate(rec, 0, 96);
    const double after = detector::thermal_rate(rec, 96, 192);
    EXPECT_NEAR(after / before, 1.44, 0.12);
}

TEST(Integration, DdrCampaignBothPatternsRecoverAsymmetry) {
    // Run the correct loop with 0xFF and 0x00 backgrounds and merge: DDR3
    // must show >90% 1->0 flips among transients.
    memory::CorrectLoopConfig ones;
    ones.array_cells = 1u << 18;
    ones.pattern_ones = true;
    memory::CorrectLoopConfig zeros = ones;
    zeros.pattern_ones = false;
    memory::CorrectLoopTester t1(memory::ddr3_module(), ones, 2.0e7, 150);
    memory::CorrectLoopTester t0(memory::ddr3_module(), zeros, 2.0e7, 151);
    const auto r1 = t1.run(900.0);
    const auto r0 = t0.run(900.0);
    const double one_to_zero =
        static_cast<double>(r1.flips_one_to_zero + r0.flips_one_to_zero);
    const double zero_to_one =
        static_cast<double>(r1.flips_zero_to_one + r0.flips_zero_to_one);
    ASSERT_GT(one_to_zero + zero_to_one, 100.0);
    EXPECT_GT(one_to_zero / (one_to_zero + zero_to_one), 0.85);
}

TEST(Integration, FleetProjectionOrdersByCapacityTimesFlux) {
    const auto rows = core::fleet_dram_fit(environment::top10_supercomputers());
    for (const auto& row : rows) {
        // FIT must equal sigma * capacity * flux * 1e9 (consistency).
        const auto site_it = row;
        EXPECT_GT(site_it.fit, 0.0);
    }
    // Summit (largest capacity) must beat Lassen (smallest, same site type).
    double summit = 0.0;
    double lassen = 0.0;
    for (const auto& row : rows) {
        if (row.system.find("Summit") != std::string::npos) summit = row.fit;
        if (row.system.find("Lassen") != std::string::npos) lassen = row.fit;
    }
    EXPECT_GT(summit, lassen);
}

TEST(Integration, StudyEndToEndMatchesManualPipeline) {
    // The facade must agree with manually chaining campaign -> fit.
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 3600.0;
    cfg.seed = 7;
    core::ReliabilityStudy study(cfg);
    const auto& row =
        study.campaign().row("NVIDIA TitanX", devices::ErrorType::kSdc);
    const auto site = environment::leadville_datacenter();
    const auto fit = study.measured_fit("NVIDIA TitanX",
                                        devices::ErrorType::kSdc, site);
    EXPECT_NEAR(fit.high_energy,
                row.sigma_he() * site.high_energy_flux() * 1e9, 1e-6);
    EXPECT_NEAR(fit.thermal, row.sigma_th() * site.thermal_flux() * 1e9, 1e-6);
}

TEST(Integration, ShieldingTradeoffStory) {
    // §V discussion: Cd kills an incident thermal beam outright; borated
    // poly needs inches; water shields nothing (it *adds* thermals).
    stats::Rng rng(142);
    const physics::SlabTransport cd(physics::Material::cadmium(), 0.05);
    const physics::SlabTransport bp(physics::Material::borated_poly(), 5.0);
    const physics::SlabTransport water(physics::Material::water(), 5.0);
    const double e = physics::kThermalReferenceEv;
    EXPECT_LT(cd.run_monoenergetic(e, 5000, rng).transmission(), 0.01);
    EXPECT_LT(bp.run_monoenergetic(e, 5000, rng).transmission(), 0.01);
    EXPECT_GT(water.run_monoenergetic(e, 5000, rng).reflection() +
                  water.run_monoenergetic(e, 5000, rng).transmission(),
              0.2);
}

}  // namespace
}  // namespace tnr

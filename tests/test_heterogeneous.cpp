// Heterogeneous (CPU+GPU) composition tests: endpoint consistency, the
// 50/50 DUE-ratio dip (the paper's 1.18 observation), and the sweep shape.

#include <gtest/gtest.h>

#include <cstdio>

#include "devices/catalog.hpp"
#include "devices/heterogeneous.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/units.hpp"

namespace tnr::devices {
namespace {

Device cpu_part() {
    return build_calibrated(spec_by_name("AMD APU (CPU)"));
}
Device gpu_part() {
    return build_calibrated(spec_by_name("AMD APU (GPU)"));
}

/// Reported HE/thermal DUE ratio of a device (analytic, noise-free).
double due_ratio(const Device& d) {
    const auto chipir = physics::chipir_spectrum();
    const auto rotax = physics::rotax_spectrum();
    const double sigma_he = d.high_energy_response(ErrorType::kDue)
                                .event_rate(*chipir) /
                            physics::kChipIrHighEnergyFlux;
    const double sigma_th =
        d.error_rate(ErrorType::kDue, *rotax) / physics::kRotaxTotalFlux;
    return sigma_he / sigma_th;
}

TEST(Heterogeneous, EndpointsReproduceParts) {
    const auto cpu = cpu_part();
    const auto gpu = gpu_part();
    const auto as_cpu = compose_heterogeneous(cpu, gpu, 0.0);
    const auto as_gpu = compose_heterogeneous(cpu, gpu, 1.0);
    const auto rotax = physics::rotax_spectrum();
    EXPECT_NEAR(as_cpu.error_rate(ErrorType::kSdc, *rotax),
                cpu.error_rate(ErrorType::kSdc, *rotax), 1e-9);
    EXPECT_NEAR(as_gpu.error_rate(ErrorType::kSdc, *rotax),
                gpu.error_rate(ErrorType::kSdc, *rotax), 1e-9);
    // No sync channel at the endpoints: DUE ratios match the parts.
    EXPECT_NEAR(due_ratio(as_cpu), due_ratio(cpu), 0.01);
    EXPECT_NEAR(due_ratio(as_gpu), due_ratio(gpu), 0.01);
}

TEST(Heterogeneous, CalibratedSyncReproducesPaperRatio) {
    const auto sync = calibrated_apu_sync_channel();
    const auto composed =
        compose_heterogeneous(cpu_part(), gpu_part(), 0.5, sync);
    // The catalog's measured CPU+GPU DUE ratio is 1.18; the composed model
    // must land there (small drift from beam contamination allowed).
    EXPECT_NEAR(due_ratio(composed), 1.18, 0.08);
}

TEST(Heterogeneous, SyncChannelIsSubstantial) {
    // "The mechanism responsible for communication and synchronism ... is
    // particularly sensitive": the calibrated sync sigma is comparable to
    // the parts' own DUE sigma.
    const auto sync = calibrated_apu_sync_channel();
    EXPECT_GT(sync.sigma_he_due_cm2, 5.0e-9);
    EXPECT_LT(sync.sigma_he_due_cm2, 1.0e-7);
}

TEST(Heterogeneous, DueRatioDipsAtEvenSplit) {
    const auto cpu = cpu_part();
    const auto gpu = gpu_part();
    const auto sync = calibrated_apu_sync_channel();
    const double at_half = due_ratio(compose_heterogeneous(cpu, gpu, 0.5, sync));
    for (const double f : {0.0, 0.1, 0.9, 1.0}) {
        EXPECT_GT(due_ratio(compose_heterogeneous(cpu, gpu, f, sync)),
                  at_half)
            << "f=" << f;
    }
}

TEST(Heterogeneous, SdcChannelUnaffectedBySync) {
    // The sync channel is DUE-only: composed SDC rates are the pure blend.
    const auto cpu = cpu_part();
    const auto gpu = gpu_part();
    const auto rotax = physics::rotax_spectrum();
    const auto with_sync =
        compose_heterogeneous(cpu, gpu, 0.5, calibrated_apu_sync_channel());
    const auto without = compose_heterogeneous(cpu, gpu, 0.5, {0.0, 1.0});
    EXPECT_NEAR(with_sync.error_rate(ErrorType::kSdc, *rotax),
                without.error_rate(ErrorType::kSdc, *rotax), 1e-12);
}

TEST(Heterogeneous, Validation) {
    const auto cpu = cpu_part();
    const auto gpu = gpu_part();
    EXPECT_THROW(compose_heterogeneous(cpu, gpu, -0.1), std::invalid_argument);
    EXPECT_THROW(compose_heterogeneous(cpu, gpu, 1.1), std::invalid_argument);
    SyncChannel bad;
    bad.ratio_due = 0.0;
    EXPECT_THROW(compose_heterogeneous(cpu, gpu, 0.5, bad),
                 std::invalid_argument);
}

TEST(Blend, WeightedSumsAndZeroHandling) {
    const auto a = standard_he_channel(1.0e-8);
    const auto b = standard_he_channel(3.0e-8);
    const auto c = blend(a, b, 0.5, 0.5);
    EXPECT_NEAR(c.sigma_sat(), 0.5 * a.sigma_sat() + 0.5 * b.sigma_sat(),
                1e-12 * c.sigma_sat());
    const auto from_zero = blend(WeibullResponse(), b, 0.7, 0.5);
    EXPECT_NEAR(from_zero.sigma_sat(), 0.5 * b.sigma_sat(),
                1e-12 * b.sigma_sat());
    EXPECT_THROW(blend(a, b, -1.0, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace tnr::devices

// The reproduction contract, tested: a long simulated ChipIR+ROTAX campaign
// must land on the paper's Fig.-5 cross-section ratios within Poisson
// tolerance, and the FIT decomposition (Txt-2) must hit the quoted thermal
// shares. These are the headline numbers of the paper.

#include <gtest/gtest.h>

#include "beam/campaign.hpp"
#include "core/study.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"

namespace tnr {
namespace {

/// One long, shared campaign for every assertion in this file.
class CalibrationCampaign : public ::testing::Test {
protected:
    static const beam::CampaignResult& result() {
        static const beam::CampaignResult r = [] {
            beam::CampaignConfig cfg;
            cfg.beam_time_per_run_s = 3600.0 * 24.0;  // generous fluence.
            cfg.seed = 1234;
            return beam::Campaign(cfg).run();
        }();
        return r;
    }

    static double sdc_ratio(const std::string& device) {
        const auto& row = result().row(device, devices::ErrorType::kSdc);
        const auto ratio = row.ratio();
        EXPECT_TRUE(ratio.has_value()) << device;
        return ratio ? ratio->ratio : 0.0;
    }

    static double due_ratio(const std::string& device) {
        const auto& row = result().row(device, devices::ErrorType::kDue);
        const auto ratio = row.ratio();
        EXPECT_TRUE(ratio.has_value()) << device;
        return ratio ? ratio->ratio : 0.0;
    }
};

TEST_F(CalibrationCampaign, XeonPhiSdcRatio) {
    // Paper: 10.14x.
    EXPECT_NEAR(sdc_ratio("Intel Xeon Phi"), 10.14, 1.5);
}

TEST_F(CalibrationCampaign, XeonPhiDueRatio) {
    // Paper: 6.37x.
    EXPECT_NEAR(due_ratio("Intel Xeon Phi"), 6.37, 1.0);
}

TEST_F(CalibrationCampaign, K20Ratios) {
    // Paper: SDC ~2x, DUE ~3x.
    EXPECT_NEAR(sdc_ratio("NVIDIA K20"), 2.0, 0.4);
    EXPECT_NEAR(due_ratio("NVIDIA K20"), 3.0, 0.6);
}

TEST_F(CalibrationCampaign, TitanXRatios) {
    // Paper: SDC ~3x, DUE ~7x.
    EXPECT_NEAR(sdc_ratio("NVIDIA TitanX"), 3.0, 0.6);
    EXPECT_NEAR(due_ratio("NVIDIA TitanX"), 7.0, 1.2);
}

TEST_F(CalibrationCampaign, ApuCpuGpuDueNearUnity) {
    // Paper: 1.18x — thermal DUEs almost as frequent as HE DUEs.
    EXPECT_NEAR(due_ratio("AMD APU (CPU+GPU)"), 1.18, 0.25);
}

TEST_F(CalibrationCampaign, ApuSdcSimilarToGpus) {
    // Paper: APU SDC ratio "similar to NVIDIA GPUs" (2-3x).
    for (const char* name :
         {"AMD APU (CPU)", "AMD APU (GPU)", "AMD APU (CPU+GPU)"}) {
        const double r = sdc_ratio(name);
        EXPECT_GT(r, 1.5) << name;
        EXPECT_LT(r, 3.8) << name;
    }
}

TEST_F(CalibrationCampaign, FpgaSdcRatio) {
    // Paper: 2.33x.
    EXPECT_NEAR(sdc_ratio("Xilinx Zynq-7000 FPGA"), 2.33, 0.5);
}

TEST_F(CalibrationCampaign, RatioOrderingMatchesPaper) {
    // Xeon Phi >> everything (least thermal-sensitive); APU CPU+GPU has the
    // smallest DUE ratio.
    const double phi = sdc_ratio("Intel Xeon Phi");
    for (const char* name : {"NVIDIA K20", "NVIDIA TitanX",
                             "AMD APU (CPU+GPU)", "Xilinx Zynq-7000 FPGA"}) {
        EXPECT_GT(phi, sdc_ratio(name)) << name;
    }
    const double apu_due = due_ratio("AMD APU (CPU+GPU)");
    for (const char* name :
         {"Intel Xeon Phi", "NVIDIA K20", "NVIDIA TitanX"}) {
        EXPECT_LT(apu_due, due_ratio(name)) << name;
    }
}

TEST_F(CalibrationCampaign, ThermalCrossSectionsFarFromNegligible) {
    // The paper's core claim: thermal sensitivity is not negligible — every
    // boron-bearing device's thermal sigma is within ~10x of its HE sigma.
    for (const auto& spec : devices::standard_specs()) {
        if (!spec.ratio_sdc.has_value()) continue;
        const auto& row =
            result().row(spec.name, devices::ErrorType::kSdc);
        EXPECT_GT(row.sigma_th(), 0.05 * row.sigma_he()) << spec.name;
    }
}

// --- FIT decomposition (Txt-2) -----------------------------------------------------

class FitDecomposition : public ::testing::Test {
protected:
    static core::ReliabilityStudy& study() {
        static core::ReliabilityStudy s = [] {
            beam::CampaignConfig cfg;
            cfg.beam_time_per_run_s = 3600.0 * 24.0;
            cfg.seed = 99;
            return core::ReliabilityStudy(cfg);
        }();
        return s;
    }
};

TEST_F(FitDecomposition, XeonPhiNycSdcShare) {
    // Paper: 4.2% of the Xeon Phi SDC FIT at NYC is thermal.
    const auto fit = study().measured_fit(
        "Intel Xeon Phi", devices::ErrorType::kSdc, environment::nyc_datacenter());
    EXPECT_NEAR(fit.thermal_share(), 0.042, 0.015);
}

TEST_F(FitDecomposition, XeonPhiLeadvilleDueShare) {
    // Paper: up to 10.6% for Leadville DUE.
    const auto fit =
        study().measured_fit("Intel Xeon Phi", devices::ErrorType::kDue,
                             environment::leadville_datacenter());
    EXPECT_NEAR(fit.thermal_share(), 0.106, 0.035);
}

TEST_F(FitDecomposition, K20LeadvilleSdcShare) {
    // Paper: K20 has 29% of its SDC FIT from thermals at Leadville.
    const auto fit = study().measured_fit("NVIDIA K20", devices::ErrorType::kSdc,
                                          environment::leadville_datacenter());
    EXPECT_NEAR(fit.thermal_share(), 0.29, 0.06);
}

TEST_F(FitDecomposition, ApuCpuGpuLeadvilleDueShare) {
    // Paper: APU CPU+GPU has 39% of DUEs from thermals at Leadville.
    const auto fit =
        study().measured_fit("AMD APU (CPU+GPU)", devices::ErrorType::kDue,
                             environment::leadville_datacenter());
    EXPECT_NEAR(fit.thermal_share(), 0.39, 0.07);
}

TEST_F(FitDecomposition, ThermalContributionUpToFortyPercent) {
    // Conclusion (§VI): the thermal contribution reaches ~40% but does not
    // dominate everywhere.
    double max_share = 0.0;
    for (const auto& row : study().fit_share_table(
             {environment::nyc_datacenter(),
              environment::leadville_datacenter()})) {
        max_share = std::max(max_share, row.fit.thermal_share());
    }
    EXPECT_GT(max_share, 0.30);
    EXPECT_LT(max_share, 0.60);
}

TEST_F(FitDecomposition, SharesLargerAtLeadvilleForEveryDevice) {
    for (const auto& spec : devices::standard_specs()) {
        if (!spec.ratio_sdc.has_value()) continue;
        const auto nyc =
            study().measured_fit(spec.name, devices::ErrorType::kSdc,
                                 environment::nyc_datacenter());
        const auto lead =
            study().measured_fit(spec.name, devices::ErrorType::kSdc,
                                 environment::leadville_datacenter());
        EXPECT_GT(lead.thermal_share(), nyc.thermal_share()) << spec.name;
    }
}

}  // namespace
}  // namespace tnr

// Field-study tests: log simulation sanity, and the analyses recovering the
// injected physics — FIT rate, rain signature, altitude signature.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/fieldstudy.hpp"
#include "core/fit.hpp"
#include "devices/catalog.hpp"
#include "environment/site.hpp"

namespace tnr::core {
namespace {

devices::Device k20() {
    return devices::build_calibrated(devices::spec_by_name("NVIDIA K20"));
}

FleetLogConfig big_fleet() {
    FleetLogConfig cfg;
    cfg.nodes = 5000;
    cfg.days = 365.0;
    cfg.rain_probability = 0.3;
    return cfg;
}

TEST(FieldStudy, LogShapeSane) {
    const auto log = simulate_fleet_log(k20(), environment::leadville_datacenter(),
                                        big_fleet(), 700);
    EXPECT_EQ(log.nodes, 5000u);
    EXPECT_EQ(log.rainy_day.size(), 365u);
    ASSERT_FALSE(log.events.empty());
    // Events sorted in time, nodes within range.
    for (std::size_t i = 1; i < log.events.size(); ++i) {
        EXPECT_LE(log.events[i - 1].time_s, log.events[i].time_s);
    }
    for (const auto& e : log.events) {
        EXPECT_LT(e.node, 5000u);
        EXPECT_LT(e.time_s, 365.0 * 86400.0);
    }
}

TEST(FieldStudy, RecoversInjectedFitRate) {
    const auto device = k20();
    const auto site = environment::leadville_datacenter();
    const auto log = simulate_fleet_log(device, site, big_fleet(), 701);
    const auto analysis = analyze_fleet_log(log);

    // Expected overall SDC FIT: weather-weighted mix of sunny/rainy rates.
    environment::Site rainy = site;
    rainy.environment.weather = environment::Weather::kRainy;
    const double fit_sunny =
        device_fit(device, devices::ErrorType::kSdc, site).total();
    const double fit_rainy =
        device_fit(device, devices::ErrorType::kSdc, rainy).total();
    const double expected = 0.7 * fit_sunny + 0.3 * fit_rainy;
    EXPECT_NEAR(analysis.node_fit_sdc, expected, 0.05 * expected);
}

TEST(FieldStudy, RainSignatureRecovered) {
    // K20 at Leadville: thermal share ~28%, so rain (thermal x2) should
    // raise the daily rate by ~28%: ratio ~1.28.
    const auto log = simulate_fleet_log(k20(), environment::leadville_datacenter(),
                                        big_fleet(), 702);
    const auto analysis = analyze_fleet_log(log);
    ASSERT_GT(analysis.rainy_days, 50u);
    EXPECT_GT(analysis.rain_ratio.ratio, 1.10);
    EXPECT_LT(analysis.rain_ratio.ratio, 1.55);
    EXPECT_TRUE(analysis.rain_ratio.ci.contains(analysis.rain_ratio.ratio));
}

TEST(FieldStudy, BoronFreePartShowsNoRainSignature) {
    // Ablation: a boron-depleted device has no thermal channel, so its
    // error rate cannot depend on the weather.
    const auto depleted = k20().with_thermal_scale(0.0);
    const auto log = simulate_fleet_log(
        depleted, environment::leadville_datacenter(), big_fleet(), 703);
    const auto analysis = analyze_fleet_log(log);
    EXPECT_NEAR(analysis.rain_ratio.ratio, 1.0, 0.05);
}

TEST(FieldStudy, AltitudeSignatureAcrossSites) {
    // Two identical fleets at NYC and Leadville: the log-derived FIT ratio
    // recovers the altitude acceleration.
    const auto device = k20();
    FleetLogConfig cfg = big_fleet();
    cfg.rain_probability = 0.0;
    const auto log_nyc = simulate_fleet_log(device, environment::nyc_datacenter(),
                                            cfg, 704);
    const auto log_lead = simulate_fleet_log(
        device, environment::leadville_datacenter(), cfg, 705);
    const auto a_nyc = analyze_fleet_log(log_nyc);
    const auto a_lead = analyze_fleet_log(log_lead);
    const double ratio = a_lead.node_fit_sdc / a_nyc.node_fit_sdc;
    const double expected =
        device_fit(device, devices::ErrorType::kSdc,
                   environment::leadville_datacenter())
            .total() /
        device_fit(device, devices::ErrorType::kSdc,
                   environment::nyc_datacenter())
            .total();
    EXPECT_NEAR(ratio, expected, 0.15 * expected);
    EXPECT_GT(ratio, 8.0);
}

TEST(FieldStudy, Validation) {
    FleetLogConfig bad;
    bad.nodes = 0;
    EXPECT_THROW(simulate_fleet_log(k20(), environment::nyc_datacenter(), bad, 1),
                 RunError);
    FleetLog empty;
    EXPECT_THROW((void)analyze_fleet_log(empty), RunError);
}

}  // namespace
}  // namespace tnr::core

// The parallel execution engine and the cross-section cache: the pool's
// plumbing, the determinism contract (same seed + same thread count =>
// bitwise-identical results), cross-thread-count statistical equivalence,
// and the MaterialXsTable accuracy bound.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "beam/campaign.hpp"
#include "core/error.hpp"
#include "core/parallel/cancel.hpp"
#include "core/parallel/parallel_for.hpp"
#include "core/parallel/thread_pool.hpp"
#include "faultinject/avf.hpp"
#include "physics/materials.hpp"
#include "physics/multiregion.hpp"
#include "physics/spectrum.hpp"
#include "physics/transport.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace tnr;
using namespace tnr::physics;
using core::parallel::parallel_for_reduce;
using core::parallel::parallel_map;
using core::parallel::TaskGroup;
using core::parallel::ThreadPool;

// --- Pool plumbing ----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<int> counter{0};
    {
        TaskGroup group(ThreadPool::shared());
        for (int i = 0; i < 64; ++i) {
            group.run([&counter] { counter.fetch_add(1); });
        }
        group.wait();
    }
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, GroupRethrowsTaskException) {
    TaskGroup group(ThreadPool::shared());
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
}

// --- TaskGroup failure semantics --------------------------------------------

TEST(ThreadPool, ConcurrentFailuresRethrowExactlyOnce) {
    // Many tasks die at once; wait() surfaces exactly one exception and a
    // second wait() is clean — the group does not replay stale errors.
    TaskGroup group(ThreadPool::shared());
    std::atomic<int> survivors{0};
    for (int i = 0; i < 32; ++i) {
        group.run([i, &survivors] {
            if (i % 2 == 0) throw std::runtime_error("task died");
            survivors.fetch_add(1);
        });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_NO_THROW(group.wait());
    EXPECT_EQ(survivors.load(), 16);
}

TEST(ThreadPool, DestructorSwallowsUnobservedTaskFailure) {
    // A group destroyed without wait() must not terminate the process even
    // when a task threw: the destructor drains via wait_no_throw().
    {
        TaskGroup group(ThreadPool::shared());
        group.run([] { throw std::runtime_error("never observed"); });
    }
    SUCCEED();
}

TEST(ThreadPool, PoolStillDrainsAfterATaskDies) {
    // A task death must not poison the shared pool: workers survive and keep
    // executing subsequent batches.
    {
        TaskGroup doomed(ThreadPool::shared());
        doomed.run([] { throw std::runtime_error("boom"); });
        EXPECT_THROW(doomed.wait(), std::runtime_error);
    }
    std::atomic<int> counter{0};
    TaskGroup group(ThreadPool::shared());
    for (int i = 0; i < 64; ++i) {
        group.run([&counter] { counter.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(counter.load(), 64);
}

// --- Cooperative cancellation -----------------------------------------------

TEST(CancelToken, CheckpointThrowsCancelledRunError) {
    core::parallel::CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_NO_THROW(token.throw_if_cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    try {
        token.throw_if_cancelled();
        FAIL() << "expected RunError";
    } catch (const core::RunError& e) {
        EXPECT_EQ(e.category(), core::ErrorCategory::kCancelled);
        EXPECT_EQ(e.exit_code(), 130);
    }
    token.reset();
    EXPECT_NO_THROW(token.throw_if_cancelled());
}

TEST(CancelToken, ParallelMapStopsPickingUpNewItems) {
    // A pre-cancelled token means no item runs: every slot keeps its
    // default-constructed value, on the serial and the pooled path alike.
    core::parallel::CancelToken token;
    token.cancel();
    for (const unsigned threads : {1u, 4u}) {
        const auto out = parallel_map<int>(
            64, threads, [](std::size_t) { return 7; }, &token);
        ASSERT_EQ(out.size(), 64u);
        for (const int v : out) EXPECT_EQ(v, 0) << threads << " threads";
    }
}

TEST(CancelToken, ParallelForReduceThrowsAtTheChunkBoundary) {
    core::parallel::CancelToken token;
    token.cancel();
    stats::Rng rng(7);
    const auto body = [](std::uint64_t, std::uint64_t count, stats::Rng&) {
        return count;
    };
    const auto merge = [](std::uint64_t& acc, const std::uint64_t& p) {
        acc += p;
    };
    EXPECT_THROW(parallel_for_reduce<std::uint64_t>(1'000, 1, rng, body,
                                                    merge, &token),
                 core::RunError);
    EXPECT_THROW(parallel_for_reduce<std::uint64_t>(1'000, 4, rng, body,
                                                    merge, &token),
                 core::RunError);
}

TEST(ThreadPool, WorkerFlagIsSetOnWorkers) {
    EXPECT_FALSE(ThreadPool::on_worker_thread());
    bool on_worker = false;
    TaskGroup group(ThreadPool::shared());
    group.run([&on_worker] { on_worker = ThreadPool::on_worker_thread(); });
    group.wait();
    EXPECT_TRUE(on_worker);
}

TEST(ParallelFor, SumsMatchSerialArithmetic) {
    stats::Rng rng(7);
    const auto sum = parallel_for_reduce<std::uint64_t>(
        10'000, 4, rng,
        [](std::uint64_t begin, std::uint64_t count, stats::Rng&) {
            std::uint64_t s = 0;
            for (std::uint64_t i = begin; i < begin + count; ++i) s += i;
            return s;
        },
        [](std::uint64_t& acc, const std::uint64_t& p) { acc += p; });
    EXPECT_EQ(sum, 10'000ull * 9'999ull / 2);
}

TEST(ParallelFor, MapPreservesIndexOrder) {
    const auto out = parallel_map<std::size_t>(
        257, 4, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

// --- Transport determinism --------------------------------------------------

bool same_result(const TransportResult& a, const TransportResult& b) {
    return a.transmitted == b.transmitted && a.reflected == b.reflected &&
           a.absorbed == b.absorbed && a.lost == b.lost &&
           a.transmitted_thermal == b.transmitted_thermal &&
           a.reflected_thermal == b.reflected_thermal && a.total == b.total;
}

TEST(ParallelTransport, SameSeedSameThreadsIsBitwiseReproducible) {
    TransportConfig cfg;
    cfg.threads = 4;
    const SlabTransport slab(Material::water(), 5.0, cfg);
    const MaxwellianSpectrum spectrum(1.0, 0.0253);

    stats::Rng rng_a(42);
    stats::Rng rng_b(42);
    const auto a = slab.run_spectrum(spectrum, 20'000, rng_a);
    const auto b = slab.run_spectrum(spectrum, 20'000, rng_b);
    EXPECT_TRUE(same_result(a, b));
    EXPECT_EQ(a.total, 20'000u);
}

TEST(ParallelTransport, SerialPathMatchesHandRolledLoop) {
    // threads == 1 must consume the caller's RNG exactly like the historical
    // serial loop: transport_one per history, nothing split off.
    TransportConfig cfg;
    cfg.threads = 1;
    const SlabTransport slab(Material::polyethylene(), 2.0, cfg);

    stats::Rng rng_run(11);
    const auto run = slab.run_monoenergetic(1.0e6, 2'000, rng_run);

    stats::Rng rng_hand(11);
    std::uint64_t transmitted = 0;
    for (int i = 0; i < 2'000; ++i) {
        if (slab.transport_one(1.0e6, rng_hand) == Fate::kTransmitted) {
            ++transmitted;
        }
    }
    EXPECT_EQ(run.transmitted, transmitted);
    // Both walks drew the same variates, so the RNGs must agree afterwards.
    EXPECT_EQ(rng_run.next(), rng_hand.next());
}

TEST(ParallelTransport, ThreadCountsAreStatisticallyEquivalent) {
    const MaxwellianSpectrum spectrum(1.0, 0.0253);
    constexpr std::uint64_t kN = 40'000;

    TransportConfig serial_cfg;
    serial_cfg.threads = 1;
    const SlabTransport serial_slab(Material::water(), 3.0, serial_cfg);
    stats::Rng rng_serial(2020);
    const auto serial = serial_slab.run_spectrum(spectrum, kN, rng_serial);

    TransportConfig pool_cfg;
    pool_cfg.threads = 8;
    const SlabTransport pool_slab(Material::water(), 3.0, pool_cfg);
    stats::Rng rng_pool(2020);
    const auto pool = pool_slab.run_spectrum(spectrum, kN, rng_pool);

    // Transmission counts are binomial with a shared p; their difference is
    // within a few Poisson sigmas (6 sigma => negligible flake rate).
    const auto diff = [](std::uint64_t x, std::uint64_t y) {
        return x > y ? x - y : y - x;
    };
    const double sigma = std::sqrt(static_cast<double>(
        serial.transmitted + pool.transmitted + 1));
    EXPECT_LT(static_cast<double>(diff(serial.transmitted, pool.transmitted)),
              6.0 * sigma + 1.0);
    const double sigma_abs = std::sqrt(static_cast<double>(
        serial.absorbed + pool.absorbed + 1));
    EXPECT_LT(static_cast<double>(diff(serial.absorbed, pool.absorbed)),
              6.0 * sigma_abs + 1.0);
}

TEST(ParallelTransport, ThreadedRunsAreReproducible) {
    TransportConfig cfg;
    cfg.threads = 3;
    const SlabTransport slab(Material::water(), 2.0, cfg);
    stats::Rng rng_a(5);
    stats::Rng rng_b(5);
    const auto a = slab.run_monoenergetic(0.0253, 5'000, rng_a);
    const auto b = slab.run_monoenergetic(0.0253, 5'000, rng_b);
    EXPECT_TRUE(same_result(a, b));
    EXPECT_EQ(a.total, 5'000u);
}

TEST(ParallelTransport, LayeredRunsAreReproducibleAndMergeLayers) {
    TransportConfig cfg;
    cfg.threads = 4;
    const LayeredTransport stack(
        {Layer::slab(Material::water(), 2.0), Layer::gap(1.0),
         Layer::slab(Material::cadmium(), 0.1)},
        cfg);

    stats::Rng rng_a(99);
    stats::Rng rng_b(99);
    const auto a = stack.run_monoenergetic(1.0e6, 10'000, rng_a);
    const auto b = stack.run_monoenergetic(1.0e6, 10'000, rng_b);

    EXPECT_EQ(a.total, 10'000u);
    EXPECT_EQ(a.transmitted, b.transmitted);
    EXPECT_EQ(a.absorbed, b.absorbed);
    ASSERT_EQ(a.absorbed_by_layer.size(), 3u);
    EXPECT_EQ(a.absorbed_by_layer, b.absorbed_by_layer);
    const std::uint64_t by_layer = std::accumulate(
        a.absorbed_by_layer.begin(), a.absorbed_by_layer.end(),
        std::uint64_t{0});
    EXPECT_EQ(by_layer, a.absorbed);
}

// --- AVF determinism --------------------------------------------------------

bool same_avf(const faultinject::AvfResult& a, const faultinject::AvfResult& b) {
    return a.trials == b.trials && a.masked == b.masked && a.sdc == b.sdc &&
           a.sdc_critical == b.sdc_critical && a.due_crash == b.due_crash &&
           a.due_hang == b.due_hang && a.sdc_by_segment == b.sdc_by_segment;
}

TEST(ParallelAvf, SameSeedSameThreadsIsBitwiseReproducible) {
    const auto& entry = workloads::entry_by_name("MxM");
    const auto a = faultinject::measure_avf(entry, 300, 17, 3);
    const auto b = faultinject::measure_avf(entry, 300, 17, 3);
    EXPECT_TRUE(same_avf(a, b));
    EXPECT_EQ(a.trials, 300u);
}

TEST(ParallelAvf, SerialPathMatchesHistoricalSeedBehaviour) {
    // threads == 1 reproduces the pre-pool implementation: injector seeded
    // directly, trials walked in order.
    const auto& entry = workloads::entry_by_name("MxM");
    const auto serial = faultinject::measure_avf(entry, 200, 1, 1);
    const auto legacy_default = faultinject::measure_avf(entry, 200, 1);
    EXPECT_TRUE(same_avf(serial, legacy_default));
}

TEST(ParallelAvf, VulnerabilityTableIsThreadCountInvariant) {
    const std::vector<workloads::SuiteEntry> suite = {
        workloads::entry_by_name("MxM"), workloads::entry_by_name("BFS"),
        workloads::entry_by_name("SC")};
    const auto serial = faultinject::VulnerabilityTable::measure(suite, 120, 5, 1);
    const auto pooled = faultinject::VulnerabilityTable::measure(suite, 120, 5, 4);
    ASSERT_EQ(serial.results().size(), pooled.results().size());
    for (std::size_t i = 0; i < serial.results().size(); ++i) {
        EXPECT_TRUE(same_avf(serial.results()[i], pooled.results()[i]))
            << "entry " << i;
    }
    for (const auto& entry : suite) {
        EXPECT_DOUBLE_EQ(serial.sdc_weight(entry.name),
                         pooled.sdc_weight(entry.name));
        EXPECT_DOUBLE_EQ(serial.due_weight(entry.name),
                         pooled.due_weight(entry.name));
    }
}

// --- Campaign determinism ---------------------------------------------------

TEST(ParallelCampaign, ParallelGridIsSeedReproducibleAndThreadInvariant) {
    beam::CampaignConfig cfg;
    cfg.beam_time_per_run_s = 120.0;
    cfg.seed = 77;

    cfg.threads = 2;
    const auto a = beam::Campaign(cfg).run();
    const auto b = beam::Campaign(cfg).run();
    cfg.threads = 3;
    const auto c = beam::Campaign(cfg).run();

    ASSERT_EQ(a.ratio_rows.size(), b.ratio_rows.size());
    ASSERT_EQ(a.ratio_rows.size(), c.ratio_rows.size());
    for (std::size_t i = 0; i < a.ratio_rows.size(); ++i) {
        EXPECT_EQ(a.ratio_rows[i].device, b.ratio_rows[i].device);
        EXPECT_EQ(a.ratio_rows[i].errors_he, b.ratio_rows[i].errors_he);
        EXPECT_EQ(a.ratio_rows[i].errors_th, b.ratio_rows[i].errors_th);
        // Streams are split per device, so even the thread count drops out.
        EXPECT_EQ(a.ratio_rows[i].errors_he, c.ratio_rows[i].errors_he);
        EXPECT_EQ(a.ratio_rows[i].errors_th, c.ratio_rows[i].errors_th);
    }
    ASSERT_EQ(a.measurements.size(), b.measurements.size());
    for (std::size_t i = 0; i < a.measurements.size(); ++i) {
        EXPECT_EQ(a.measurements[i].device, b.measurements[i].device);
        EXPECT_EQ(a.measurements[i].workload, b.measurements[i].workload);
        EXPECT_EQ(a.measurements[i].errors, b.measurements[i].errors);
    }
}

// --- Cross-section cache accuracy -------------------------------------------

TEST(XsTable, MatchesExactCrossSectionsToATenthOfAPercent) {
    const std::vector<Material> materials = {
        Material::water(),       Material::concrete(),
        Material::polyethylene(), Material::cadmium(),
        Material::borated_poly(), Material::air(),
        Material::silicon(),      Material::fr4(),
        Material::aluminum()};

    // 1 meV .. 20 MeV, a prime number of points so nothing aligns with the
    // table's own grid.
    constexpr double kLo = 1.0e-3;
    constexpr double kHi = 2.0e7;
    constexpr int kPoints = 4001;
    for (const auto& material : materials) {
        const MaterialXsTable table(material);
        for (int i = 0; i < kPoints; ++i) {
            const double f = static_cast<double>(i) / (kPoints - 1);
            const double e = kLo * std::pow(kHi / kLo, f);
            const double exact_s = material.sigma_scatter(e);
            const double exact_a = material.sigma_absorb(e);
            const auto lk = table.lookup(e);
            EXPECT_NEAR(lk.sigma_scatter, exact_s, 1.0e-3 * exact_s)
                << material.name() << " sigma_s at " << e << " eV";
            EXPECT_NEAR(lk.sigma_absorb, exact_a, 1.0e-3 * exact_a)
                << material.name() << " sigma_a at " << e << " eV";
        }
    }
}

TEST(XsTable, NuclidePickTracksComponentContributions) {
    // At thermal energies hydrogen dominates water's elastic scattering;
    // the table's pick frequencies must track the exact contributions.
    const Material water = Material::water();
    const MaterialXsTable table(water);
    const double e = 0.0253;
    const auto lk = table.lookup(e);

    double h_contrib = 0.0;
    double total = 0.0;
    for (const auto& c : water.components()) {
        const double contrib = c.macro_elastic_per_cm(e);
        total += contrib;
        if (c.symbol == "H") h_contrib = contrib;
    }
    const double p_h = h_contrib / total;

    stats::Rng rng(123);
    int picks_h = 0;
    constexpr int kDraws = 100'000;
    for (int i = 0; i < kDraws; ++i) {
        if (table.sample_scatter_mass(lk, rng) == 1.0) ++picks_h;
    }
    const double observed = static_cast<double>(picks_h) / kDraws;
    EXPECT_NEAR(observed, p_h, 5.0 * std::sqrt(p_h * (1 - p_h) / kDraws));
}

TEST(XsTable, TableAndExactTransportAgreeStatistically) {
    const MaxwellianSpectrum spectrum(1.0, 0.0253);
    constexpr std::uint64_t kN = 30'000;

    TransportConfig table_cfg;
    table_cfg.use_xs_table = true;
    const SlabTransport with_table(Material::concrete(), 10.0, table_cfg);
    stats::Rng rng_a(31);
    const auto a = with_table.run_spectrum(spectrum, kN, rng_a);

    TransportConfig exact_cfg;
    exact_cfg.use_xs_table = false;
    const SlabTransport exact(Material::concrete(), 10.0, exact_cfg);
    stats::Rng rng_b(31);
    const auto b = exact.run_spectrum(spectrum, kN, rng_b);

    const auto diff = [](std::uint64_t x, std::uint64_t y) {
        return static_cast<double>(x > y ? x - y : y - x);
    };
    const double sigma = std::sqrt(static_cast<double>(a.absorbed + b.absorbed + 1));
    EXPECT_LT(diff(a.absorbed, b.absorbed), 6.0 * sigma + 1.0);
}

}  // namespace

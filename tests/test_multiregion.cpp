// Multi-region transport tests: consistency with the single-slab engine,
// vacuum gaps, layered shields (ordering matters), absorption tallies, and
// the mechanistic Tin-II geometry (water box raises the thermal absorption
// in a detector layer).

#include <gtest/gtest.h>

#include <cmath>

#include "physics/beamline_spectra.hpp"
#include "physics/multiregion.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace tnr::physics {
namespace {

constexpr std::uint64_t kNeutrons = 20000;

TEST(Layered, SingleLayerMatchesSlabTransport) {
    const double e = 2.0e6;
    stats::Rng rng1(500);
    stats::Rng rng2(500);
    const SlabTransport slab(Material::water(), 10.0);
    const LayeredTransport layered({Layer::slab(Material::water(), 10.0)});
    const auto rs = slab.run_monoenergetic(e, kNeutrons, rng1);
    const auto rl = layered.run_monoenergetic(e, kNeutrons, rng2);
    EXPECT_NEAR(rl.transmission(), rs.transmission(), 0.02);
    EXPECT_NEAR(rl.thermal_albedo(), rs.thermal_albedo(), 0.02);
}

TEST(Layered, VacuumGapIsTransparent) {
    const LayeredTransport layered({Layer::gap(100.0)});
    stats::Rng rng(501);
    const auto r = layered.run_monoenergetic(0.0253, kNeutrons, rng);
    EXPECT_EQ(r.transmitted, kNeutrons);
}

TEST(Layered, GapBetweenSlabsPreservesPhysics) {
    // [water 5 | gap 50 | water 5] transmits like... less than a single
    // 5 cm slab, more than a 10 cm slab is NOT guaranteed in 1-D with
    // backscatter; assert conservation + monotonicity vs the thicker slab.
    stats::Rng rng(502);
    const LayeredTransport gap_stack({Layer::slab(Material::water(), 5.0),
                                      Layer::gap(50.0),
                                      Layer::slab(Material::water(), 5.0)});
    const auto r = gap_stack.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_EQ(r.transmitted + r.reflected + r.absorbed + r.lost, r.total);
    const LayeredTransport thin({Layer::slab(Material::water(), 5.0)});
    const auto r_thin = thin.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_LT(r.transmission(), r_thin.transmission());
}

TEST(Layered, AbsorptionTalliesPerLayer) {
    // Thermal beam onto [poly 2 | cadmium 0.05]: the poly scatters, the Cd
    // eats — absorption should concentrate in the Cd layer relative to its
    // thickness.
    stats::Rng rng(503);
    const LayeredTransport stack({Layer::slab(Material::polyethylene(), 2.0),
                                  Layer::slab(Material::cadmium(), 0.05)});
    const auto r = stack.run_monoenergetic(kThermalReferenceEv, kNeutrons, rng);
    ASSERT_EQ(r.absorbed_by_layer.size(), 2u);
    EXPECT_GT(r.absorbed_by_layer[1], r.absorbed_by_layer[0]);
}

TEST(Layered, ShieldOrderingMatters) {
    // Fast beam. [poly 5 | Cd 0.05] moderates then absorbs the thermals in
    // the Cd; [Cd 0.05 | poly 5] passes fast neutrons through the Cd first,
    // then moderates — thermals leak out of the back. Thermal transmission
    // must be lower for the moderate-then-absorb ordering.
    stats::Rng rng(504);
    const LayeredTransport poly_then_cd(
        {Layer::slab(Material::polyethylene(), 5.0),
         Layer::slab(Material::cadmium(), 0.05)});
    const LayeredTransport cd_then_poly(
        {Layer::slab(Material::cadmium(), 0.05),
         Layer::slab(Material::polyethylene(), 5.0)});
    const auto r1 = poly_then_cd.run_monoenergetic(2.0e6, kNeutrons, rng);
    const auto r2 = cd_then_poly.run_monoenergetic(2.0e6, kNeutrons, rng);
    EXPECT_LT(r1.thermal_transmission(), 0.5 * r2.thermal_transmission());
}

TEST(Layered, SpectrumRunConserves) {
    stats::Rng rng(505);
    const auto spectrum = chipir_spectrum();
    const LayeredTransport stack({Layer::slab(Material::concrete(), 10.0),
                                  Layer::gap(5.0),
                                  Layer::slab(Material::water(), 5.0)});
    const auto r = stack.run_spectrum(*spectrum, 5000, rng);
    EXPECT_EQ(r.total, 5000u);
    EXPECT_EQ(r.transmitted + r.reflected + r.absorbed + r.lost, r.total);
}

TEST(Layered, Validation) {
    EXPECT_THROW(LayeredTransport({}), std::invalid_argument);
    EXPECT_THROW(LayeredTransport({Layer::slab(Material::water(), 0.0)}),
                 std::invalid_argument);
}

TEST(Layered, ImplicitCaptureMatchesAnalog) {
    // Implicit-capture weighted loop vs the analog walk on a stack with a
    // gap: all three estimator channels agree within 3 combined sigmas, and
    // the per-layer capture weight concentrates where the analog counts do.
    TransportConfig cfg;
    cfg.mode = TransportMode::kImplicitCapture;
    const std::vector<Layer> layers = {
        Layer::slab(Material::polyethylene(), 2.0), Layer::gap(5.0),
        Layer::slab(Material::cadmium(), 0.05)};
    const LayeredTransport analog(layers);
    const LayeredTransport implicit(layers, cfg);
    stats::Rng rng_a(610);
    stats::Rng rng_i(610);
    const auto a = analog.run_monoenergetic(kThermalReferenceEv, 40000, rng_a);
    const auto i = implicit.run_monoenergetic(kThermalReferenceEv, 40000,
                                              rng_i);
    EXPECT_EQ(i.total, 40000u);
    const auto close = [](const EstimatorStats& x, const EstimatorStats& y) {
        EXPECT_LE(std::abs(x.mean - y.mean),
                  3.0 * std::sqrt(x.variance + y.variance) + 1e-4);
    };
    close(a.transmission_estimate(), i.transmission_estimate());
    close(a.reflection_estimate(), i.reflection_estimate());
    close(a.absorption_estimate(), i.absorption_estimate());
    ASSERT_EQ(i.absorbed_w_by_layer.size(), 3u);
    EXPECT_GT(i.absorbed_w_by_layer[2], i.absorbed_w_by_layer[0]);
    EXPECT_DOUBLE_EQ(i.absorbed_w_by_layer[1], 0.0);  // the gap captures nothing.
}

// --- Mechanistic Tin-II geometry ---------------------------------------------------

/// Absorptions in a thin borated "detector" layer standing over a concrete
/// floor, with and without a water box above — the Fig. 6 experiment as a
/// transport problem rather than an assumed modifier. The sky delivers fast
/// + epithermal neutrons only: the ground-level *thermal* field is locally
/// produced, here by the concrete floor's albedo (and, with the box in
/// place, by moderation in the water and reflection of the floor's upward
/// thermal leakage).
double detector_absorptions(bool with_water, std::uint64_t seed) {
    std::vector<Layer> layers;
    if (with_water) layers.push_back(Layer::slab(Material::water(), 5.08));
    layers.push_back(Layer::gap(30.0));
    layers.push_back(Layer::slab(Material::borated_poly(), 0.3));  // detector.
    layers.push_back(Layer::gap(10.0));
    layers.push_back(Layer::slab(Material::concrete(), 40.0));  // floor.
    const std::size_t detector_layer = with_water ? 2 : 1;

    const LayeredTransport stack(std::move(layers));
    stats::Rng rng(seed);
    std::vector<std::shared_ptr<const Spectrum>> parts;
    const AtmosphericSpectrum reference(1.0);
    parts.push_back(std::make_shared<AtmosphericSpectrum>(
        (13.0 / 3600.0) / reference.high_energy_flux()));
    parts.push_back(std::make_shared<EpithermalSpectrum>(4.0 / 3600.0,
                                                         kThermalCutoffEv,
                                                         1.0e6));
    const CompositeSpectrum sky("ground-level sky", std::move(parts));
    const auto r = stack.run_spectrum(sky, 60000, rng);
    return static_cast<double>(r.absorbed_by_layer[detector_layer]);
}

TEST(Layered, WaterBoxRaisesDetectorThermalCount) {
    const double without = detector_absorptions(false, 600);
    const double with = detector_absorptions(true, 600);
    ASSERT_GT(without, 500.0);
    const double boost = with / without;
    // Full 1-D coverage over-weights the box's solid angle; the raw boost
    // lands in the tens of percent (paper's measured value: +24% with a
    // box covering part of the detector's acceptance).
    EXPECT_GT(boost, 1.2);
    EXPECT_LT(boost, 2.0);
}

TEST(Layered, SolidAngleCorrectedBoostNearPaperValue) {
    const double without = detector_absorptions(false, 601);
    const double with = detector_absorptions(true, 601);
    const double raw_boost = with / without - 1.0;
    // A box over the detector intercepts roughly the upper hemisphere's
    // core; with fractional coverage f the observed step is f * raw.
    const double coverage = 0.45;
    const double corrected = coverage * raw_boost;
    EXPECT_GT(corrected, 0.10);
    EXPECT_LT(corrected, 0.45);
}

// --- SIMD dispatch: scalar bitwise contract and AVX2 equivalence -------------

std::vector<Layer> simd_test_stack() {
    return {Layer::slab(Material::water(), 2.0), Layer::gap(1.0),
            Layer::slab(Material::cadmium(), 0.05)};
}

TEST(LayeredSimd, ForcedScalarIsBitwiseGolden) {
    // Golden tallies captured from the pre-SIMD weighted walk (threads == 1):
    // forcing the scalar tier through the dispatch layer must reproduce them
    // bit for bit, per-layer banks included.
    TransportConfig cfg;
    cfg.mode = TransportMode::kImplicitCapture;
    cfg.simd = core::simd::Policy::kForceScalar;
    const LayeredTransport lt(simd_test_stack(), cfg);
    stats::Rng rng(4242);
    const LayeredResult r = lt.run_monoenergetic(1000.0, kNeutrons, rng);
    EXPECT_EQ(r.transmitted, 4892u);
    EXPECT_EQ(r.reflected, 12425u);
    EXPECT_EQ(r.absorbed, 2683u);
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.collisions, 126765u);
    EXPECT_EQ(r.transmitted_w, 0x1.30815dcfc9efap+12);
    EXPECT_EQ(r.reflected_w, 0x1.7e1a1623caa29p+13);
    EXPECT_EQ(r.absorbed_w, 0x1.6a33de3ecb51ep+11);
    EXPECT_EQ(r.transmitted_w2, 0x1.2f896f02ed402p+12);
    EXPECT_EQ(r.reflected_w2, 0x1.78cc08006d92cp+13);
    EXPECT_EQ(r.absorbed_w2, 0x1.53c692f8b2399p+11);
    ASSERT_EQ(r.absorbed_w_by_layer.size(), 3u);
    EXPECT_EQ(r.absorbed_w_by_layer[0], 0x1.803518e44b44fp+8);
    EXPECT_EQ(r.absorbed_w_by_layer[1], 0.0);
    EXPECT_EQ(r.absorbed_w_by_layer[2], 0x1.3a2d3b2241cd7p+11);

    // The analog walk bypasses the batched path entirely: bitwise stable
    // under any policy.
    TransportConfig acfg;
    acfg.simd = core::simd::Policy::kAuto;
    const LayeredTransport alt(simd_test_stack(), acfg);
    stats::Rng arng(4242);
    const LayeredResult ar = alt.run_monoenergetic(1000.0, kNeutrons, arng);
    EXPECT_EQ(ar.transmitted, 4989u);
    EXPECT_EQ(ar.reflected, 12164u);
    EXPECT_EQ(ar.absorbed, 2847u);
    EXPECT_EQ(ar.lost, 0u);
    EXPECT_EQ(ar.collisions, 121222u);
    ASSERT_EQ(ar.absorbed_by_layer.size(), 3u);
    EXPECT_EQ(ar.absorbed_by_layer[0], 408u);
    EXPECT_EQ(ar.absorbed_by_layer[1], 0u);
    EXPECT_EQ(ar.absorbed_by_layer[2], 2439u);
}

TEST(LayeredSimd, Avx2MatchesScalarWithinThreeSigma) {
    if (core::simd::resolve(core::simd::Policy::kForceAvx2) !=
        core::simd::Tier::kAvx2) {
        GTEST_SKIP() << "AVX2 tier unavailable";
    }
    const auto run = [](core::simd::Policy policy) {
        TransportConfig cfg;
        cfg.mode = TransportMode::kImplicitCapture;
        cfg.simd = policy;
        const LayeredTransport lt(simd_test_stack(), cfg);
        stats::Rng rng(4242);
        return lt.run_monoenergetic(1000.0, 2 * kNeutrons, rng);
    };
    const LayeredResult scalar = run(core::simd::Policy::kForceScalar);
    const LayeredResult avx2 = run(core::simd::Policy::kForceAvx2);
    EXPECT_EQ(scalar.total, avx2.total);
    const auto close = [](const EstimatorStats& a, const EstimatorStats& b,
                          const char* ch) {
        const double se = std::sqrt(a.variance + b.variance);
        EXPECT_LE(std::abs(a.mean - b.mean), 3.0 * se + 1e-12) << ch;
    };
    close(scalar.transmission_estimate(), avx2.transmission_estimate(),
          "transmission");
    close(scalar.reflection_estimate(), avx2.reflection_estimate(),
          "reflection");
    close(scalar.absorption_estimate(), avx2.absorption_estimate(),
          "absorption");
    // Per-layer capture banks: same weight, loose statistical bound (no
    // per-layer variance is tallied, so compare relative to the bank size).
    ASSERT_EQ(scalar.absorbed_w_by_layer.size(),
              avx2.absorbed_w_by_layer.size());
    for (std::size_t i = 0; i < scalar.absorbed_w_by_layer.size(); ++i) {
        const double s = scalar.absorbed_w_by_layer[i];
        const double v = avx2.absorbed_w_by_layer[i];
        EXPECT_NEAR(v, s, 0.05 * std::max({s, v, 1.0})) << "layer " << i;
    }
}

}  // namespace
}  // namespace tnr::physics

// CLI tests: every subcommand runs, produces the expected rows, honors
// flags, and fails cleanly on bad input.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "core/obs/json.hpp"

namespace tnr::cli {
namespace {

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsShowsUsageAndFails) {
    const auto r = run_cli({});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
    const auto r = run_cli({"--help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
    const auto r = run_cli({"frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, VersionPrintsBuildId) {
    const auto r = run_cli({"--version"});
    EXPECT_EQ(r.code, 0);
    EXPECT_EQ(r.out.rfind("tnr ", 0), 0u) << r.out;
    // Something follows the tool name (a git describe or the fallback).
    EXPECT_GT(r.out.size(), std::string("tnr \n").size());
    EXPECT_TRUE(r.err.empty());
    // The word form is an alias.
    EXPECT_EQ(run_cli({"version"}).out, r.out);
}

TEST(Cli, UsageListsServeCommand) {
    const auto r = run_cli({"--help"});
    EXPECT_NE(r.out.find("serve [--max-inflight N] [--cache-capacity N] "
                         "[--socket PATH]"),
              std::string::npos);
    EXPECT_NE(r.out.find("--version"), std::string::npos);
}

TEST(Cli, ServeRejectsUnknownFlag) {
    const auto r = run_cli({"serve", "--frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown flag: --frobnicate"), std::string::npos);
}

TEST(Cli, ServeRejectsFlagFromAnotherCommand) {
    // --hours belongs to campaign; serve takes its parameters per request.
    const auto r = run_cli({"serve", "--hours", "4"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown flag: --hours"), std::string::npos);
}

TEST(Cli, ListDevices) {
    const auto r = run_cli({"list-devices"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Intel Xeon Phi"), std::string::npos);
    EXPECT_NE(r.out.find("10.14"), std::string::npos);
    EXPECT_NE(r.out.find("Xilinx Zynq-7000 FPGA"), std::string::npos);
}

TEST(Cli, FitDefaultDevice) {
    const auto r = run_cli({"fit", "--site", "leadville"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("NVIDIA K20"), std::string::npos);
    EXPECT_NE(r.out.find("SDC"), std::string::npos);
    EXPECT_NE(r.out.find("DUE"), std::string::npos);
}

TEST(Cli, FitRainyDiffersFromSunny) {
    const auto sunny = run_cli({"fit", "--site", "nyc"});
    const auto rainy = run_cli({"fit", "--site", "nyc", "--rainy"});
    EXPECT_EQ(sunny.code, 0);
    EXPECT_EQ(rainy.code, 0);
    EXPECT_NE(sunny.out, rainy.out);
}

TEST(Cli, FitUnknownDeviceFailsCleanly) {
    const auto r = run_cli({"fit", "--device", "TPU"});
    EXPECT_EQ(r.code, 3);
    EXPECT_NE(r.err.find("TPU"), std::string::npos);
}

TEST(Cli, FitUnknownSiteIsUsageError) {
    const auto r = run_cli({"fit", "--site", "atlantis"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown site"), std::string::npos);
}

TEST(Cli, CsvFlagSwitchesFormat) {
    const auto table = run_cli({"fit", "--site", "nyc"});
    const auto csv = run_cli({"fit", "--site", "nyc", "--csv"});
    EXPECT_EQ(csv.code, 0);
    EXPECT_NE(csv.out.find("device,site,type"), std::string::npos);
    EXPECT_EQ(table.out.find("device,site,type"), std::string::npos);
}

TEST(Cli, CampaignShortRun) {
    const auto r = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("NVIDIA TitanX"), std::string::npos);
    EXPECT_NE(r.out.find("ratio"), std::string::npos);
}

TEST(Cli, CampaignDeterministicForSeed) {
    const auto a = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    const auto b = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    EXPECT_EQ(a.out, b.out);
}

TEST(Cli, DetectorFindsStep) {
    const auto r = run_cli({"detector", "--days", "4", "--water-days", "3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("relative step"), std::string::npos);
}

TEST(Cli, CheckpointPlan) {
    const auto r = run_cli({"checkpoint", "--nodes", "1000"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("optimal interval"), std::string::npos);
    EXPECT_NE(r.out.find("MTBF"), std::string::npos);
}

TEST(Cli, Top10Table) {
    const auto r = run_cli({"top10"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Summit"), std::string::npos);
    EXPECT_NE(r.out.find("Trinity"), std::string::npos);
}

TEST(Cli, ReportIsMarkdown) {
    const auto r = run_cli({"report", "--hours", "0.5", "--seed", "3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("# Thermal Neutron Reliability Study"),
              std::string::npos);
    EXPECT_NE(r.out.find("## Measured cross sections"), std::string::npos);
    EXPECT_NE(r.out.find("## FIT decomposition by site"), std::string::npos);
    EXPECT_NE(r.out.find("Top-10 supercomputer"), std::string::npos);
    // Markdown table delimiters present.
    EXPECT_NE(r.out.find("|---|"), std::string::npos);
    // No per-code appendix unless asked.
    EXPECT_EQ(r.out.find("Appendix"), std::string::npos);
}

TEST(Cli, ReportPerCodeAppendix) {
    const auto r =
        run_cli({"report", "--hours", "0.2", "--seed", "3", "--per-code"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Appendix: per-code measurements"),
              std::string::npos);
    EXPECT_NE(r.out.find("MNIST-dp"), std::string::npos);
}

TEST(Cli, BadFlagValueFails) {
    const auto r = run_cli({"campaign", "--hours", "not-a-number"});
    EXPECT_NE(r.code, 0);
}

TEST(Cli, StrayPositionalArgumentRejected) {
    const auto r = run_cli({"fit", "leadville"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unexpected argument"), std::string::npos);
}

TEST(Cli, UnknownFlagRejected) {
    const auto r = run_cli({"campaign", "--frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown flag: --frobnicate"), std::string::npos);
}

TEST(Cli, FlagFromAnotherCommandRejected) {
    // --days belongs to detector, not campaign.
    const auto r = run_cli({"campaign", "--days", "4"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("unknown flag: --days"), std::string::npos);
}

TEST(Cli, MissingFlagValueRejected) {
    const auto r = run_cli({"campaign", "--hours"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("requires a value"), std::string::npos);
}

TEST(Cli, EqualsSyntaxAccepted) {
    const auto spaced = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    const auto equals = run_cli({"campaign", "--hours=0.2", "--seed=7"});
    EXPECT_EQ(equals.code, 0);
    EXPECT_EQ(equals.out, spaced.out);
}

TEST(Cli, QuietAndVerboseAreMutuallyExclusive) {
    const auto r = run_cli({"list-devices", "--quiet", "--verbose"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("mutually exclusive"), std::string::npos);
}

// --- Telemetry sinks -------------------------------------------------------

std::string slurp(const std::filesystem::path& path) {
    std::ifstream file(path);
    std::ostringstream ss;
    ss << file.rdbuf();
    return ss.str();
}

TEST(Cli, MetricsOutWritesValidJsonWithoutChangingStdout) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto metrics_path = dir / "tnr_test_metrics.json";
    const auto plain = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    const auto with_sink =
        run_cli({"campaign", "--hours", "0.2", "--seed", "7", "--metrics-out",
                 metrics_path.string()});
    EXPECT_EQ(with_sink.code, 0);
    // Telemetry must not perturb the results channel.
    EXPECT_EQ(with_sink.out, plain.out);

    const auto doc = core::obs::json::parse(slurp(metrics_path));
    ASSERT_TRUE(doc.has_value());
    const auto* manifest = doc->find("manifest");
    ASSERT_NE(manifest, nullptr);
    EXPECT_DOUBLE_EQ(manifest->find("seed")->num, 7.0);
    const auto* metrics = doc->find("metrics");
    ASSERT_NE(metrics, nullptr);
    const auto* counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    const auto* devices = counters->find("campaign.devices");
    ASSERT_NE(devices, nullptr);
    EXPECT_GE(devices->num, 8.0);
    const auto* gauges = metrics->find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(gauges->find("transport.xs_table_hit_rate"), nullptr);
    std::filesystem::remove(metrics_path);
}

TEST(Cli, TraceOutWritesValidChromeTrace) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto trace_path = dir / "tnr_test_trace.json";
    const auto r = run_cli({"campaign", "--hours", "0.2", "--seed", "7",
                            "--trace-out", trace_path.string()});
    EXPECT_EQ(r.code, 0);
    const auto doc = core::obs::json::parse(slurp(trace_path));
    ASSERT_TRUE(doc.has_value());
    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_FALSE(events->array.empty());
    bool saw_campaign = false;
    bool saw_device = false;
    for (const auto& event : events->array) {
        const auto* name = event.find("name");
        ASSERT_NE(name, nullptr);
        if (name->str == "campaign") saw_campaign = true;
        if (name->str.rfind("device:", 0) == 0) saw_device = true;
        EXPECT_EQ(event.find("ph")->str, "X");
    }
    EXPECT_TRUE(saw_campaign);
    EXPECT_TRUE(saw_device);
    std::filesystem::remove(trace_path);
}

TEST(Cli, ManifestOutWritesStandaloneManifest) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto manifest_path = dir / "tnr_test_manifest.json";
    const auto r = run_cli({"detector", "--days", "2", "--manifest-out",
                            manifest_path.string()});
    EXPECT_EQ(r.code, 0);
    const auto doc = core::obs::json::parse(slurp(manifest_path));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("tool")->str, "tnr");
    // detector's default seed is the historical 420.
    EXPECT_DOUBLE_EQ(doc->find("seed")->num, 420.0);
    std::filesystem::remove(manifest_path);
}

TEST(Cli, UnwritableSinkIsExecutionError) {
    const auto r = run_cli({"list-devices", "--metrics-out",
                            "/nonexistent-dir/metrics.json"});
    EXPECT_EQ(r.code, 3);
    EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

// --- Campaign journal and resume ------------------------------------------

TEST(Cli, JournalWritesJsonLines) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto journal_path = dir / "tnr_test_journal.jsonl";
    std::filesystem::remove(journal_path);
    const auto r = run_cli({"campaign", "--hours", "0.2", "--seed", "7",
                            "--journal", journal_path.string()});
    EXPECT_EQ(r.code, 0);
    std::ifstream file(journal_path);
    std::string line;
    std::size_t headers = 0;
    std::size_t devices = 0;
    while (std::getline(file, line)) {
        const auto doc = core::obs::json::parse(line);
        ASSERT_TRUE(doc.has_value()) << line;
        const auto* kind = doc->find("kind");
        ASSERT_NE(kind, nullptr) << line;
        if (kind->str == "header") ++headers;
        if (kind->str == "device") ++devices;
    }
    EXPECT_EQ(headers, 1u);
    EXPECT_GE(devices, 8u);
    std::filesystem::remove(journal_path);
}

TEST(Cli, ResumeReproducesUninterruptedRunBitwise) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto ref_path = dir / "tnr_test_ref_journal.jsonl";
    const auto partial_path = dir / "tnr_test_partial_journal.jsonl";
    std::filesystem::remove(ref_path);
    std::filesystem::remove(partial_path);

    const auto reference = run_cli({"campaign", "--hours", "0.2", "--seed",
                                    "11", "--journal", ref_path.string()});
    ASSERT_EQ(reference.code, 0);

    // Simulate an interrupted run: keep the header plus the first three
    // completed devices, as if the process died mid-campaign.
    {
        std::ifstream in(ref_path);
        std::ofstream out(partial_path);
        std::string line;
        std::size_t kept = 0;
        while (kept < 4 && std::getline(in, line)) {
            out << line << '\n';
            ++kept;
        }
    }

    const auto resumed =
        run_cli({"campaign", "--hours", "0.2", "--seed", "11", "--journal",
                 partial_path.string(), "--resume"});
    EXPECT_EQ(resumed.code, 0);
    EXPECT_EQ(resumed.out, reference.out);

    // After the resumed run the partial journal holds the full roster again.
    std::size_t ref_lines = 0;
    std::size_t resumed_lines = 0;
    std::string line;
    for (std::ifstream in(ref_path); std::getline(in, line);) ++ref_lines;
    for (std::ifstream in(partial_path); std::getline(in, line);)
        ++resumed_lines;
    EXPECT_EQ(ref_lines, resumed_lines);

    std::filesystem::remove(ref_path);
    std::filesystem::remove(partial_path);
}

TEST(Cli, ResumeSeedMismatchIsConfigError) {
    const auto dir = std::filesystem::temp_directory_path();
    const auto journal_path = dir / "tnr_test_mismatch_journal.jsonl";
    std::filesystem::remove(journal_path);
    const auto first = run_cli({"campaign", "--hours", "0.2", "--seed", "7",
                                "--journal", journal_path.string()});
    ASSERT_EQ(first.code, 0);
    const auto r = run_cli({"campaign", "--hours", "0.2", "--seed", "8",
                            "--journal", journal_path.string(), "--resume"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("seed"), std::string::npos);
    std::filesystem::remove(journal_path);
}

TEST(Cli, ResumeRequiresJournal) {
    const auto r = run_cli({"campaign", "--resume"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("journal"), std::string::npos);
}

// --- The shared transport knobs (--mode / --batch-size / --simd) -----------

TEST(Cli, TransmissionRejectsUnknownModeValue) {
    const auto r = run_cli({"transmission", "--mode", "turbo"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("transmission: mode must be analog|implicit"),
              std::string::npos);
}

TEST(Cli, TransmissionRejectsUnknownSimdValue) {
    const auto r = run_cli({"transmission", "--simd", "frobnicate"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("transmission: simd must be auto|avx2|scalar|off"),
              std::string::npos);
}

TEST(Cli, TransmissionRejectsOversizedBatch) {
    const auto r = run_cli({"transmission", "--batch-size", "99999999"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("transmission: batch-size must be between"),
              std::string::npos);
}

TEST(Cli, CampaignRejectsUnknownModeAndSimdValues) {
    // The campaign accepts the same knob vocabulary, validated by the same
    // code, so a typo fails fast before any device runs.
    const auto mode = run_cli({"campaign", "--mode", "quantum"});
    EXPECT_EQ(mode.code, 2);
    EXPECT_NE(mode.err.find("campaign: mode must be analog|implicit"),
              std::string::npos);
    const auto simd = run_cli({"campaign", "--simd", "banana"});
    EXPECT_EQ(simd.code, 2);
    EXPECT_NE(simd.err.find("campaign: simd must be auto|avx2|scalar|off"),
              std::string::npos);
}

TEST(Cli, TransmissionSimdScalarAliasesAgreeByteForByte) {
    // "scalar" and "off" force the same tier; the forced-scalar implicit
    // kernel is the bitwise reference, so both spellings must print the
    // same bytes (and valid knobs must not be rejected).
    const std::vector<std::string> base = {
        "transmission", "--histories", "5000", "--mode",
        "implicit",     "--seed",      "21"};
    auto with = [&base](const std::string& simd) {
        auto args = base;
        args.insert(args.end(), {"--simd", simd});
        return run_cli(args);
    };
    const auto scalar = with("scalar");
    const auto off = with("off");
    ASSERT_EQ(scalar.code, 0) << scalar.err;
    ASSERT_EQ(off.code, 0) << off.err;
    EXPECT_EQ(scalar.out, off.out);
    // --batch-size is accepted and only changes throughput, not validity.
    auto batched = base;
    batched.insert(batched.end(), {"--batch-size", "128"});
    EXPECT_EQ(run_cli(batched).code, 0);
}

}  // namespace
}  // namespace tnr::cli

// CLI tests: every subcommand runs, produces the expected rows, honors
// flags, and fails cleanly on bad input.

#include <gtest/gtest.h>

#include <sstream>

#include "cli/cli.hpp"

namespace tnr::cli {
namespace {

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = run(args, out, err);
    return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsShowsUsageAndFails) {
    const auto r = run_cli({});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
    const auto r = run_cli({"--help"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("commands:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
    const auto r = run_cli({"frobnicate"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ListDevices) {
    const auto r = run_cli({"list-devices"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Intel Xeon Phi"), std::string::npos);
    EXPECT_NE(r.out.find("10.14"), std::string::npos);
    EXPECT_NE(r.out.find("Xilinx Zynq-7000 FPGA"), std::string::npos);
}

TEST(Cli, FitDefaultDevice) {
    const auto r = run_cli({"fit", "--site", "leadville"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("NVIDIA K20"), std::string::npos);
    EXPECT_NE(r.out.find("SDC"), std::string::npos);
    EXPECT_NE(r.out.find("DUE"), std::string::npos);
}

TEST(Cli, FitRainyDiffersFromSunny) {
    const auto sunny = run_cli({"fit", "--site", "nyc"});
    const auto rainy = run_cli({"fit", "--site", "nyc", "--rainy"});
    EXPECT_EQ(sunny.code, 0);
    EXPECT_EQ(rainy.code, 0);
    EXPECT_NE(sunny.out, rainy.out);
}

TEST(Cli, FitUnknownDeviceFailsCleanly) {
    const auto r = run_cli({"fit", "--device", "TPU"});
    EXPECT_EQ(r.code, 2);
    EXPECT_NE(r.err.find("TPU"), std::string::npos);
}

TEST(Cli, FitUnknownSiteIsUsageError) {
    const auto r = run_cli({"fit", "--site", "atlantis"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unknown site"), std::string::npos);
}

TEST(Cli, CsvFlagSwitchesFormat) {
    const auto table = run_cli({"fit", "--site", "nyc"});
    const auto csv = run_cli({"fit", "--site", "nyc", "--csv"});
    EXPECT_EQ(csv.code, 0);
    EXPECT_NE(csv.out.find("device,site,type"), std::string::npos);
    EXPECT_EQ(table.out.find("device,site,type"), std::string::npos);
}

TEST(Cli, CampaignShortRun) {
    const auto r = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("NVIDIA TitanX"), std::string::npos);
    EXPECT_NE(r.out.find("ratio"), std::string::npos);
}

TEST(Cli, CampaignDeterministicForSeed) {
    const auto a = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    const auto b = run_cli({"campaign", "--hours", "0.2", "--seed", "7"});
    EXPECT_EQ(a.out, b.out);
}

TEST(Cli, DetectorFindsStep) {
    const auto r = run_cli({"detector", "--days", "4", "--water-days", "3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("relative step"), std::string::npos);
}

TEST(Cli, CheckpointPlan) {
    const auto r = run_cli({"checkpoint", "--nodes", "1000"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("optimal interval"), std::string::npos);
    EXPECT_NE(r.out.find("MTBF"), std::string::npos);
}

TEST(Cli, Top10Table) {
    const auto r = run_cli({"top10"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Summit"), std::string::npos);
    EXPECT_NE(r.out.find("Trinity"), std::string::npos);
}

TEST(Cli, ReportIsMarkdown) {
    const auto r = run_cli({"report", "--hours", "0.5", "--seed", "3"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("# Thermal Neutron Reliability Study"),
              std::string::npos);
    EXPECT_NE(r.out.find("## Measured cross sections"), std::string::npos);
    EXPECT_NE(r.out.find("## FIT decomposition by site"), std::string::npos);
    EXPECT_NE(r.out.find("Top-10 supercomputer"), std::string::npos);
    // Markdown table delimiters present.
    EXPECT_NE(r.out.find("|---|"), std::string::npos);
    // No per-code appendix unless asked.
    EXPECT_EQ(r.out.find("Appendix"), std::string::npos);
}

TEST(Cli, ReportPerCodeAppendix) {
    const auto r =
        run_cli({"report", "--hours", "0.2", "--seed", "3", "--per-code"});
    EXPECT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("Appendix: per-code measurements"),
              std::string::npos);
    EXPECT_NE(r.out.find("MNIST-dp"), std::string::npos);
}

TEST(Cli, BadFlagValueFails) {
    const auto r = run_cli({"campaign", "--hours", "not-a-number"});
    EXPECT_NE(r.code, 0);
}

TEST(Cli, StrayPositionalArgumentRejected) {
    const auto r = run_cli({"fit", "leadville"});
    EXPECT_EQ(r.code, 1);
    EXPECT_NE(r.err.find("unexpected argument"), std::string::npos);
}

}  // namespace
}  // namespace tnr::cli

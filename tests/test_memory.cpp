// Tests for the DRAM substrate: array fault mechanics, the Poisson fault
// process, and the correct-loop tester's classification fidelity against
// ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "memory/correct_loop.hpp"
#include "memory/dram_array.hpp"
#include "memory/dram_config.hpp"
#include "memory/fault_process.hpp"
#include "physics/beamline_spectra.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace tnr::memory {
namespace {

TEST(DramConfig, PaperModuleParameters) {
    const DramConfig d3 = ddr3_module();
    const DramConfig d4 = ddr4_module();
    EXPECT_DOUBLE_EQ(d3.capacity_gbit, 32.0);
    EXPECT_DOUBLE_EQ(d4.capacity_gbit, 64.0);
    EXPECT_DOUBLE_EQ(d3.voltage, 1.5);
    EXPECT_DOUBLE_EQ(d4.voltage, 1.2);
    EXPECT_EQ(d3.dominant_direction, FlipDirection::kOneToZero);
    EXPECT_EQ(d4.dominant_direction, FlipDirection::kZeroToOne);
}

TEST(DramConfig, Ddr4OrderOfMagnitudeLessSensitive) {
    const double ratio = ddr3_module().sigma_total_per_gbit() /
                         ddr4_module().sigma_total_per_gbit();
    EXPECT_GT(ratio, 7.0);
    EXPECT_LT(ratio, 13.0);
}

TEST(DramConfig, PermanentFractions) {
    // DDR3: <30% permanent; DDR4: >50% permanent (of per-Gbit sigma).
    const DramConfig d3 = ddr3_module();
    const DramConfig d4 = ddr4_module();
    const auto frac = [](const DramConfig& c) {
        return c.sigma_per_gbit[static_cast<std::size_t>(
                   FaultCategory::kPermanent)] /
               c.sigma_total_per_gbit();
    };
    EXPECT_LT(frac(d3), 0.30);
    EXPECT_GT(frac(d4), 0.50);
}

TEST(DramConfig, CategoryNames) {
    EXPECT_STREQ(to_string(FaultCategory::kTransient), "transient");
    EXPECT_STREQ(to_string(FaultCategory::kSefi), "SEFI");
    EXPECT_STREQ(to_string(FlipDirection::kOneToZero), "1->0");
}

TEST(DramConfig, SramIsSymmetricAndTransientDominated) {
    const DramConfig sram = sram_module();
    EXPECT_DOUBLE_EQ(sram.dominant_fraction, 0.5);
    const double transient_share =
        sram.sigma_per_gbit[static_cast<std::size_t>(FaultCategory::kTransient)] /
        sram.sigma_total_per_gbit();
    EXPECT_GT(transient_share, 0.9);
    // SRAM per-Gbit sensitivity far above DRAM (the reason caches need ECC).
    EXPECT_GT(sram.sigma_total_per_gbit(),
              10.0 * ddr3_module().sigma_total_per_gbit());
}

TEST(CorrectLoopSram, SymmetricFlipsObserved) {
    // Both patterns merged: SRAM shows ~50/50 flip directions (vs >95%
    // asymmetry on DDR) — the signature the paper uses to infer
    // complementary cell logic on DDR parts.
    CorrectLoopConfig ones;
    ones.array_cells = 1u << 18;
    ones.pass_interval_s = 5.0;
    CorrectLoopConfig zeros = ones;
    zeros.pattern_ones = false;
    // SRAM module sigma is large; a gentle beam keeps events per pass low.
    CorrectLoopTester t1(sram_module(), ones, 5.0e7, 170);
    CorrectLoopTester t0(sram_module(), zeros, 5.0e7, 171);
    const auto r1 = t1.run(4800.0);
    const auto r0 = t0.run(4800.0);
    const double oz = static_cast<double>(r1.flips_one_to_zero +
                                          r0.flips_one_to_zero);
    const double zo = static_cast<double>(r1.flips_zero_to_one +
                                          r0.flips_zero_to_one);
    ASSERT_GT(oz + zo, 100.0);
    EXPECT_NEAR(oz / (oz + zo), 0.5, 0.09);
}

// --- DramArray --------------------------------------------------------------------

TEST(DramArray, BackgroundPattern) {
    stats::Rng rng(60);
    DramArray ones(1000, true);
    DramArray zeros(1000, false);
    for (std::size_t c = 0; c < 1000; c += 97) {
        EXPECT_TRUE(ones.read(c, rng));
        EXPECT_FALSE(zeros.read(c, rng));
    }
}

TEST(DramArray, TransientRespectsDirection) {
    stats::Rng rng(61);
    DramArray array(100, true);  // all ones.
    // 0->1 flip on an all-ones background is a no-op.
    EXPECT_FALSE(array.apply_transient(5, FlipDirection::kZeroToOne));
    EXPECT_TRUE(array.read(5, rng));
    // 1->0 flips the bit.
    EXPECT_TRUE(array.apply_transient(5, FlipDirection::kOneToZero));
    EXPECT_FALSE(array.read(5, rng));
}

TEST(DramArray, RewriteClearsTransient) {
    stats::Rng rng(62);
    DramArray array(100, true);
    array.apply_transient(7, FlipDirection::kOneToZero);
    array.rewrite(7);
    EXPECT_TRUE(array.read(7, rng));
}

TEST(DramArray, PermanentSurvivesRewrite) {
    stats::Rng rng(63);
    DramArray array(100, true);
    array.apply_permanent(3, FlipDirection::kOneToZero);  // stuck at 0.
    array.rewrite(3);
    EXPECT_FALSE(array.read(3, rng));
    array.rewrite_all();
    EXPECT_FALSE(array.read(3, rng));
    EXPECT_TRUE(array.is_stuck(3));
}

TEST(DramArray, AnnealClearsPermanent) {
    stats::Rng rng(64);
    DramArray array(100, true);
    array.apply_permanent(3, FlipDirection::kOneToZero);
    array.anneal();
    array.rewrite(3);
    EXPECT_TRUE(array.read(3, rng));
    EXPECT_FALSE(array.is_stuck(3));
}

TEST(DramArray, IntermittentIsFlaky) {
    stats::Rng rng(65);
    DramArray array(100, true);
    array.apply_intermittent(9, 0.5, FlipDirection::kOneToZero);
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (!array.read(9, rng)) ++wrong;
    }
    EXPECT_GT(wrong, 350);
    EXPECT_LT(wrong, 650);
    EXPECT_TRUE(array.is_intermittent(9));
}

TEST(DramArray, SefiCorruptsBurst) {
    stats::Rng rng(66);
    DramArray array(4096, true);
    array.apply_sefi(100, 512);
    const auto wrong = array.scan_errors(rng);
    EXPECT_EQ(wrong.size(), 512u);
    // Rewrite recovers everything.
    array.rewrite_all();
    EXPECT_TRUE(array.scan_errors(rng).empty());
}

TEST(DramArray, ScanMatchesPointReads) {
    stats::Rng rng(67);
    DramArray array(2048, false);
    array.apply_transient(17, FlipDirection::kZeroToOne);
    array.apply_permanent(900, FlipDirection::kZeroToOne);
    const auto wrong = array.scan_errors(rng);
    ASSERT_EQ(wrong.size(), 2u);
    EXPECT_EQ(wrong[0], 17u);
    EXPECT_EQ(wrong[1], 900u);
}

TEST(DramArray, Validation) {
    EXPECT_THROW(DramArray(0, true), std::invalid_argument);
    DramArray array(10, true);
    stats::Rng rng(68);
    EXPECT_THROW((void)array.read(10, rng), std::out_of_range);
    EXPECT_THROW(array.apply_intermittent(5, 0.0, FlipDirection::kOneToZero), std::invalid_argument);
    EXPECT_THROW(array.apply_permanent(10, FlipDirection::kOneToZero),
                 std::out_of_range);
}

// --- FaultProcess -----------------------------------------------------------------

TEST(FaultProcess, RatesMatchConfiguration) {
    const DramConfig cfg = ddr3_module();
    const double flux = physics::kRotaxTotalFlux;
    DramArray array(1u << 20, true);
    FaultProcess process(cfg, flux, 70);
    const double expected_rate =
        cfg.sigma_module(FaultCategory::kTransient) * flux;
    EXPECT_NEAR(process.category_rate(FaultCategory::kTransient, array),
                expected_rate, 1e-12);
}

TEST(FaultProcess, FluenceAccumulates) {
    DramArray array(1000, true);
    FaultProcess process(ddr3_module(), 1.0e6, 71);
    process.advance(array, 10.0);
    EXPECT_NEAR(process.fluence(), 1.0e7, 1.0);
}

TEST(FaultProcess, EventCountIsPoissonLike) {
    const DramConfig cfg = ddr3_module();
    DramArray array(1u << 20, true);
    FaultProcess process(cfg, physics::kRotaxTotalFlux, 72);
    // Long exposure: total faults ~ rate * t.
    const double t = 3000.0;
    const auto faults = process.advance(array, t);
    double expected = 0.0;
    for (std::size_t c = 0; c < kFaultCategoryCount; ++c) {
        expected +=
            process.category_rate(static_cast<FaultCategory>(c), array) * t;
    }
    EXPECT_NEAR(static_cast<double>(faults.size()), expected,
                5.0 * std::sqrt(expected) + 1.0);
}

TEST(FaultProcess, DirectionAsymmetryRespected) {
    const DramConfig cfg = ddr3_module();  // 96% 1->0.
    DramArray array(1u << 20, true);
    FaultProcess process(cfg, 1.0e9, 73);  // hot beam for statistics.
    process.advance(array, 10.0);
    std::size_t one_to_zero = 0;
    std::size_t total = 0;
    for (const auto& f : process.history()) {
        ++total;
        if (f.direction == FlipDirection::kOneToZero) ++one_to_zero;
    }
    ASSERT_GT(total, 100u);
    EXPECT_NEAR(static_cast<double>(one_to_zero) / static_cast<double>(total),
                0.96, 0.03);
}

TEST(FaultProcess, InterArrivalsAreExponential) {
    // The fault stream must be a genuine Poisson process: inter-arrival
    // times pass a K-S test against Exponential(total rate).
    const DramConfig cfg = ddr3_module();
    DramArray array(1u << 20, true);
    FaultProcess process(cfg, 2.0e8, 74);
    process.advance(array, 600.0);
    const auto& history = process.history();
    ASSERT_GT(history.size(), 500u);
    std::vector<double> gaps;
    std::vector<double> times;
    for (const auto& f : history) times.push_back(f.time_s);
    std::sort(times.begin(), times.end());
    for (std::size_t i = 1; i < times.size(); ++i) {
        gaps.push_back(times[i] - times[i - 1]);
    }
    double rate = 0.0;
    for (std::size_t c = 0; c < kFaultCategoryCount; ++c) {
        rate += process.category_rate(static_cast<FaultCategory>(c), array);
    }
    const auto ks = stats::ks_test_exponential(gaps, rate);
    EXPECT_GT(ks.p_value, 0.001);
}

TEST(FaultProcess, Validation) {
    EXPECT_THROW(FaultProcess(ddr3_module(), 0.0, 1), std::invalid_argument);
    DramArray array(10, true);
    FaultProcess process(ddr3_module(), 1.0, 1);
    EXPECT_THROW(process.advance(array, -1.0), std::invalid_argument);
}

// --- CorrectLoopTester ------------------------------------------------------------

TEST(CorrectLoop, ClassifiesGroundTruth) {
    // A hot beam, short run: the tester's classifications should track the
    // injected ground truth closely.
    CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    loop.pass_interval_s = 5.0;
    CorrectLoopTester tester(ddr3_module(), loop, 2.0e7, 80);
    const CorrectLoopReport report = tester.run(600.0);

    ASSERT_GT(report.total_errors(), 50u);
    // All four categories observed.
    for (std::size_t c = 0; c < kFaultCategoryCount; ++c) {
        EXPECT_GT(report.count_by_category[c], 0u)
            << to_string(static_cast<FaultCategory>(c));
    }
}

TEST(CorrectLoop, Ddr3PermanentsUnderThirtyPercent) {
    CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    loop.pass_interval_s = 5.0;
    CorrectLoopTester tester(ddr3_module(), loop, 2.0e7, 81);
    const CorrectLoopReport report = tester.run(900.0);
    ASSERT_GT(report.total_errors(), 100u);
    EXPECT_LT(report.permanent_fraction(), 0.40);
}

TEST(CorrectLoop, Ddr3DominantDirectionOneToZero) {
    CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    loop.pattern_ones = true;  // all-ones background sees 1->0 flips.
    CorrectLoopTester tester(ddr3_module(), loop, 2.0e7, 82);
    const CorrectLoopReport report = tester.run(600.0);
    ASSERT_GT(report.flips_one_to_zero + report.flips_zero_to_one, 20u);
    EXPECT_GT(report.dominant_direction_fraction(), 0.9);
}

TEST(CorrectLoop, SefiEventsAreMultiBit) {
    CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    CorrectLoopTester tester(ddr3_module(), loop, 4.0e7, 83);
    const CorrectLoopReport report = tester.run(600.0);
    for (const auto& err : report.errors) {
        if (err.classified == FaultCategory::kSefi) {
            EXPECT_GE(err.corrupted_cells, loop.sefi_threshold);
        } else {
            EXPECT_EQ(err.corrupted_cells, 1u);
        }
    }
}

TEST(CorrectLoop, CrossSectionRecoversConfiguredSigma) {
    // The estimator sigma = count / (fluence * Gbit) must recover the
    // configured per-Gbit transient cross section within Poisson noise.
    CorrectLoopConfig loop;
    loop.array_cells = 1u << 18;
    loop.pass_interval_s = 5.0;
    const DramConfig cfg = ddr3_module();
    CorrectLoopTester tester(cfg, loop, 2.0e7, 84);
    const CorrectLoopReport report = tester.run(1200.0);
    const double sigma_meas = report.sigma_per_gbit(FaultCategory::kTransient);
    const double sigma_true = cfg.sigma_per_gbit[static_cast<std::size_t>(
        FaultCategory::kTransient)];
    // The all-ones pattern only sees the dominant (96%) direction.
    const auto ci = report.sigma_ci(FaultCategory::kTransient);
    EXPECT_LT(ci.lower, sigma_true);
    EXPECT_GT(ci.upper, 0.5 * sigma_true);
    EXPECT_NEAR(sigma_meas, sigma_true * 0.96, 0.35 * sigma_true);
}

TEST(CorrectLoop, Validation) {
    CorrectLoopConfig loop;
    loop.array_cells = 0;
    EXPECT_THROW(CorrectLoopTester(ddr3_module(), loop, 1.0, 1),
                 std::invalid_argument);
    CorrectLoopConfig ok;
    CorrectLoopTester tester(ddr3_module(), ok, 1.0, 1);
    EXPECT_THROW((void)tester.run(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tnr::memory

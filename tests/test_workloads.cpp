// Tests for the nine benchmark kernels: determinism, golden verification,
// state exposure, and fault-detection behaviour (control-block corruption
// and bounds violations must surface as WorkloadFailure, i.e. DUEs).

#include <gtest/gtest.h>

#include <cstring>

#include "workloads/bfs.hpp"
#include "workloads/canny.hpp"
#include "workloads/hotspot.hpp"
#include "workloads/lavamd.hpp"
#include "workloads/lud.hpp"
#include "workloads/mnist.hpp"
#include "workloads/mxm.hpp"
#include "workloads/stream_compaction.hpp"
#include "workloads/suite.hpp"
#include "workloads/yolo_lite.hpp"

namespace tnr::workloads {
namespace {

// --- Parameterized over the full suite ------------------------------------------

class AllWorkloadsTest : public ::testing::TestWithParam<std::string> {
protected:
    std::unique_ptr<Workload> make() const {
        return entry_by_name(GetParam()).make();
    }
};

TEST_P(AllWorkloadsTest, CleanRunVerifies) {
    auto w = make();
    w->reset();
    w->run();
    EXPECT_TRUE(w->verify()) << w->name();
    EXPECT_EQ(w->severity(), SdcSeverity::kNone);
}

TEST_P(AllWorkloadsTest, RepeatedRunsDeterministic) {
    auto w = make();
    for (int i = 0; i < 3; ++i) {
        w->reset();
        w->run();
        EXPECT_TRUE(w->verify()) << w->name() << " iteration " << i;
    }
}

TEST_P(AllWorkloadsTest, TwoInstancesAgree) {
    auto a = make();
    auto b = make();
    a->reset();
    a->run();
    b->reset();
    b->run();
    EXPECT_TRUE(a->verify());
    EXPECT_TRUE(b->verify());
}

TEST_P(AllWorkloadsTest, ExposesInjectableState) {
    auto w = make();
    w->reset();
    const auto segments = w->segments();
    EXPECT_GE(segments.size(), 2u) << w->name();
    EXPECT_GT(w->state_bytes(), 0u);
    bool has_control = false;
    for (const auto& s : segments) {
        EXPECT_FALSE(s.name.empty());
        if (s.name == "control") has_control = true;
    }
    EXPECT_TRUE(has_control) << w->name() << " must expose a control block";
}

TEST_P(AllWorkloadsTest, ControlCorruptionDetected) {
    // Smashing the whole control block must be *detected* (DUE), never
    // silent: real launch descriptors are validated by drivers/runtimes.
    auto w = make();
    w->reset();
    for (auto& seg : w->segments()) {
        if (seg.name != "control") continue;
        for (auto& b : seg.bytes) b = std::byte{0xFF};
    }
    EXPECT_THROW(w->run(), WorkloadFailure) << w->name();
}

TEST_P(AllWorkloadsTest, ResetRestoresCleanState) {
    auto w = make();
    w->reset();
    // Corrupt everything injectable, then reset and re-run.
    for (auto& seg : w->segments()) {
        for (auto& b : seg.bytes) b = std::byte{0xA5};
    }
    w->reset();
    w->run();
    EXPECT_TRUE(w->verify()) << w->name();
}

INSTANTIATE_TEST_SUITE_P(Suite, AllWorkloadsTest,
                         ::testing::Values("MxM", "LUD", "LavaMD", "HotSpot",
                                           "SC", "CED", "BFS", "YOLO", "MNIST",
                                           "MNIST-dp"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             std::string name = info.param;
                             for (char& c : name) {
                                 if (!std::isalnum(static_cast<unsigned char>(c))) {
                                     c = '_';
                                 }
                             }
                             return name;
                         });

// --- Kernel-specific behaviour ----------------------------------------------------

TEST(MxMTest, OutputFlipIsSdc) {
    MxM w(16);
    w.reset();
    w.run();
    ASSERT_TRUE(w.verify());
    // Flip one bit in C after the run: verify must fail.
    auto segments = w.segments();
    for (auto& seg : segments) {
        if (seg.name == "C") {
            seg.bytes[0] ^= std::byte{0x01};
        }
    }
    EXPECT_FALSE(w.verify());
}

TEST(MxMTest, InputFlipPropagates) {
    MxM w(16);
    w.reset();
    for (auto& seg : w.segments()) {
        if (seg.name == "A") {
            // Flip a high mantissa bit of the first element.
            seg.bytes[2] ^= std::byte{0x80};
        }
    }
    w.run();
    EXPECT_FALSE(w.verify());
}

TEST(MxMTest, RejectsBadDimension) {
    EXPECT_THROW(MxM(0), std::invalid_argument);
    EXPECT_THROW(MxM(100000), std::invalid_argument);
}

TEST(LudTest, SingularPivotIsDetected) {
    Lud w(8);
    w.reset();
    // Zero the whole matrix: first pivot becomes ~0 -> detected singularity.
    for (auto& seg : w.segments()) {
        if (seg.name == "matrix") {
            std::memset(seg.bytes.data(), 0, seg.bytes.size());
        }
    }
    EXPECT_THROW(w.run(), WorkloadFailure);
}

TEST(ScTest, ThresholdCorruptionIsSilent) {
    // Corrupting the threshold changes which elements survive — a silent
    // data corruption, not a crash (it is a legal value).
    StreamCompaction w(256);
    w.reset();
    for (auto& seg : w.segments()) {
        if (seg.name == "control") {
            // threshold is the second uint32 of the control block.
            seg.bytes[4] ^= std::byte{0x40};
        }
    }
    w.run();
    EXPECT_FALSE(w.verify());
}

TEST(BfsTest, CorruptedColumnIndexCrashes) {
    Bfs w(64, 4);
    w.reset();
    for (auto& seg : w.segments()) {
        if (seg.name == "columns") {
            // Set the high byte of the first neighbour: huge node id -> OOB.
            seg.bytes[3] = std::byte{0xFF};
        }
    }
    EXPECT_THROW(w.run(), WorkloadFailure);
}

TEST(BfsTest, DistanceFlipIsSdcOrMasked) {
    Bfs w(64, 4);
    w.reset();
    w.run();
    ASSERT_TRUE(w.verify());
    for (auto& seg : w.segments()) {
        if (seg.name == "distance") seg.bytes[5] ^= std::byte{0x01};
    }
    EXPECT_FALSE(w.verify());
}

TEST(CedTest, EdgesAreBinaryClassified) {
    CannyEdge w(32);
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
    // Count detected edge pixels: a sane synthetic frame has some but not
    // all pixels as edges.
    std::size_t edges = 0;
    std::size_t total = 0;
    for (auto& seg : w.segments()) {
        if (seg.name == "edges") {
            for (const auto b : seg.bytes) {
                total += 1;
                if (b != std::byte{0}) ++edges;
            }
        }
    }
    EXPECT_GT(edges, 0u);
    EXPECT_LT(edges, total / 2);
}

TEST(YoloTest, SeverityDistinguishesCriticalAndTolerable) {
    YoloLite w;
    w.reset();
    w.run();
    ASSERT_TRUE(w.verify());
    const std::size_t clean_class = w.detected_class();

    // A tiny perturbation of a box output: wrong bits, same decision.
    w.reset();
    w.run();
    for (auto& seg : w.segments()) {
        if (seg.name == "output") {
            // Flip the lowest mantissa bit of the last box coordinate.
            seg.bytes[seg.bytes.size() - 4] ^= std::byte{0x01};
        }
    }
    EXPECT_FALSE(w.verify());
    EXPECT_EQ(w.severity(), SdcSeverity::kTolerable);
    EXPECT_EQ(w.detected_class(), clean_class);
}

TEST(YoloTest, ClassFlipIsCritical) {
    YoloLite w;
    w.reset();
    w.run();
    const std::size_t clean_class = w.detected_class();
    // Overwrite the winning class score with a large negative value.
    for (auto& seg : w.segments()) {
        if (seg.name == "output") {
            float big = -100.0F;
            std::memcpy(seg.bytes.data() + clean_class * sizeof(float), &big,
                        sizeof(float));
        }
    }
    EXPECT_FALSE(w.verify());
    EXPECT_EQ(w.severity(), SdcSeverity::kCritical);
}

TEST(MnistTest, DoublePrecisionClassifiesAllDigits) {
    for (std::size_t digit = 0; digit < 10; ++digit) {
        MnistDouble w(digit);
        w.reset();
        w.run();
        EXPECT_EQ(w.predicted_digit(), digit) << "digit " << digit;
    }
}

TEST(MnistTest, PrecisionsAgreeOnPrediction) {
    for (std::size_t digit = 0; digit < 10; ++digit) {
        Mnist single(digit);
        MnistDouble dp(digit);
        single.reset();
        single.run();
        dp.reset();
        dp.run();
        EXPECT_EQ(single.predicted_digit(), dp.predicted_digit())
            << "digit " << digit;
    }
}

TEST(MnistTest, DoubleBuildHasTwiceTheState) {
    // The double-precision build occupies ~2x the resources — reflected in
    // its injectable state footprint.
    Mnist single(3);
    MnistDouble dp(3);
    EXPECT_GT(dp.state_bytes(), 1.8 * static_cast<double>(single.state_bytes()));
}

TEST(MnistTest, ClassifiesItsDigit) {
    for (std::size_t digit = 0; digit < 10; ++digit) {
        Mnist w(digit);
        w.reset();
        w.run();
        EXPECT_EQ(w.predicted_digit(), digit) << "digit " << digit;
    }
}

TEST(MnistTest, WeightCorruptionCanFlipClass) {
    Mnist w(3);
    w.reset();
    // Saturate a large block of second-layer weights.
    for (auto& seg : w.segments()) {
        if (seg.name == "w2") {
            for (std::size_t i = 0; i < seg.bytes.size() / 2; ++i) {
                seg.bytes[i] = std::byte{0x7F};
            }
        }
    }
    bool threw = false;
    try {
        w.run();
    } catch (const WorkloadFailure&) {
        threw = true;  // NaN guard may fire; also acceptable.
    }
    if (!threw) {
        EXPECT_FALSE(w.verify());
    }
}

// --- Size sweeps -------------------------------------------------------------------

/// Determinism and golden verification must hold at every problem size, not
/// just the suite defaults.
class MxmSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MxmSizeTest, CleanAtSize) {
    MxM w(GetParam());
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MxmSizeTest,
                         ::testing::Values(1, 2, 7, 16, 48, 96));

class BfsSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BfsSizeTest, CleanAtSize) {
    const auto [nodes, degree] = GetParam();
    Bfs w(nodes, degree);
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BfsSizeTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{4, 2},
                                           std::pair<std::size_t, std::size_t>{64, 4},
                                           std::pair<std::size_t, std::size_t>{1024, 4},
                                           std::pair<std::size_t, std::size_t>{4096, 8}));

class HotSpotSizeTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(HotSpotSizeTest, CleanAtSize) {
    const auto [grid, iters] = GetParam();
    HotSpot w(grid, iters);
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, HotSpotSizeTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 1},
                      std::pair<std::size_t, std::size_t>{16, 3},
                      std::pair<std::size_t, std::size_t>{32, 64},
                      std::pair<std::size_t, std::size_t>{64, 128}));

class ScSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScSizeTest, CleanAtSize) {
    StreamCompaction w(GetParam());
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScSizeTest,
                         ::testing::Values(1, 16, 255, 4096, 65536));

class LudSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LudSizeTest, CleanAtSize) {
    Lud w(GetParam());
    w.reset();
    w.run();
    EXPECT_TRUE(w.verify());
}

INSTANTIATE_TEST_SUITE_P(Sizes, LudSizeTest, ::testing::Values(2, 3, 17, 40, 80));

// --- Suites -----------------------------------------------------------------------

TEST(SuiteTest, GroupSizes) {
    EXPECT_EQ(hpc_suite().size(), 4u);
    EXPECT_EQ(heterogeneous_suite().size(), 3u);
    EXPECT_EQ(cnn_suite().size(), 3u);
    EXPECT_EQ(full_suite().size(), 10u);
}

TEST(SuiteTest, DeviceAssignmentsMatchPaper) {
    EXPECT_EQ(suite_for_device("Xilinx Zynq-7000 FPGA").size(), 2u);
    EXPECT_EQ(suite_for_device("Xilinx Zynq-7000 FPGA")[0].name, "MNIST");
    EXPECT_EQ(suite_for_device("AMD APU (CPU+GPU)").size(), 3u);
    EXPECT_EQ(suite_for_device("Intel Xeon Phi").size(), 4u);
    // GPUs: HPC + YOLO.
    EXPECT_EQ(suite_for_device("NVIDIA K20").size(), 5u);
}

TEST(SuiteTest, UnknownWorkloadThrows) {
    EXPECT_THROW(entry_by_name("FFT"), std::out_of_range);
}

TEST(SuiteTest, FactoriesProduceFreshInstances) {
    const auto& entry = entry_by_name("MxM");
    auto a = entry.make();
    auto b = entry.make();
    EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace tnr::workloads

// Cross-cutting property tests: invariants that must hold over whole
// families of inputs (parameterized sweeps rather than single examples).

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "devices/catalog.hpp"
#include "memory/ecc.hpp"
#include "physics/beamline_spectra.hpp"
#include "physics/materials.hpp"
#include "physics/units.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"
#include "stats/special_functions.hpp"

namespace tnr {
namespace {

// --- Material properties over the whole library -----------------------------------

struct MaterialCase {
    const char* name;
    std::function<physics::Material()> make;
};

class AllMaterialsTest : public ::testing::TestWithParam<MaterialCase> {};

TEST_P(AllMaterialsTest, ScatteringNonIncreasingWithEnergy) {
    const auto material = GetParam().make();
    double last = material.sigma_scatter(1.0e-3);
    for (double e = 1.0e-2; e < 1.0e8; e *= 10.0) {
        const double s = material.sigma_scatter(e);
        EXPECT_LE(s, last * 1.0001) << GetParam().name << " at " << e;
        last = s;
    }
}

TEST_P(AllMaterialsTest, AbsorptionNonNegativeEverywhere) {
    const auto material = GetParam().make();
    for (double e = 1.0e-3; e < 1.0e9; e *= 7.0) {
        EXPECT_GE(material.sigma_absorb(e), 0.0) << GetParam().name;
        EXPECT_GE(material.sigma_total(e), material.sigma_absorb(e));
    }
}

TEST_P(AllMaterialsTest, MeanFreePathPositiveAndFinite) {
    const auto material = GetParam().make();
    for (double e : {0.0253, 1.0, 1.0e3, 1.0e6}) {
        const double mfp = material.mean_free_path(e);
        EXPECT_GT(mfp, 0.0) << GetParam().name;
        EXPECT_TRUE(std::isfinite(mfp)) << GetParam().name;
    }
}

TEST_P(AllMaterialsTest, XiWithinPhysicalBounds) {
    const auto material = GetParam().make();
    const double xi = material.average_xi();
    EXPECT_GE(xi, 0.0);
    EXPECT_LE(xi, 1.0);  // hydrogen's xi=1 is the maximum.
}

INSTANTIATE_TEST_SUITE_P(
    Library, AllMaterialsTest,
    ::testing::Values(
        MaterialCase{"water", physics::Material::water},
        MaterialCase{"concrete", physics::Material::concrete},
        MaterialCase{"polyethylene", physics::Material::polyethylene},
        MaterialCase{"cadmium", physics::Material::cadmium},
        MaterialCase{"borated_poly", physics::Material::borated_poly},
        MaterialCase{"air", physics::Material::air},
        MaterialCase{"silicon", physics::Material::silicon},
        MaterialCase{"fr4", physics::Material::fr4},
        MaterialCase{"aluminum", physics::Material::aluminum}),
    [](const ::testing::TestParamInfo<MaterialCase>& info) {
        return info.param.name;
    });

// --- Spectrum properties ------------------------------------------------------------

struct SpectrumCase {
    const char* name;
    std::function<std::shared_ptr<const physics::Spectrum>()> make;
};

class AllSpectraTest : public ::testing::TestWithParam<SpectrumCase> {};

TEST_P(AllSpectraTest, DensityNonNegativeOverSupport) {
    const auto s = GetParam().make();
    const double lo = s->min_energy_ev();
    const double hi = s->max_energy_ev();
    for (double e = lo; e <= hi; e *= 1.9) {
        EXPECT_GE(s->flux_density(e), 0.0) << GetParam().name;
    }
}

TEST_P(AllSpectraTest, SamplesStayWithinSupport) {
    const auto s = GetParam().make();
    stats::Rng rng(900);
    for (int i = 0; i < 5000; ++i) {
        const double e = s->sample_energy(rng);
        EXPECT_GE(e, s->min_energy_ev() * 0.999) << GetParam().name;
        EXPECT_LE(e, s->max_energy_ev() * 1.001) << GetParam().name;
    }
}

TEST_P(AllSpectraTest, PartialIntegralsAddUp) {
    const auto s = GetParam().make();
    const double lo = s->min_energy_ev();
    const double hi = s->max_energy_ev();
    const double mid = std::sqrt(lo * hi);
    const double whole = s->integral_flux(lo, hi);
    const double parts = s->integral_flux(lo, mid) + s->integral_flux(mid, hi);
    EXPECT_NEAR(parts, whole, 0.02 * whole) << GetParam().name;
}

TEST_P(AllSpectraTest, SampledThermalFractionMatchesIntegral) {
    const auto s = GetParam().make();
    stats::Rng rng(901);
    int thermal = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (s->sample_energy(rng) < physics::kThermalCutoffEv) ++thermal;
    }
    const double expected = s->thermal_flux() / s->total_flux();
    EXPECT_NEAR(static_cast<double>(thermal) / n, expected,
                0.02 + 3.0 * std::sqrt(expected / n))
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Library, AllSpectraTest,
    ::testing::Values(
        SpectrumCase{"chipir", [] { return physics::chipir_spectrum(); }},
        SpectrumCase{"rotax", [] { return physics::rotax_spectrum(); }},
        SpectrumCase{"dt14", [] { return physics::dt14_spectrum(); }},
        SpectrumCase{"terrestrial",
                     [] {
                         return physics::terrestrial_spectrum(13.0 / 3600.0,
                                                              4.0 / 3600.0);
                     }},
        SpectrumCase{"maxwellian",
                     [] {
                         return std::make_shared<physics::MaxwellianSpectrum>(
                             100.0, 0.0253);
                     }},
        SpectrumCase{"epithermal",
                     [] {
                         return std::make_shared<physics::EpithermalSpectrum>(
                             10.0, 0.5, 1.0e6);
                     }}),
    [](const ::testing::TestParamInfo<SpectrumCase>& info) {
        return info.param.name;
    });

// --- Poisson interval properties ------------------------------------------------------

TEST(PoissonProperties, IntervalMonotoneInCount) {
    stats::Interval last = stats::poisson_mean_interval(0);
    for (std::uint64_t k = 1; k < 2000; k = k * 3 / 2 + 1) {
        const auto ci = stats::poisson_mean_interval(k);
        EXPECT_GT(ci.lower, last.lower) << k;
        EXPECT_GT(ci.upper, last.upper) << k;
        last = ci;
    }
}

TEST(PoissonProperties, RelativeWidthShrinksAsSqrtN) {
    // Width/k ~ 4/sqrt(k) for large k: check the scaling over two decades.
    const auto w = [](std::uint64_t k) {
        const auto ci = stats::poisson_mean_interval(k);
        return ci.width() / static_cast<double>(k);
    };
    EXPECT_NEAR(w(100) / w(10000), 10.0, 1.0);
}

TEST(PoissonProperties, GammaInverseIsMonotone) {
    for (const double a : {0.5, 2.0, 20.0}) {
        double last = 0.0;
        for (double p = 0.05; p < 1.0; p += 0.1) {
            const double x = stats::gamma_p_inv(a, p);
            EXPECT_GT(x, last);
            last = x;
        }
    }
}

// --- SECDED algebraic properties -------------------------------------------------------

TEST(EccProperties, SyndromeIsLinear) {
    // The code is linear: encode(a) XOR encode(b) is a codeword of a XOR b.
    stats::Rng rng(902);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        const auto ca = memory::Secded::encode(a);
        const auto cb = memory::Secded::encode(b);
        const auto cab = memory::Secded::encode(a ^ b);
        EXPECT_EQ(ca.data ^ cb.data, cab.data);
        EXPECT_EQ(ca.check ^ cb.check, cab.check);
    }
}

TEST(EccProperties, DoubleFlipSameBitIsIdentity) {
    stats::Rng rng(903);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t data = rng.next();
        auto word = memory::Secded::encode(data);
        const auto bit = static_cast<std::uint8_t>(rng.uniform_index(72));
        word.flip(bit);
        word.flip(bit);
        EXPECT_EQ(memory::Secded::decode(word), memory::EccOutcome::kClean);
        EXPECT_EQ(word.data, data);
    }
}

// --- Device model properties ------------------------------------------------------------

class AllCatalogDevicesTest
    : public ::testing::TestWithParam<devices::DeviceSpec> {};

TEST_P(AllCatalogDevicesTest, ThermalScaleIsLinearInRotaxRate) {
    const auto device = devices::build_calibrated(GetParam());
    const auto rotax = physics::rotax_spectrum();
    const double base = device.error_rate(devices::ErrorType::kSdc, *rotax);
    for (const double f : {0.0, 0.5, 2.0, 8.0}) {
        const auto scaled = device.with_thermal_scale(f);
        EXPECT_NEAR(scaled.error_rate(devices::ErrorType::kSdc, *rotax),
                    f * base, 1e-9 * (1.0 + f * base))
            << GetParam().name;
    }
}

TEST_P(AllCatalogDevicesTest, CrossSectionNonNegativeAcrossEnergies) {
    const auto device = devices::build_calibrated(GetParam());
    for (double e = 1.0e-3; e < 1.0e9; e *= 13.0) {
        EXPECT_GE(device.cross_section(devices::ErrorType::kSdc, e), 0.0);
        EXPECT_GE(device.cross_section(devices::ErrorType::kDue, e), 0.0);
    }
}

TEST_P(AllCatalogDevicesTest, ChipIrRateExceedsPureHeChannel) {
    // The thermal tail of ChipIR can only add events, never remove them.
    const auto device = devices::build_calibrated(GetParam());
    const auto chipir = physics::chipir_spectrum();
    const double total = device.error_rate(devices::ErrorType::kSdc, *chipir);
    const double he_only =
        device.high_energy_response(devices::ErrorType::kSdc)
            .event_rate(*chipir);
    EXPECT_GE(total, he_only) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, AllCatalogDevicesTest,
    ::testing::ValuesIn(devices::standard_specs()),
    [](const ::testing::TestParamInfo<devices::DeviceSpec>& info) {
        std::string name = info.param.name;
        for (char& c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        }
        return name;
    });

// --- RNG statistical quality --------------------------------------------------------------

TEST(RngProperties, ChiSquareUniformityOfBytes) {
    stats::Rng rng(904);
    std::array<std::uint64_t, 256> counts{};
    constexpr std::uint64_t n = 1u << 20;
    for (std::uint64_t i = 0; i < n / 8; ++i) {
        std::uint64_t x = rng.next();
        for (int b = 0; b < 8; ++b) {
            ++counts[x & 0xFF];
            x >>= 8;
        }
    }
    const double expected = static_cast<double>(n) / 256.0;
    double chi2 = 0.0;
    for (const auto c : counts) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    // 255 dof: 99.9% quantile ~ 330.5.
    EXPECT_LT(chi2, 330.5);
    EXPECT_GT(chi2, 180.0);  // suspiciously uniform is also a failure.
}

TEST(RngProperties, NoObviousSerialCorrelation) {
    stats::Rng rng(905);
    double prev = rng.uniform();
    double corr = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform();
        corr += (prev - 0.5) * (x - 0.5);
        prev = x;
    }
    EXPECT_NEAR(corr / n / (1.0 / 12.0), 0.0, 0.02);
}

}  // namespace
}  // namespace tnr

// Unit and property tests for tnr::stats: RNG, special functions, Poisson
// confidence intervals, histograms, time series, changepoint detection,
// summary statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/changepoint.hpp"
#include "stats/histogram.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"
#include "stats/special_functions.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"

namespace tnr::stats {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng rng(9);
    double sum = 0.0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIndexStaysBelowBound) {
    Rng rng(10);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniform_index(17), 17u);
    }
}

TEST(Rng, UniformIndexCoversAllValues) {
    Rng rng(11);
    std::array<int, 8> hits{};
    for (int i = 0; i < 8000; ++i) {
        ++hits[rng.uniform_index(8)];
    }
    for (const int h : hits) EXPECT_GT(h, 800);
}

TEST(Rng, UniformIndexZeroReturnsZero) {
    Rng rng(12);
    EXPECT_EQ(rng.uniform_index(0), 0u);
    EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, BernoulliExtremes) {
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency) {
    Rng rng(14);
    int hits = 0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(15);
    double sum = 0.0;
    constexpr int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, NormalMoments) {
    Rng rng(16);
    RunningStats stats;
    for (int i = 0; i < 200000; ++i) stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
    Rng rng(17);
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

// Poisson sampling across both algorithm regimes (inversion & PTRS).
class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
    const double mean = GetParam();
    Rng rng(18);
    RunningStats stats;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        stats.add(static_cast<double>(rng.poisson(mean)));
    }
    EXPECT_NEAR(stats.mean(), mean, 5.0 * std::sqrt(mean / n) + 0.01);
    EXPECT_NEAR(stats.variance(), mean, 0.1 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(0.1, 1.0, 5.0, 29.9, 30.1, 100.0,
                                           1000.0, 25000.0));

TEST(Rng, PoissonZeroMean) {
    Rng rng(19);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
    Rng parent(20);
    Rng child = parent.split();
    RunningStats corr;
    double last_parent = parent.uniform();
    double last_child = child.uniform();
    double cov = 0.0;
    constexpr int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double p = parent.uniform();
        const double c = child.uniform();
        cov += (p - 0.5) * (c - 0.5);
        last_parent = p;
        last_child = c;
    }
    (void)last_parent;
    (void)last_child;
    EXPECT_NEAR(cov / n, 0.0, 0.005);
}

// --- Special functions ---------------------------------------------------------

TEST(SpecialFunctions, GammaPKnownValues) {
    // P(1, x) = 1 - exp(-x).
    EXPECT_NEAR(gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
    EXPECT_NEAR(gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-10);
    // P(0.5, x) = erf(sqrt(x)).
    EXPECT_NEAR(gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
    EXPECT_NEAR(gamma_p(0.5, 4.0), std::erf(2.0), 1e-10);
}

TEST(SpecialFunctions, GammaPqComplementary) {
    for (const double a : {0.3, 1.0, 2.5, 10.0, 50.0}) {
        for (const double x : {0.01, 0.5, 1.0, 5.0, 30.0, 100.0}) {
            EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(SpecialFunctions, GammaPBoundaries) {
    EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
    EXPECT_THROW(gamma_p(0.0, 1.0), std::domain_error);
    EXPECT_THROW(gamma_p(1.0, -1.0), std::domain_error);
}

TEST(SpecialFunctions, GammaPInvRoundTrip) {
    for (const double a : {0.5, 1.0, 3.0, 12.0, 100.0}) {
        for (const double p : {0.001, 0.025, 0.5, 0.975, 0.999}) {
            const double x = gamma_p_inv(a, p);
            EXPECT_NEAR(gamma_p(a, x), p, 1e-8) << "a=" << a << " p=" << p;
        }
    }
}

TEST(SpecialFunctions, ChiSquaredQuantileKnown) {
    // chi2 with 2 dof is exponential(1/2): quantile(p) = -2 ln(1-p).
    EXPECT_NEAR(chi_squared_quantile(0.95, 2.0), -2.0 * std::log(0.05), 1e-8);
    // Classic table value: chi2_{0.95, 1} = 3.841.
    EXPECT_NEAR(chi_squared_quantile(0.95, 1.0), 3.8415, 1e-3);
    EXPECT_NEAR(chi_squared_quantile(0.975, 10.0), 20.483, 1e-2);
}

TEST(SpecialFunctions, NormalQuantileKnown) {
    EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
    EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
    EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
}

TEST(SpecialFunctions, NormalCdfQuantileRoundTrip) {
    for (const double p : {0.001, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12);
    }
}

TEST(SpecialFunctions, LogBinomial) {
    EXPECT_NEAR(log_binomial(5, 2), std::log(10.0), 1e-12);
    EXPECT_NEAR(log_binomial(10, 0), 0.0, 1e-12);
    EXPECT_EQ(log_binomial(3, 5), -std::numeric_limits<double>::infinity());
}

// --- Poisson intervals --------------------------------------------------------

TEST(PoissonInterval, ZeroCountLowerIsZero) {
    const Interval ci = poisson_mean_interval(0);
    EXPECT_DOUBLE_EQ(ci.lower, 0.0);
    // Garwood upper bound for 0 counts at 95%: 3.689.
    EXPECT_NEAR(ci.upper, 3.689, 1e-2);
}

TEST(PoissonInterval, KnownGarwoodValues) {
    // Standard exact 95% CI for k=10: [4.795, 18.39].
    const Interval ci = poisson_mean_interval(10);
    EXPECT_NEAR(ci.lower, 4.795, 1e-2);
    EXPECT_NEAR(ci.upper, 18.39, 1e-1);
}

TEST(PoissonInterval, IntervalContainsCount) {
    for (const std::uint64_t k : {1ull, 5ull, 50ull, 1000ull}) {
        const Interval ci = poisson_mean_interval(k);
        EXPECT_TRUE(ci.contains(static_cast<double>(k)));
    }
}

TEST(PoissonInterval, WidthShrinksWithConfidence) {
    const Interval wide = poisson_mean_interval(20, 0.99);
    const Interval narrow = poisson_mean_interval(20, 0.68);
    EXPECT_LT(narrow.width(), wide.width());
}

TEST(PoissonInterval, RateScalesWithExposure) {
    const Interval ci1 = poisson_rate_interval(100, 1.0);
    const Interval ci2 = poisson_rate_interval(100, 10.0);
    EXPECT_NEAR(ci1.lower / 10.0, ci2.lower, 1e-9);
    EXPECT_NEAR(ci1.upper / 10.0, ci2.upper, 1e-9);
}

TEST(PoissonInterval, CoverageProperty) {
    // Simulated coverage of the exact 95% CI should be >= 95% (conservative).
    Rng rng(21);
    const double true_mean = 7.3;
    int covered = 0;
    constexpr int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        const std::uint64_t k = rng.poisson(true_mean);
        if (poisson_mean_interval(k).contains(true_mean)) ++covered;
    }
    EXPECT_GE(static_cast<double>(covered) / trials, 0.945);
}

TEST(PoissonRatio, PointEstimate) {
    const RateRatio r = poisson_rate_ratio(100, 10.0, 50, 10.0);
    EXPECT_NEAR(r.ratio, 2.0, 1e-12);
    EXPECT_LT(r.ci.lower, 2.0);
    EXPECT_GT(r.ci.upper, 2.0);
}

TEST(PoissonRatio, ThrowsOnZeroDenominator) {
    EXPECT_THROW(poisson_rate_ratio(10, 1.0, 0, 1.0), std::domain_error);
}

TEST(PoissonPmf, SumsToOne) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k < 60; ++k) sum += poisson_pmf(k, 10.0);
    EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(PoissonPmf, KnownValue) {
    EXPECT_NEAR(poisson_pmf(0, 2.0), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(poisson_pmf(2, 2.0), 2.0 * std::exp(-2.0), 1e-12);
}

TEST(PoissonPValue, CentralValueIsLarge) {
    EXPECT_GT(poisson_two_sided_p_value(10, 10.0), 0.5);
}

TEST(PoissonPValue, ExtremeValueIsSmall) {
    EXPECT_LT(poisson_two_sided_p_value(50, 10.0), 1e-6);
    EXPECT_LT(poisson_two_sided_p_value(0, 20.0), 1e-6);
}

// --- Histogram ----------------------------------------------------------------

TEST(Histogram, LinearBinning) {
    auto h = Histogram::linear(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.99);
    h.add(5.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    EXPECT_DOUBLE_EQ(h.count(5), 1.0);
    EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, UnderOverflow) {
    auto h = Histogram::linear(0.0, 1.0, 4);
    h.add(-0.1);
    h.add(1.0);  // hi edge is exclusive.
    h.add(2.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
}

TEST(Histogram, LogBinning) {
    auto h = Histogram::logarithmic(1.0, 1e6, 6);
    h.add(3.0);      // decade 0.
    h.add(3000.0);   // decade 3.
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Histogram, FindBinConsistentWithEdges) {
    auto h = Histogram::logarithmic(0.001, 1000.0, 24);
    for (double x : {0.0011, 0.5, 1.0, 10.0, 999.0}) {
        const std::size_t i = h.find_bin(x);
        ASSERT_NE(i, Histogram::npos);
        EXPECT_GE(x, h.bin_lo(i));
        EXPECT_LT(x, h.bin_hi(i));
    }
}

TEST(Histogram, WeightedFill) {
    auto h = Histogram::linear(0.0, 1.0, 2);
    h.add(0.25, 2.5);
    EXPECT_DOUBLE_EQ(h.count(0), 2.5);
}

TEST(Histogram, DensityDividesWidth) {
    auto h = Histogram::linear(0.0, 10.0, 5);
    h.add(1.0, 4.0);
    EXPECT_DOUBLE_EQ(h.density()[0], 2.0);  // 4 / width 2.
}

TEST(Histogram, LethargyDensity) {
    auto h = Histogram::logarithmic(1.0, std::exp(2.0), 2);
    h.add(1.5, 3.0);
    // Each bin spans 1 unit of lethargy.
    EXPECT_NEAR(h.lethargy_density()[0], 3.0, 1e-9);
}

TEST(Histogram, RejectsBadEdges) {
    EXPECT_THROW(Histogram({1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram::logarithmic(0.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, ResetClears) {
    auto h = Histogram::linear(0.0, 1.0, 2);
    h.add(0.5);
    h.add(-1.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

// --- CountTimeSeries ------------------------------------------------------------

TEST(TimeSeries, BasicAccessors) {
    CountTimeSeries ts(100.0, 60.0);
    ts.append(5);
    ts.append(7);
    EXPECT_EQ(ts.size(), 2u);
    EXPECT_DOUBLE_EQ(ts.bin_start_s(1), 160.0);
    EXPECT_DOUBLE_EQ(ts.rate(0), 5.0 / 60.0);
}

TEST(TimeSeries, TotalsAndMeanRate) {
    CountTimeSeries ts(0.0, 10.0);
    for (std::uint64_t c : {1ull, 2ull, 3ull, 4ull}) ts.append(c);
    EXPECT_EQ(ts.total(0, 4), 10u);
    EXPECT_EQ(ts.total(1, 3), 5u);
    EXPECT_DOUBLE_EQ(ts.mean_rate(0, 4), 10.0 / 40.0);
}

TEST(TimeSeries, Rebinning) {
    CountTimeSeries ts(0.0, 1.0);
    for (int i = 0; i < 10; ++i) ts.append(2);
    const auto rebinned = ts.rebinned(5);
    EXPECT_EQ(rebinned.size(), 2u);
    EXPECT_EQ(rebinned.count(0), 10u);
    EXPECT_DOUBLE_EQ(rebinned.bin_width_s(), 5.0);
}

TEST(TimeSeries, SmoothedRateFlatSeries) {
    CountTimeSeries ts(0.0, 1.0);
    for (int i = 0; i < 20; ++i) ts.append(3);
    for (const double r : ts.smoothed_rate(2)) EXPECT_DOUBLE_EQ(r, 3.0);
}

TEST(TimeSeries, DifferenceRequiresSameBinning) {
    CountTimeSeries a(0.0, 1.0);
    CountTimeSeries b(0.0, 2.0);
    a.append(1);
    b.append(1);
    EXPECT_THROW((void)a.difference(b), std::invalid_argument);
}

TEST(TimeSeries, DifferenceValues) {
    CountTimeSeries a(0.0, 1.0);
    CountTimeSeries b(0.0, 1.0);
    a.append(10);
    b.append(3);
    a.append(2);
    b.append(5);
    const auto d = a.difference(b);
    EXPECT_EQ(d[0], 7);
    EXPECT_EQ(d[1], -3);
}

TEST(TimeSeries, RangeValidation) {
    CountTimeSeries ts(0.0, 1.0);
    ts.append(1);
    EXPECT_THROW((void)ts.mean_rate(0, 5), std::out_of_range);
    EXPECT_THROW((void)ts.total(2, 1), std::out_of_range);
}

// --- Changepoint -----------------------------------------------------------------

TEST(Changepoint, DetectsObviousStep) {
    std::vector<std::uint64_t> counts;
    for (int i = 0; i < 50; ++i) counts.push_back(100);
    for (int i = 0; i < 50; ++i) counts.push_back(150);
    const auto cp = detect_single_changepoint(counts);
    ASSERT_TRUE(cp.has_value());
    EXPECT_NEAR(static_cast<double>(cp->index), 50.0, 2.0);
    EXPECT_NEAR(cp->relative_step(), 0.5, 0.05);
}

TEST(Changepoint, NoStepInFlatSeries) {
    Rng rng(22);
    std::vector<std::uint64_t> counts;
    for (int i = 0; i < 100; ++i) counts.push_back(rng.poisson(100.0));
    const auto cp = detect_single_changepoint(counts);
    // A flat Poisson series should not clear the likelihood-gain bar.
    EXPECT_FALSE(cp.has_value());
}

TEST(Changepoint, NoisyStepRecovered) {
    Rng rng(23);
    std::vector<std::uint64_t> counts;
    for (int i = 0; i < 96; ++i) counts.push_back(rng.poisson(400.0));
    for (int i = 0; i < 72; ++i) counts.push_back(rng.poisson(496.0));  // +24%
    const auto cp = detect_single_changepoint(counts);
    ASSERT_TRUE(cp.has_value());
    EXPECT_NEAR(static_cast<double>(cp->index), 96.0, 6.0);
    EXPECT_NEAR(cp->relative_step(), 0.24, 0.05);
}

TEST(Changepoint, ShortSeriesReturnsNothing) {
    const std::vector<std::uint64_t> counts = {1, 2, 3};
    EXPECT_FALSE(detect_single_changepoint(counts, 3).has_value());
}

TEST(Cusum, AlarmsOnShift) {
    CusumDetector detector(100.0, 5.0, 50.0);
    Rng rng(24);
    bool alarmed = false;
    for (int i = 0; i < 200 && !alarmed; ++i) {
        alarmed = detector.update(rng.poisson(130.0));
    }
    EXPECT_TRUE(alarmed);
}

TEST(Cusum, QuietUnderControl) {
    CusumDetector detector(100.0, 10.0, 200.0);
    Rng rng(25);
    for (int i = 0; i < 500; ++i) detector.update(rng.poisson(100.0));
    EXPECT_FALSE(detector.alarmed());
}

TEST(Cusum, ResetClearsState) {
    CusumDetector detector(10.0, 0.0, 5.0);
    detector.update(100);
    EXPECT_TRUE(detector.alarmed());
    detector.reset();
    EXPECT_FALSE(detector.alarmed());
    EXPECT_DOUBLE_EQ(detector.statistic(), 0.0);
}

// --- RunningStats ---------------------------------------------------------------

TEST(RunningStats, BasicMoments) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
    RunningStats a;
    RunningStats b;
    RunningStats all;
    Rng rng(26);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsSafe) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sem(), 0.0);
}

TEST(Quantiles, MedianAndInterpolation) {
    const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(median(v), 3.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Quantiles, Validation) {
    const std::vector<double> empty;
    EXPECT_THROW((void)median(empty), std::invalid_argument);
    const std::vector<double> v = {1.0};
    EXPECT_THROW((void)quantile(v, 1.5), std::domain_error);
}

TEST(GeometricMean, KnownValue) {
    const std::vector<double> v = {1.0, 100.0};
    EXPECT_NEAR(geometric_mean(v), 10.0, 1e-9);
}

TEST(GeometricMean, RejectsNonPositive) {
    const std::vector<double> v = {1.0, -1.0};
    EXPECT_THROW((void)geometric_mean(v), std::domain_error);
}

// --- Kolmogorov-Smirnov -----------------------------------------------------------

TEST(KsTest, ExponentialSamplesPass) {
    Rng rng(27);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i) samples.push_back(rng.exponential(3.0));
    const KsResult r = ks_test_exponential(samples, 3.0);
    EXPECT_GT(r.p_value, 0.01);
    EXPECT_LT(r.statistic, 0.05);
}

TEST(KsTest, WrongRateFails) {
    Rng rng(28);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i) samples.push_back(rng.exponential(3.0));
    const KsResult r = ks_test_exponential(samples, 1.0);
    EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, UniformSamplesPass) {
    Rng rng(29);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i) samples.push_back(rng.uniform(2.0, 7.0));
    const KsResult r = ks_test_uniform(samples, 2.0, 7.0);
    EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, NonUniformFailsUniformTest) {
    Rng rng(30);
    std::vector<double> samples;
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform();
        samples.push_back(u * u);  // squashed toward 0.
    }
    const KsResult r = ks_test_uniform(samples, 0.0, 1.0);
    EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, Validation) {
    const std::vector<double> empty;
    EXPECT_THROW((void)ks_test_uniform(empty, 0.0, 1.0), std::invalid_argument);
    const std::vector<double> one = {0.5};
    EXPECT_THROW((void)ks_test_exponential(one, 0.0), std::domain_error);
    EXPECT_THROW((void)ks_test_uniform(one, 1.0, 1.0), std::domain_error);
}

}  // namespace
}  // namespace tnr::stats

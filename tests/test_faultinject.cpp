// Tests for the SWIFI engine: classification correctness, directed
// injection, and the vulnerability table used by beam campaigns.

#include <gtest/gtest.h>

#include "faultinject/avf.hpp"
#include "faultinject/injector.hpp"
#include "workloads/mxm.hpp"
#include "workloads/suite.hpp"

namespace tnr::faultinject {
namespace {

TEST(Injector, OutcomeNames) {
    EXPECT_STREQ(to_string(Outcome::kMasked), "masked");
    EXPECT_STREQ(to_string(Outcome::kSdc), "SDC");
    EXPECT_STREQ(to_string(Outcome::kDueCrash), "DUE(crash)");
    EXPECT_STREQ(to_string(Outcome::kDueHang), "DUE(hang)");
}

TEST(Injector, ProducesValidRecords) {
    auto w = workloads::make_mxm(16);
    FaultInjector injector(100);
    for (int i = 0; i < 50; ++i) {
        const InjectionRecord rec = injector.inject_once(*w);
        EXPECT_FALSE(rec.segment.empty());
        EXPECT_LT(rec.bit, 8);
    }
}

TEST(Injector, ControlSegmentInjectionIsDue) {
    auto w = workloads::make_mxm(16);
    FaultInjector injector(101);
    // Directed injection into the control block (segment 3 for MxM).
    const auto segments_count = [&] {
        w->reset();
        return w->segments().size();
    }();
    ASSERT_EQ(segments_count, 4u);
    const InjectionRecord rec = injector.inject_at(*w, 3, 0, 0);
    EXPECT_EQ(rec.segment, "control");
    EXPECT_EQ(rec.outcome, Outcome::kDueCrash);
}

TEST(Injector, OutputInjectionIsSdc) {
    auto w = workloads::make_mxm(16);
    FaultInjector injector(102);
    // Injecting into C (segment 2) before the run gets overwritten -> the
    // run recomputes C, so this is masked. That is the correct semantics.
    const InjectionRecord rec = injector.inject_at(*w, 2, 10, 3);
    EXPECT_EQ(rec.outcome, Outcome::kMasked);
}

TEST(Injector, InputInjectionHighBitIsSdc) {
    auto w = workloads::make_mxm(16);
    FaultInjector injector(103);
    // Byte 3 bit 6: high exponent bit of A[0] -> large corruption -> SDC.
    const InjectionRecord rec = injector.inject_at(*w, 0, 3, 6);
    EXPECT_EQ(rec.outcome, Outcome::kSdc);
}

TEST(Injector, InjectAtValidation) {
    auto w = workloads::make_mxm(16);
    FaultInjector injector(104);
    EXPECT_THROW(injector.inject_at(*w, 99, 0, 0), std::out_of_range);
    EXPECT_THROW(injector.inject_at(*w, 0, 1u << 30, 0), std::out_of_range);
    EXPECT_THROW(injector.inject_at(*w, 0, 0, 8), std::out_of_range);
}

TEST(Injector, DeterministicForSeed) {
    auto w1 = workloads::make_mxm(16);
    auto w2 = workloads::make_mxm(16);
    FaultInjector a(7);
    FaultInjector b(7);
    for (int i = 0; i < 20; ++i) {
        const auto ra = a.inject_once(*w1);
        const auto rb = b.inject_once(*w2);
        EXPECT_EQ(ra.segment, rb.segment);
        EXPECT_EQ(ra.byte_offset, rb.byte_offset);
        EXPECT_EQ(ra.bit, rb.bit);
        EXPECT_EQ(ra.outcome, rb.outcome);
    }
}

TEST(Avf, TalliesAddUp) {
    const auto result = measure_avf(workloads::entry_by_name("MxM"), 200, 1);
    EXPECT_EQ(result.trials, 200u);
    EXPECT_EQ(result.masked + result.sdc + result.due_crash + result.due_hang,
              200u);
}

TEST(Avf, MxmHasSubstantialSdcRate) {
    // Almost all of MxM's state is live input/output data: faults in A/B
    // propagate, faults in C get overwritten. Expect a meaningful SDC rate.
    const auto result = measure_avf(workloads::entry_by_name("MxM"), 300, 2);
    EXPECT_GT(result.avf_sdc(), 0.2);
}

TEST(Avf, BfsHasDetectedFaults) {
    // Graph codes crash on corrupted indices: BFS must show DUEs.
    const auto result = measure_avf(workloads::entry_by_name("BFS"), 400, 3);
    EXPECT_GT(result.avf_due(), 0.01);
}

TEST(Avf, SegmentBreakdownPresent) {
    const auto result = measure_avf(workloads::entry_by_name("MxM"), 300, 4);
    if (result.sdc > 0) {
        EXPECT_FALSE(result.sdc_by_segment.empty());
    }
}

TEST(Avf, ZeroTrialsRejected) {
    EXPECT_THROW(measure_avf(workloads::entry_by_name("MxM"), 0, 1),
                 std::invalid_argument);
}

TEST(VulnerabilityTable, UniformIsAllOnes) {
    const auto table =
        VulnerabilityTable::uniform(workloads::heterogeneous_suite());
    EXPECT_DOUBLE_EQ(table.sdc_weight("SC"), 1.0);
    EXPECT_DOUBLE_EQ(table.due_weight("BFS"), 1.0);
}

TEST(VulnerabilityTable, MeasuredWeightsAverageToOne) {
    const auto suite = workloads::heterogeneous_suite();
    const auto table = VulnerabilityTable::measure(suite, 150, 5);
    double sdc_sum = 0.0;
    double due_sum = 0.0;
    for (const auto& entry : suite) {
        sdc_sum += table.sdc_weight(entry.name);
        due_sum += table.due_weight(entry.name);
    }
    EXPECT_NEAR(sdc_sum / 3.0, 1.0, 1e-9);
    EXPECT_NEAR(due_sum / 3.0, 1.0, 1e-9);
}

TEST(VulnerabilityTable, UnknownWorkloadThrows) {
    const auto table = VulnerabilityTable::uniform(workloads::hpc_suite());
    EXPECT_THROW((void)table.sdc_weight("nonexistent"), std::out_of_range);
}

TEST(VulnerabilityTable, EmptySuiteRejected) {
    EXPECT_THROW(VulnerabilityTable::measure({}, 10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tnr::faultinject

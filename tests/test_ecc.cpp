// SECDED Hamming(72,64) tests: exhaustive single-bit correction, double-bit
// detection over a large random sample, and encode/decode round trips.

#include <gtest/gtest.h>

#include "memory/ecc.hpp"
#include "stats/rng.hpp"

namespace tnr::memory {
namespace {

TEST(Secded, CleanRoundTrip) {
    stats::Rng rng(90);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t data = rng.next();
        Codeword word = Secded::encode(data);
        EXPECT_EQ(Secded::decode(word), EccOutcome::kClean);
        EXPECT_EQ(word.data, data);
    }
}

TEST(Secded, ExhaustiveSingleBitCorrection) {
    // Every one of the 72 bit positions, over several data words.
    stats::Rng rng(91);
    for (int w = 0; w < 32; ++w) {
        const std::uint64_t data = rng.next();
        for (std::uint8_t bit = 0; bit < 72; ++bit) {
            Codeword word = Secded::encode(data);
            word.flip(bit);
            const EccOutcome outcome = Secded::decode(word);
            EXPECT_EQ(outcome, EccOutcome::kCorrectedSingle)
                << "bit " << static_cast<int>(bit);
            EXPECT_EQ(word.data, data) << "bit " << static_cast<int>(bit);
        }
    }
}

TEST(Secded, DoubleBitAlwaysDetectedNeverMiscorrected) {
    stats::Rng rng(92);
    for (int trial = 0; trial < 20000; ++trial) {
        const std::uint64_t data = rng.next();
        Codeword word = Secded::encode(data);
        const auto b1 = static_cast<std::uint8_t>(rng.uniform_index(72));
        auto b2 = static_cast<std::uint8_t>(rng.uniform_index(72));
        while (b2 == b1) b2 = static_cast<std::uint8_t>(rng.uniform_index(72));
        word.flip(b1);
        word.flip(b2);
        EXPECT_EQ(Secded::decode(word), EccOutcome::kDetectedDouble)
            << "bits " << static_cast<int>(b1) << "," << static_cast<int>(b2);
    }
}

TEST(Secded, TripleBitNeverSilentlyAccepted) {
    // SECDED cannot always catch >=3 flips; but it must never return kClean
    // while the data is wrong less often than raw chance would. We assert a
    // weaker, still meaningful contract: if decode says kClean, the data
    // must actually be clean, or the corruption touched only check bits.
    stats::Rng rng(93);
    int silent_data_corruption = 0;
    constexpr int trials = 20000;
    for (int trial = 0; trial < trials; ++trial) {
        const std::uint64_t data = rng.next();
        Codeword word = Secded::encode(data);
        std::uint8_t bits[3];
        for (auto& b : bits) b = static_cast<std::uint8_t>(rng.uniform_index(72));
        if (bits[0] == bits[1] || bits[1] == bits[2] || bits[0] == bits[2]) {
            continue;
        }
        for (const auto b : bits) word.flip(b);
        const EccOutcome outcome = Secded::decode(word);
        if ((outcome == EccOutcome::kClean ||
             outcome == EccOutcome::kCorrectedSingle) &&
            word.data != data) {
            ++silent_data_corruption;
        }
    }
    // Triple faults can alias to valid-looking words; the rate should be
    // bounded well below 100% (here: whatever the code's geometry gives,
    // empirically ~60-80% get mis-handled, but *some* detection persists).
    EXPECT_LT(silent_data_corruption, trials);
    EXPECT_GT(silent_data_corruption, 0);  // documents the SECDED limit.
}

TEST(Secded, ParityBitErrorCorrected) {
    Codeword word = Secded::encode(0xDEADBEEFCAFEF00DULL);
    word.flip(71);  // overall parity bit.
    EXPECT_EQ(Secded::decode(word), EccOutcome::kCorrectedSingle);
    EXPECT_EQ(word.data, 0xDEADBEEFCAFEF00DULL);
}

TEST(Secded, CheckBitErrorCorrected) {
    Codeword word = Secded::encode(0x0123456789ABCDEFULL);
    word.flip(64);  // first Hamming check bit.
    EXPECT_EQ(Secded::decode(word), EccOutcome::kCorrectedSingle);
    EXPECT_EQ(word.data, 0x0123456789ABCDEFULL);
}

TEST(Secded, AllZerosAndAllOnes) {
    for (const std::uint64_t data : {0ULL, ~0ULL}) {
        Codeword word = Secded::encode(data);
        EXPECT_EQ(Secded::decode(word), EccOutcome::kClean);
        word.flip(13);
        EXPECT_EQ(Secded::decode(word), EccOutcome::kCorrectedSingle);
        EXPECT_EQ(word.data, data);
    }
}

TEST(Codeword, FlipValidation) {
    Codeword word;
    EXPECT_THROW(word.flip(72), std::out_of_range);
}

TEST(Secded, OutcomeNames) {
    EXPECT_STREQ(to_string(EccOutcome::kClean), "clean");
    EXPECT_STREQ(to_string(EccOutcome::kCorrectedSingle), "corrected-single");
    EXPECT_STREQ(to_string(EccOutcome::kDetectedDouble), "detected-double");
    EXPECT_STREQ(to_string(EccOutcome::kUndetected), "undetected");
}

// The paper's §IV takeaway, executed: single-bit transient/intermittent DRAM
// errors are fully correctable by SECDED; SEFI bursts are not.
TEST(Secded, PaperConclusionSingleBitErrorsCorrectable) {
    stats::Rng rng(94);
    int corrected = 0;
    constexpr int n = 5000;
    for (int i = 0; i < n; ++i) {
        Codeword word = Secded::encode(rng.next());
        word.flip(static_cast<std::uint8_t>(rng.uniform_index(64)));
        if (Secded::decode(word) == EccOutcome::kCorrectedSingle) ++corrected;
    }
    EXPECT_EQ(corrected, n);
}

TEST(Secded, PaperConclusionSefiBurstsEscapeEcc) {
    // A SEFI corrupts a long run of cells: within one 64-bit word that is
    // many flips, which SECDED cannot correct.
    Codeword word = Secded::encode(0xAAAAAAAAAAAAAAAAULL);
    for (std::uint8_t b = 0; b < 16; ++b) word.flip(b);
    const EccOutcome outcome = Secded::decode(word);
    EXPECT_NE(outcome, EccOutcome::kClean);
    EXPECT_NE(word.data, 0xAAAAAAAAAAAAAAAAULL);
}

}  // namespace
}  // namespace tnr::memory

// SIMD layer tests: the runtime dispatch kill switches, the batched RNG
// facade's bitwise and stream contracts, and the vectorized cross-section
// sweeps (including cadmium's inserted kink nodes) against their scalar
// references.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/simd/dispatch.hpp"
#include "core/simd/rng_block.hpp"
#include "physics/materials.hpp"
#include "physics/xs_table.hpp"
#include "stats/rng.hpp"

namespace tnr::core::simd {
namespace {

bool avx2_tier_runs() { return resolve(Policy::kForceAvx2) == Tier::kAvx2; }

TEST(SimdDispatch, EnvStringKillSwitch) {
    EXPECT_EQ(tier_from_env_string("off", Tier::kAvx2), Tier::kScalar);
    EXPECT_EQ(tier_from_env_string("scalar", Tier::kAvx2), Tier::kScalar);
    EXPECT_EQ(tier_from_env_string("0", Tier::kAvx2), Tier::kScalar);
    // Unset or any other value defers to the hardware tier.
    EXPECT_EQ(tier_from_env_string(nullptr, Tier::kAvx2), Tier::kAvx2);
    EXPECT_EQ(tier_from_env_string("auto", Tier::kAvx2), Tier::kAvx2);
    EXPECT_EQ(tier_from_env_string("avx2", Tier::kScalar), Tier::kScalar);
}

TEST(SimdDispatch, PolicyLayering) {
    // kForceScalar always wins; kAuto / kForceAvx2 cannot override the
    // stronger build/env/CPU switches upward.
    EXPECT_EQ(resolve(Policy::kForceScalar), Tier::kScalar);
    EXPECT_EQ(resolve(Policy::kAuto), default_tier());
    EXPECT_EQ(resolve(Policy::kForceAvx2), default_tier());
    if (avx2_usable()) EXPECT_TRUE(avx2_compiled());
}

TEST(SimdRngBlock, UniformFillIsBitwiseTierInvariant) {
    constexpr std::size_t kN = 4097;  // odd tail on purpose.
    std::vector<double> scalar(kN), vec(kN);
    stats::Rng a(123), b(123), ref(123);
    fill_uniform(a, scalar.data(), kN, Tier::kScalar);
    fill_uniform(b, vec.data(), kN, Tier::kAvx2);
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(scalar[i], vec[i]) << i;
        ASSERT_EQ(scalar[i], ref.uniform()) << i;
    }
    // Stream contract: both tiers consumed exactly kN raw draws (ref did
    // too, via its kN uniform() calls above).
    stats::Rng advanced(123);
    for (std::size_t i = 0; i < kN; ++i) advanced.next();
    const std::uint64_t expected_next = advanced.next();
    EXPECT_EQ(a.next(), expected_next);
    EXPECT_EQ(b.next(), expected_next);
}

TEST(SimdRngBlock, ScalarExponentialFillMatchesRngBitwise) {
    constexpr std::size_t kN = 1000;
    std::vector<double> out(kN);
    stats::Rng a(55), ref(55);
    fill_unit_exponential(a, out.data(), kN, Tier::kScalar);
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(out[i], ref.exponential(1.0)) << i;
    }
    EXPECT_EQ(a.next(), ref.next());
}

TEST(SimdRngBlock, Avx2ExponentialFillMatchesScalarToRounding) {
    if (!avx2_tier_runs()) GTEST_SKIP() << "AVX2 tier unavailable";
    constexpr std::size_t kN = 8191;
    std::vector<double> scalar(kN), vec(kN);
    stats::Rng a(99), b(99);
    fill_unit_exponential(a, scalar.data(), kN, Tier::kScalar);
    fill_unit_exponential(b, vec.data(), kN, Tier::kAvx2);
    double sum = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_TRUE(std::isfinite(vec[i]) && vec[i] >= 0.0) << i;
        // 1-u is exact, so the two tiers differ only by the vector log's
        // final rounding (~1 ulp).
        ASSERT_NEAR(vec[i], scalar[i], 1e-13 * std::max(1.0, scalar[i]))
            << i;
        sum += vec[i];
    }
    EXPECT_NEAR(sum / static_cast<double>(kN), 1.0, 0.05);  // Exp(1) mean.
    EXPECT_EQ(a.next(), b.next());  // identical raw-draw consumption.
}

/// Log-spaced energies plus a dense cluster across cadmium's kink region
/// (the 0.5 eV resonance cutoff and the tail/epithermal crossover).
std::vector<double> probe_energies(const physics::MaterialXsTable& table) {
    std::vector<double> e;
    const double lo = table.min_energy_ev();
    const double hi = table.max_energy_ev();
    const double log_lo = std::log(lo);
    const double step = (std::log(hi) - log_lo) / 1023.0;
    for (int i = 0; i < 1024; ++i) {
        e.push_back(std::exp(log_lo + step * i));
    }
    for (double x = 0.40; x <= 0.70; x += 0.0007) e.push_back(x);
    for (double x = 1.0; x <= 10.0; x += 0.021) e.push_back(x);
    return e;
}

TEST(SimdXsTable, BatchLookupMatchesScalarAcrossMaterials) {
    for (const auto& mat :
         {physics::Material::water(), physics::Material::cadmium(),
          physics::Material::polyethylene(), physics::Material::borated_poly(),
          physics::Material::concrete()}) {
        const physics::MaterialXsTable table(mat);
        const auto e = probe_energies(table);
        const std::size_t n = e.size();
        std::vector<double> ss(n), sa(n), frac(n);
        std::vector<std::uint32_t> node(n);

        // Scalar tier: bitwise identical to n single lookups.
        table.lookup_batch(e.data(), n, ss.data(), sa.data(), node.data(),
                           frac.data(), Tier::kScalar);
        for (std::size_t i = 0; i < n; ++i) {
            const auto lk = table.lookup(e[i]);
            ASSERT_EQ(ss[i], lk.sigma_scatter) << mat.name() << " " << e[i];
            ASSERT_EQ(sa[i], lk.sigma_absorb) << mat.name() << " " << e[i];
            ASSERT_EQ(node[i], lk.node) << mat.name() << " " << e[i];
            ASSERT_EQ(frac[i], lk.frac) << mat.name() << " " << e[i];
        }

        if (!avx2_tier_runs()) continue;
        table.lookup_batch(e.data(), n, ss.data(), sa.data(), node.data(),
                           frac.data(), Tier::kAvx2);
        for (std::size_t i = 0; i < n; ++i) {
            const auto lk = table.lookup(e[i]);
            // Same table, same interpolation — only the vector log's ~1 ulp
            // rounding can move the in-cell position.
            ASSERT_NEAR(ss[i], lk.sigma_scatter, 1e-9 * lk.sigma_scatter)
                << mat.name() << " " << e[i];
            ASSERT_NEAR(sa[i], lk.sigma_absorb,
                        1e-9 * std::max(lk.sigma_absorb, 1e-30))
                << mat.name() << " " << e[i];
            // And the table itself honours the exact-physics contract.
            const double exact_s = mat.sigma_scatter(e[i]);
            const double exact_a = mat.sigma_absorb(e[i]);
            ASSERT_NEAR(ss[i], exact_s, 1e-3 * exact_s)
                << mat.name() << " " << e[i];
            if (exact_a > 0.0) {
                ASSERT_NEAR(sa[i], exact_a, 1e-3 * exact_a)
                    << mat.name() << " " << e[i];
            }
        }
    }
}

TEST(SimdXsTable, ScatterMassBatchTiersAgree) {
    const auto mat = physics::Material::concrete();  // multi-component.
    const physics::MaterialXsTable table(mat);
    constexpr std::size_t kN = 4096;
    std::vector<double> e(kN), ss(kN), sa(kN), frac(kN), u(kN);
    std::vector<std::uint32_t> node(kN);
    stats::Rng rng(2718);
    fill_uniform(rng, e.data(), kN, Tier::kScalar);
    for (auto& x : e) x = 1e-3 * std::pow(10.0, 9.0 * x);  // 1 meV..1 MeV.
    table.lookup_batch(e.data(), kN, ss.data(), sa.data(), node.data(),
                       frac.data(), Tier::kScalar);
    fill_uniform(rng, u.data(), kN, Tier::kScalar);

    std::vector<double> mass_scalar(kN), mass_vec(kN);
    table.sample_scatter_mass_batch(node.data(), frac.data(), u.data(), kN,
                                    mass_scalar.data(), Tier::kScalar);
    // The scalar batch is the same cumulative walk as sample_scatter_mass.
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_GT(mass_scalar[i], 0.0) << i;
    }
    if (!avx2_tier_runs()) GTEST_SKIP() << "AVX2 tier unavailable";
    table.sample_scatter_mass_batch(node.data(), frac.data(), u.data(), kN,
                                    mass_vec.data(), Tier::kAvx2);
    for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(mass_scalar[i], mass_vec[i]) << i;
    }
}

}  // namespace
}  // namespace tnr::core::simd

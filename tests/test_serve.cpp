// Serve engine tests: the NDJSON protocol, the LRU response cache, the
// byte-identity contract with the one-shot CLI, deadline enforcement, and
// the SIGINT drain path.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli/cli.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace tnr::serve {
namespace {

namespace json = core::obs::json;
namespace parallel = core::parallel;

/// Runs one serve session over the given request lines.
struct Session {
    ServeStats stats;
    std::vector<std::string> lines;  ///< response lines, in order.
};

Session run_serve(const std::vector<std::string>& requests,
                  ServeOptions options = {}) {
    std::string input;
    for (const auto& r : requests) input += r + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream diag;
    Server server(options);
    Session session;
    session.stats = server.serve(in, out, diag);
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) {
        session.lines.push_back(line);
    }
    return session;
}

/// The "output" payload of one ok response line.
std::string output_of(const std::string& line) {
    const auto doc = json::parse(line);
    EXPECT_TRUE(doc.has_value()) << line;
    if (!doc) return {};
    EXPECT_EQ(doc->find("status")->str, "ok") << line;
    const auto* output = doc->find("output");
    EXPECT_NE(output, nullptr) << line;
    return output != nullptr ? output->str : std::string();
}

std::string status_of(const std::string& line) {
    const auto doc = json::parse(line);
    EXPECT_TRUE(doc.has_value()) << line;
    return doc ? doc->find("status")->str : std::string();
}

std::string cli_stdout(const std::vector<std::string>& args) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::run(args, out, err), 0) << err.str();
    return out.str();
}

// --- Protocol --------------------------------------------------------------

TEST(ServeProtocol, CanonicalFormIgnoresKeyOrderIdAndDeadline) {
    const auto a = json::parse(
        R"({"id":"a","method":"fit","params":{"site":"nyc","rainy":true}})");
    const auto b = json::parse(
        R"({"id":"b","deadline_ms":50,"method":"fit",)"
        R"("params":{"rainy":true,"site":"nyc"}})");
    ASSERT_TRUE(a && b);
    EXPECT_EQ(canonical_request(parse_request(*a)),
              canonical_request(parse_request(*b)));
}

TEST(ServeProtocol, CanonicalFormIsTypeTagged) {
    const auto str = json::parse(R"({"method":"m","params":{"x":"1"}})");
    const auto num = json::parse(R"({"method":"m","params":{"x":1}})");
    ASSERT_TRUE(str && num);
    EXPECT_NE(canonical_request(parse_request(*str)),
              canonical_request(parse_request(*num)));
}

TEST(ServeProtocol, RejectsMalformedRequests) {
    for (const char* doc :
         {R"(["not an object"])", R"({"params":{}})", R"({"method":5})",
          R"({"method":"fit","bogus":1})", R"({"method":"fit","id":7})",
          R"({"method":"fit","deadline_ms":-1})",
          R"({"method":"fit","params":{"x":[1]}})"}) {
        const auto parsed = json::parse(doc);
        ASSERT_TRUE(parsed.has_value()) << doc;
        EXPECT_THROW(parse_request(*parsed), core::RunError) << doc;
    }
}

// --- Cache -----------------------------------------------------------------

TEST(ServeCache, LruEvictsOldestAndCountsIntoRegistry) {
    auto& reg = core::obs::Registry::global();
    reg.counter("serve.cache.hits").reset();
    reg.counter("serve.cache.misses").reset();
    reg.counter("serve.cache.evictions").reset();

    ResponseCache cache(2);
    const auto key = [](const char* s) { return canonical_hash(s); };
    EXPECT_FALSE(cache.get(key("a"), "a").has_value());
    cache.put(key("a"), "a", "body-a");
    cache.put(key("b"), "b", "body-b");
    EXPECT_EQ(cache.get(key("a"), "a").value(), "body-a");  // refreshes a
    cache.put(key("c"), "c", "body-c");                     // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.get(key("b"), "b").has_value());
    EXPECT_EQ(cache.get(key("a"), "a").value(), "body-a");
    EXPECT_EQ(cache.get(key("c"), "c").value(), "body-c");

    EXPECT_EQ(reg.counter("serve.cache.hits").value(), 3u);
    EXPECT_EQ(reg.counter("serve.cache.misses").value(), 2u);
    EXPECT_EQ(reg.counter("serve.cache.evictions").value(), 1u);
}

TEST(ServeCache, HashCollisionDegradesToMiss) {
    ResponseCache cache(4);
    const std::uint64_t key = 42;  // force both entries onto one key.
    cache.put(key, "first", "body-1");
    EXPECT_FALSE(cache.get(key, "second").has_value());
    EXPECT_EQ(cache.get(key, "first").value(), "body-1");
}

TEST(ServeCache, ZeroCapacityDisablesCaching) {
    ResponseCache cache(0);
    cache.put(canonical_hash("a"), "a", "body");
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get(canonical_hash("a"), "a").has_value());
}

// --- Acceptance (a): served output == one-shot CLI output ------------------

TEST(Serve, FitMatchesOneShotCliByteForByte) {
    const auto session = run_serve(
        {R"({"id":"q","method":"fit",)"
         R"("params":{"site":"leadville","rainy":true,"device":"NVIDIA K20"}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"fit", "--site", "leadville", "--rainy", "--device",
                          "NVIDIA K20"}));
}

TEST(Serve, SigmaRatioMatchesOneShotCampaignByteForByte) {
    const auto session = run_serve(
        {R"({"id":"q","method":"sigma-ratio",)"
         R"("params":{"hours":0.2,"seed":7}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"campaign", "--hours", "0.2", "--seed", "7"}));
}

TEST(Serve, CampaignSliceMatchesSingleDeviceRun) {
    const auto a = run_serve(
        {R"({"id":"x","method":"campaign-slice",)"
         R"("params":{"device":"NVIDIA TitanX","hours":0.1,"seed":3}})"});
    ASSERT_EQ(a.lines.size(), 1u);
    const std::string output = output_of(a.lines[0]);
    EXPECT_NE(output.find("NVIDIA TitanX"), std::string::npos);
    // Only the requested device's rows.
    EXPECT_EQ(output.find("NVIDIA K20"), std::string::npos);
}

TEST(Serve, TransmissionMatchesOneShotCliByteForByte) {
    // Both modes of the direct slab-transport query: analog and the
    // variance-reduced implicit-capture kernel, each byte-identical to the
    // one-shot CLI command for the same parameters.
    const auto session = run_serve(
        {R"({"id":"t1","method":"transmission",)"
         R"("params":{"material":"water","thickness-cm":2.0,)"
         R"("energy-ev":1000.0,"histories":20000,"seed":11}})",
         R"({"id":"t2","method":"transmission",)"
         R"("params":{"material":"water","thickness-cm":2.0,)"
         R"("energy-ev":1000.0,"histories":20000,"seed":11,)"
         R"("mode":"implicit"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"transmission", "--material", "water",
                          "--thickness-cm", "2.0", "--energy-ev", "1000.0",
                          "--histories", "20000", "--seed", "11"}));
    EXPECT_EQ(output_of(session.lines[1]),
              cli_stdout({"transmission", "--material", "water",
                          "--thickness-cm", "2.0", "--energy-ev", "1000.0",
                          "--histories", "20000", "--seed", "11", "--mode",
                          "implicit"}));
    EXPECT_NE(output_of(session.lines[0]), output_of(session.lines[1]));
}

TEST(Serve, TransmissionRejectsBadModeAndMaterial) {
    const auto session = run_serve(
        {R"({"id":"b1","method":"transmission","params":{"mode":"magic"}})",
         R"({"id":"b2","method":"transmission",)"
         R"("params":{"material":"unobtainium"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
}

TEST(Serve, TransportKnobsRejectUnknownValuesUniformly) {
    // The --mode/--batch-size/--simd vocabulary is part of the serve schema
    // on every method that runs (or configures) transport: an unknown value
    // is an error response, never a silent default.
    const auto session = run_serve(
        {R"({"id":"s1","method":"transmission","params":{"simd":"frobnicate"}})",
         R"({"id":"s2","method":"transmission",)"
         R"("params":{"batch-size":99999999}})",
         R"({"id":"s3","method":"sigma-ratio",)"
         R"("params":{"hours":0.1,"mode":"quantum"}})",
         R"({"id":"s4","method":"campaign-slice",)"
         R"("params":{"device":"NVIDIA K20","hours":0.1,"simd":"banana"}})"});
    ASSERT_EQ(session.lines.size(), 4u);
    for (const auto& line : session.lines) {
        EXPECT_EQ(status_of(line), "error") << line;
    }
}

TEST(Serve, TransmissionScalarSimdKnobMatchesCliByteForByte) {
    const auto session = run_serve(
        {R"({"id":"k1","method":"transmission",)"
         R"("params":{"histories":5000,"mode":"implicit","seed":21,)"
         R"("simd":"scalar","batch-size":128}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"transmission", "--histories", "5000", "--mode",
                          "implicit", "--seed", "21", "--simd", "scalar",
                          "--batch-size", "128"}));
}

// --- Acceptance (b): repeat requests hit the cache, byte-identically -------

TEST(Serve, RepeatedRequestServedFromCacheIsByteIdentical) {
    auto& hits = core::obs::Registry::global().counter("serve.cache.hits");
    hits.reset();
    const auto session = run_serve(
        {R"({"id":"r1","method":"detector","params":{"seed":9}})",
         R"({"id":"r2","method":"detector","params":{"seed":9}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(session.stats.cache_hits, 1u);
    EXPECT_GE(hits.value(), 1u);
    // Different ids, identical cached body: the lines match after the id.
    const std::string tail0 = session.lines[0].substr(session.lines[0].find(','));
    const std::string tail1 = session.lines[1].substr(session.lines[1].find(','));
    EXPECT_EQ(tail0, tail1);
    EXPECT_NE(session.lines[0], session.lines[1]);  // ids still differ.
}

TEST(Serve, ErrorResponsesAreNotCached) {
    const auto session = run_serve(
        {R"({"id":"e1","method":"fit","params":{"site":"mars"}})",
         R"({"id":"e2","method":"fit","params":{"site":"mars"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
    EXPECT_EQ(session.stats.cache_hits, 0u);
    EXPECT_EQ(session.stats.errors, 2u);
}

// --- Error handling: bad requests never kill the server --------------------

TEST(Serve, BadRequestsYieldErrorResponsesAndServingContinues) {
    const auto session = run_serve(
        {"this is not json",
         R"({"id":"u","method":"frobnicate"})",
         R"({"id":"p","method":"fit","params":{"bogus":1}})",
         R"({"id":"k","method":"detector","params":{"seed":"nine"}})",
         R"({"id":"ok","method":"list-devices"})"});
    ASSERT_EQ(session.lines.size(), 5u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
    EXPECT_EQ(status_of(session.lines[2]), "error");
    EXPECT_EQ(status_of(session.lines[3]), "error");
    EXPECT_EQ(status_of(session.lines[4]), "ok");
    EXPECT_EQ(session.stats.errors, 4u);
    EXPECT_EQ(session.stats.ok, 1u);
    EXPECT_FALSE(session.stats.stopped);

    // Error categories are the RunError taxonomy.
    const auto unknown = json::parse(session.lines[1]);
    ASSERT_TRUE(unknown.has_value());
    EXPECT_EQ(unknown->find("error")->find("category")->str, "config");
}

TEST(Serve, ControlCharactersInIdRoundTrip) {
    const std::string id = "tab\tand\x01ctl";
    const std::string line = std::string(R"({"id":")") + json::escape(id) +
                             R"(","method":"list-devices"})";
    const auto session = run_serve({line});
    ASSERT_EQ(session.lines.size(), 1u);
    const auto parsed = json::parse(session.lines[0]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("id")->str, id);
}

// --- Acceptance (c): deadline_ms -> cancelled response, server lives on ----

TEST(Serve, ElapsedDeadlineYieldsCancelledResponseAndServerKeepsServing) {
    const auto session = run_serve(
        {R"({"id":"late","method":"sigma-ratio",)"
         R"("params":{"hours":0.2,"seed":7},"deadline_ms":0})",
         R"({"id":"after","method":"list-devices"})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "cancelled");
    const auto cancelled = json::parse(session.lines[0]);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->find("error")->find("category")->str, "cancelled");
    EXPECT_NE(cancelled->find("error")->find("message")->str.find("deadline"),
              std::string::npos);
    // The server survived the cancellation and answered the next request.
    EXPECT_EQ(status_of(session.lines[1]), "ok");
    EXPECT_EQ(session.stats.cancelled, 1u);
    EXPECT_FALSE(session.stats.stopped);
}

TEST(Serve, DeadlineCancelsInFlightMonteCarloWork) {
    // A deadline far shorter than the campaign (the AVF pre-study dominates
    // its run time): the per-request token trips at a campaign checkpoint
    // and the request reports cancelled.
    const auto session = run_serve(
        {R"({"id":"mc","method":"sigma-ratio",)"
         R"("params":{"hours":2,"seed":7,"avf-trials":3000},"deadline_ms":200})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(status_of(session.lines[0]), "cancelled");
}

// --- Acceptance (d): SIGINT drain ------------------------------------------

/// A request stream that trips a cancel token when it runs dry — the
/// in-process equivalent of SIGINT arriving while serve is blocked reading.
class TripTokenAtEof : public std::stringbuf {
public:
    TripTokenAtEof(const std::string& s, parallel::CancelToken& token)
        : std::stringbuf(s), token_(token) {}

protected:
    int_type underflow() override {
        const int_type c = std::stringbuf::underflow();
        if (traits_type::eq_int_type(c, traits_type::eof())) token_.cancel();
        return c;
    }

private:
    parallel::CancelToken& token_;
};

TEST(Serve, StopTokenDrainsInFlightWorkAndReportsStopped) {
    parallel::CancelToken stop;
    TripTokenAtEof buf(
        "{\"id\":\"a\",\"method\":\"list-devices\"}\n"
        "{\"id\":\"b\",\"method\":\"detector\",\"params\":{\"seed\":5}}\n",
        stop);
    std::istream in(&buf);
    std::ostringstream out;
    std::ostringstream diag;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    const ServeStats stats = server.serve(in, out, diag);
    EXPECT_TRUE(stats.stopped);
    // Every admitted request got a response before serve() returned: either
    // it finished, or the stop token (seen through the per-request token's
    // parent link) turned it into a cancelled response. Nothing is dropped.
    EXPECT_EQ(stats.ok + stats.cancelled, 2u);
    std::vector<std::string> lines;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
        const auto doc = json::parse(line);
        ASSERT_TRUE(doc.has_value()) << line;
        const std::string status = doc->find("status")->str;
        EXPECT_TRUE(status == "ok" || status == "cancelled") << line;
    }
}

TEST(Serve, CliExitsWith130AndFlushesSinksOnStop) {
    auto& stop = parallel::global_cancel_token();
    stop.reset();
    const auto metrics_path =
        std::filesystem::temp_directory_path() / "tnr_test_serve_metrics.json";
    std::filesystem::remove(metrics_path);

    TripTokenAtEof buf("{\"id\":\"a\",\"method\":\"list-devices\"}\n", stop);
    std::istream in(&buf);
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(
        {"serve", "--metrics-out", metrics_path.string()}, in, out, err);
    stop.reset();  // do not poison later tests.
    EXPECT_EQ(code, 130);

    // The admitted request still got a response line (finished or
    // cancelled by the drain)...
    const auto response = json::parse(out.str());
    ASSERT_TRUE(response.has_value()) << out.str();
    EXPECT_EQ(response->find("id")->str, "a");
    // ...and the metrics sink was still flushed, recording the session.
    std::ifstream file(metrics_path);
    std::ostringstream content;
    content << file.rdbuf();
    const auto doc = json::parse(content.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("manifest")->find("status")->str, "cancelled");
    const auto* stats = doc->find("manifest")->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_DOUBLE_EQ(stats->find("serve.requests")->num, 1.0);
    std::filesystem::remove(metrics_path);
}

// --- Scheduler -------------------------------------------------------------

TEST(Serve, ManyConcurrentRequestsRespectOrderUnderSmallInflightBound) {
    std::vector<std::string> requests;
    std::vector<std::string> expected;
    for (int seed = 0; seed < 6; ++seed) {
        requests.push_back(R"({"id":"s)" + std::to_string(seed) +
                           R"(","method":"detector","params":{"seed":)" +
                           std::to_string(seed) + "}}");
        expected.push_back("s" + std::to_string(seed));
    }
    ServeOptions options;
    options.max_inflight = 2;
    const auto session = run_serve(requests, options);
    ASSERT_EQ(session.lines.size(), requests.size());
    for (std::size_t i = 0; i < session.lines.size(); ++i) {
        const auto doc = json::parse(session.lines[i]);
        ASSERT_TRUE(doc.has_value());
        EXPECT_EQ(doc->find("id")->str, expected[i]) << "line " << i;
        EXPECT_EQ(doc->find("status")->str, "ok") << session.lines[i];
    }
}

// --- Unix socket front-end -------------------------------------------------

TEST(Serve, UnixSocketRoundTrip) {
    const std::string path = "/tmp/tnr_test_serve.sock";
    std::filesystem::remove(path);
    parallel::CancelToken stop;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    std::ostringstream diag;
    std::thread server_thread(
        [&] { server.serve_unix_socket(path, diag); });

    // Wait for the socket to appear, then connect as a client.
    int fd = -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    for (int attempt = 0; attempt < 200 && fd < 0; ++attempt) {
        const int candidate = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(candidate, 0);
        if (::connect(candidate, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            fd = candidate;
        } else {
            ::close(candidate);
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ASSERT_GE(fd, 0) << "could not connect to " << path;

    const std::string request = "{\"id\":\"s\",\"method\":\"list-devices\"}\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char c = 0;
    while (::read(fd, &c, 1) == 1 && c != '\n') response.push_back(c);
    ::close(fd);
    stop.cancel();
    server_thread.join();
    std::filesystem::remove(path);

    const auto doc = json::parse(response);
    ASSERT_TRUE(doc.has_value()) << response;
    EXPECT_EQ(doc->find("id")->str, "s");
    EXPECT_EQ(doc->find("status")->str, "ok");
    EXPECT_EQ(doc->find("output")->str, cli_stdout({"list-devices"}));
}

// --- Golden transcript -----------------------------------------------------

std::string data_file(const char* name) {
    return std::string(TNR_SOURCE_DIR) + "/tests/data/" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream file(path);
    EXPECT_TRUE(file.is_open()) << path;
    std::ostringstream ss;
    ss << file.rdbuf();
    return ss.str();
}

TEST(Serve, GoldenTranscriptIsStable) {
    std::istringstream in(slurp(data_file("serve_golden_requests.jsonl")));
    std::ostringstream out;
    std::ostringstream diag;
    Server server({});
    const ServeStats stats = server.serve(in, out, diag);
    EXPECT_EQ(out.str(), slurp(data_file("serve_golden_responses.jsonl")));
    EXPECT_GE(stats.cache_hits, 1u) << "golden transcript must exercise the "
                                       "response cache";
}

}  // namespace
}  // namespace tnr::serve

// Serve engine tests: the NDJSON protocol, the LRU response cache, the
// byte-identity contract with the one-shot CLI, deadline enforcement, and
// the SIGINT drain path.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli/cli.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"

namespace tnr::serve {
namespace {

namespace json = core::obs::json;
namespace parallel = core::parallel;

/// Runs one serve session over the given request lines.
struct Session {
    ServeStats stats;
    std::vector<std::string> lines;  ///< response lines, in order.
};

Session run_serve(const std::vector<std::string>& requests,
                  ServeOptions options = {}) {
    std::string input;
    for (const auto& r : requests) input += r + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream diag;
    Server server(options);
    Session session;
    session.stats = server.serve(in, out, diag);
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) {
        session.lines.push_back(line);
    }
    return session;
}

/// The "output" payload of one ok response line.
std::string output_of(const std::string& line) {
    const auto doc = json::parse(line);
    EXPECT_TRUE(doc.has_value()) << line;
    if (!doc) return {};
    EXPECT_EQ(doc->find("status")->str, "ok") << line;
    const auto* output = doc->find("output");
    EXPECT_NE(output, nullptr) << line;
    return output != nullptr ? output->str : std::string();
}

std::string status_of(const std::string& line) {
    const auto doc = json::parse(line);
    EXPECT_TRUE(doc.has_value()) << line;
    return doc ? doc->find("status")->str : std::string();
}

std::string cli_stdout(const std::vector<std::string>& args) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::run(args, out, err), 0) << err.str();
    return out.str();
}

// --- Protocol --------------------------------------------------------------

TEST(ServeProtocol, CanonicalFormIgnoresKeyOrderIdAndDeadline) {
    const auto a = json::parse(
        R"({"id":"a","method":"fit","params":{"site":"nyc","rainy":true}})");
    const auto b = json::parse(
        R"({"id":"b","deadline_ms":50,"method":"fit",)"
        R"("params":{"rainy":true,"site":"nyc"}})");
    ASSERT_TRUE(a && b);
    EXPECT_EQ(canonical_request(parse_request(*a)),
              canonical_request(parse_request(*b)));
}

TEST(ServeProtocol, CanonicalFormIsTypeTagged) {
    const auto str = json::parse(R"({"method":"m","params":{"x":"1"}})");
    const auto num = json::parse(R"({"method":"m","params":{"x":1}})");
    ASSERT_TRUE(str && num);
    EXPECT_NE(canonical_request(parse_request(*str)),
              canonical_request(parse_request(*num)));
}

TEST(ServeProtocol, RejectsMalformedRequests) {
    for (const char* doc :
         {R"(["not an object"])", R"({"params":{}})", R"({"method":5})",
          R"({"method":"fit","bogus":1})", R"({"method":"fit","id":7})",
          R"({"method":"fit","deadline_ms":-1})",
          R"({"method":"fit","params":{"x":[1]}})"}) {
        const auto parsed = json::parse(doc);
        ASSERT_TRUE(parsed.has_value()) << doc;
        EXPECT_THROW(parse_request(*parsed), core::RunError) << doc;
    }
}

// --- Cache -----------------------------------------------------------------

TEST(ServeCache, LruEvictsOldestAndCountsIntoRegistry) {
    auto& reg = core::obs::Registry::global();
    reg.counter("serve.cache.hits").reset();
    reg.counter("serve.cache.misses").reset();
    reg.counter("serve.cache.evictions").reset();

    ResponseCache cache(2);
    const auto key = [](const char* s) { return canonical_hash(s); };
    EXPECT_FALSE(cache.get(key("a"), "a").has_value());
    cache.put(key("a"), "a", "body-a");
    cache.put(key("b"), "b", "body-b");
    EXPECT_EQ(cache.get(key("a"), "a").value(), "body-a");  // refreshes a
    cache.put(key("c"), "c", "body-c");                     // evicts b
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.get(key("b"), "b").has_value());
    EXPECT_EQ(cache.get(key("a"), "a").value(), "body-a");
    EXPECT_EQ(cache.get(key("c"), "c").value(), "body-c");

    EXPECT_EQ(reg.counter("serve.cache.hits").value(), 3u);
    EXPECT_EQ(reg.counter("serve.cache.misses").value(), 2u);
    EXPECT_EQ(reg.counter("serve.cache.evictions").value(), 1u);
}

TEST(ServeCache, HashCollisionCountsApartFromTrueMisses) {
    auto& reg = core::obs::Registry::global();
    reg.counter("serve.cache.misses").reset();
    reg.counter("serve.cache.collisions").reset();

    ResponseCache cache(4);
    const std::uint64_t key = 42;  // force both entries onto one key.
    cache.put(key, "first", "body-1");
    // Same key, different canonical request: a collision, degraded to a
    // miss for the caller but counted apart from true misses.
    EXPECT_FALSE(cache.get(key, "second").has_value());
    EXPECT_EQ(cache.get(key, "first").value(), "body-1");
    // Unknown key: a true miss.
    EXPECT_FALSE(cache.get(key + 1, "third").has_value());

    EXPECT_EQ(reg.counter("serve.cache.collisions").value(), 1u);
    EXPECT_EQ(reg.counter("serve.cache.misses").value(), 1u);
}

TEST(ServeCache, ZeroCapacityDisablesCaching) {
    ResponseCache cache(0);
    cache.put(canonical_hash("a"), "a", "body");
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.get(canonical_hash("a"), "a").has_value());
}

// --- Acceptance (a): served output == one-shot CLI output ------------------

TEST(Serve, FitMatchesOneShotCliByteForByte) {
    const auto session = run_serve(
        {R"({"id":"q","method":"fit",)"
         R"("params":{"site":"leadville","rainy":true,"device":"NVIDIA K20"}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"fit", "--site", "leadville", "--rainy", "--device",
                          "NVIDIA K20"}));
}

TEST(Serve, SigmaRatioMatchesOneShotCampaignByteForByte) {
    const auto session = run_serve(
        {R"({"id":"q","method":"sigma-ratio",)"
         R"("params":{"hours":0.2,"seed":7}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"campaign", "--hours", "0.2", "--seed", "7"}));
}

TEST(Serve, CampaignSliceMatchesSingleDeviceRun) {
    const auto a = run_serve(
        {R"({"id":"x","method":"campaign-slice",)"
         R"("params":{"device":"NVIDIA TitanX","hours":0.1,"seed":3}})"});
    ASSERT_EQ(a.lines.size(), 1u);
    const std::string output = output_of(a.lines[0]);
    EXPECT_NE(output.find("NVIDIA TitanX"), std::string::npos);
    // Only the requested device's rows.
    EXPECT_EQ(output.find("NVIDIA K20"), std::string::npos);
}

TEST(Serve, TransmissionMatchesOneShotCliByteForByte) {
    // Both modes of the direct slab-transport query: analog and the
    // variance-reduced implicit-capture kernel, each byte-identical to the
    // one-shot CLI command for the same parameters.
    const auto session = run_serve(
        {R"({"id":"t1","method":"transmission",)"
         R"("params":{"material":"water","thickness-cm":2.0,)"
         R"("energy-ev":1000.0,"histories":20000,"seed":11}})",
         R"({"id":"t2","method":"transmission",)"
         R"("params":{"material":"water","thickness-cm":2.0,)"
         R"("energy-ev":1000.0,"histories":20000,"seed":11,)"
         R"("mode":"implicit"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"transmission", "--material", "water",
                          "--thickness-cm", "2.0", "--energy-ev", "1000.0",
                          "--histories", "20000", "--seed", "11"}));
    EXPECT_EQ(output_of(session.lines[1]),
              cli_stdout({"transmission", "--material", "water",
                          "--thickness-cm", "2.0", "--energy-ev", "1000.0",
                          "--histories", "20000", "--seed", "11", "--mode",
                          "implicit"}));
    EXPECT_NE(output_of(session.lines[0]), output_of(session.lines[1]));
}

TEST(Serve, TransmissionRejectsBadModeAndMaterial) {
    const auto session = run_serve(
        {R"({"id":"b1","method":"transmission","params":{"mode":"magic"}})",
         R"({"id":"b2","method":"transmission",)"
         R"("params":{"material":"unobtainium"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
}

TEST(Serve, TransportKnobsRejectUnknownValuesUniformly) {
    // The --mode/--batch-size/--simd vocabulary is part of the serve schema
    // on every method that runs (or configures) transport: an unknown value
    // is an error response, never a silent default.
    const auto session = run_serve(
        {R"({"id":"s1","method":"transmission","params":{"simd":"frobnicate"}})",
         R"({"id":"s2","method":"transmission",)"
         R"("params":{"batch-size":99999999}})",
         R"({"id":"s3","method":"sigma-ratio",)"
         R"("params":{"hours":0.1,"mode":"quantum"}})",
         R"({"id":"s4","method":"campaign-slice",)"
         R"("params":{"device":"NVIDIA K20","hours":0.1,"simd":"banana"}})"});
    ASSERT_EQ(session.lines.size(), 4u);
    for (const auto& line : session.lines) {
        EXPECT_EQ(status_of(line), "error") << line;
    }
}

TEST(Serve, TransmissionScalarSimdKnobMatchesCliByteForByte) {
    const auto session = run_serve(
        {R"({"id":"k1","method":"transmission",)"
         R"("params":{"histories":5000,"mode":"implicit","seed":21,)"
         R"("simd":"scalar","batch-size":128}})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(output_of(session.lines[0]),
              cli_stdout({"transmission", "--histories", "5000", "--mode",
                          "implicit", "--seed", "21", "--simd", "scalar",
                          "--batch-size", "128"}));
}

// --- Acceptance (b): repeat requests hit the cache, byte-identically -------

TEST(Serve, RepeatedRequestServedFromCacheIsByteIdentical) {
    auto& hits = core::obs::Registry::global().counter("serve.cache.hits");
    hits.reset();
    const auto session = run_serve(
        {R"({"id":"r1","method":"detector","params":{"seed":9}})",
         R"({"id":"r2","method":"detector","params":{"seed":9}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(session.stats.cache_hits, 1u);
    EXPECT_GE(hits.value(), 1u);
    // Different ids, identical cached body: the lines match after the id.
    const std::string tail0 = session.lines[0].substr(session.lines[0].find(','));
    const std::string tail1 = session.lines[1].substr(session.lines[1].find(','));
    EXPECT_EQ(tail0, tail1);
    EXPECT_NE(session.lines[0], session.lines[1]);  // ids still differ.
}

TEST(Serve, ErrorResponsesAreNotCached) {
    const auto session = run_serve(
        {R"({"id":"e1","method":"fit","params":{"site":"mars"}})",
         R"({"id":"e2","method":"fit","params":{"site":"mars"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
    EXPECT_EQ(session.stats.cache_hits, 0u);
    EXPECT_EQ(session.stats.errors, 2u);
}

// --- Error handling: bad requests never kill the server --------------------

TEST(Serve, BadRequestsYieldErrorResponsesAndServingContinues) {
    const auto session = run_serve(
        {"this is not json",
         R"({"id":"u","method":"frobnicate"})",
         R"({"id":"p","method":"fit","params":{"bogus":1}})",
         R"({"id":"k","method":"detector","params":{"seed":"nine"}})",
         R"({"id":"ok","method":"list-devices"})"});
    ASSERT_EQ(session.lines.size(), 5u);
    EXPECT_EQ(status_of(session.lines[0]), "error");
    EXPECT_EQ(status_of(session.lines[1]), "error");
    EXPECT_EQ(status_of(session.lines[2]), "error");
    EXPECT_EQ(status_of(session.lines[3]), "error");
    EXPECT_EQ(status_of(session.lines[4]), "ok");
    EXPECT_EQ(session.stats.errors, 4u);
    EXPECT_EQ(session.stats.ok, 1u);
    EXPECT_FALSE(session.stats.stopped);

    // Error categories are the RunError taxonomy.
    const auto unknown = json::parse(session.lines[1]);
    ASSERT_TRUE(unknown.has_value());
    EXPECT_EQ(unknown->find("error")->find("category")->str, "config");
}

TEST(Serve, ControlCharactersInIdRoundTrip) {
    const std::string id = "tab\tand\x01ctl";
    const std::string line = std::string(R"({"id":")") + json::escape(id) +
                             R"(","method":"list-devices"})";
    const auto session = run_serve({line});
    ASSERT_EQ(session.lines.size(), 1u);
    const auto parsed = json::parse(session.lines[0]);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("id")->str, id);
}

// --- Acceptance (c): deadline_ms -> cancelled response, server lives on ----

TEST(Serve, ElapsedDeadlineYieldsCancelledResponseAndServerKeepsServing) {
    const auto session = run_serve(
        {R"({"id":"late","method":"sigma-ratio",)"
         R"("params":{"hours":0.2,"seed":7},"deadline_ms":0})",
         R"({"id":"after","method":"list-devices"})"});
    ASSERT_EQ(session.lines.size(), 2u);
    EXPECT_EQ(status_of(session.lines[0]), "cancelled");
    const auto cancelled = json::parse(session.lines[0]);
    ASSERT_TRUE(cancelled.has_value());
    EXPECT_EQ(cancelled->find("error")->find("category")->str, "cancelled");
    EXPECT_NE(cancelled->find("error")->find("message")->str.find("deadline"),
              std::string::npos);
    // The server survived the cancellation and answered the next request.
    EXPECT_EQ(status_of(session.lines[1]), "ok");
    EXPECT_EQ(session.stats.cancelled, 1u);
    EXPECT_FALSE(session.stats.stopped);
}

TEST(Serve, DeadlineCancelsInFlightMonteCarloWork) {
    // A deadline far shorter than the campaign (the AVF pre-study dominates
    // its run time): the per-request token trips at a campaign checkpoint
    // and the request reports cancelled.
    const auto session = run_serve(
        {R"({"id":"mc","method":"sigma-ratio",)"
         R"("params":{"hours":2,"seed":7,"avf-trials":3000},"deadline_ms":200})"});
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_EQ(status_of(session.lines[0]), "cancelled");
}

// --- Acceptance (d): SIGINT drain ------------------------------------------

/// A request stream that trips a cancel token when it runs dry — the
/// in-process equivalent of SIGINT arriving while serve is blocked reading.
class TripTokenAtEof : public std::stringbuf {
public:
    TripTokenAtEof(const std::string& s, parallel::CancelToken& token)
        : std::stringbuf(s), token_(token) {}

protected:
    int_type underflow() override {
        const int_type c = std::stringbuf::underflow();
        if (traits_type::eq_int_type(c, traits_type::eof())) token_.cancel();
        return c;
    }

private:
    parallel::CancelToken& token_;
};

TEST(Serve, StopTokenDrainsInFlightWorkAndReportsStopped) {
    parallel::CancelToken stop;
    TripTokenAtEof buf(
        "{\"id\":\"a\",\"method\":\"list-devices\"}\n"
        "{\"id\":\"b\",\"method\":\"detector\",\"params\":{\"seed\":5}}\n",
        stop);
    std::istream in(&buf);
    std::ostringstream out;
    std::ostringstream diag;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    const ServeStats stats = server.serve(in, out, diag);
    EXPECT_TRUE(stats.stopped);
    // Every admitted request got a response before serve() returned: either
    // it finished, or the stop token (seen through the per-request token's
    // parent link) turned it into a cancelled response. Nothing is dropped.
    EXPECT_EQ(stats.ok + stats.cancelled, 2u);
    std::vector<std::string> lines;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    for (const auto& line : lines) {
        const auto doc = json::parse(line);
        ASSERT_TRUE(doc.has_value()) << line;
        const std::string status = doc->find("status")->str;
        EXPECT_TRUE(status == "ok" || status == "cancelled") << line;
    }
}

TEST(Serve, CliExitsWith130AndFlushesSinksOnStop) {
    auto& stop = parallel::global_cancel_token();
    stop.reset();
    const auto metrics_path =
        std::filesystem::temp_directory_path() / "tnr_test_serve_metrics.json";
    std::filesystem::remove(metrics_path);

    TripTokenAtEof buf("{\"id\":\"a\",\"method\":\"list-devices\"}\n", stop);
    std::istream in(&buf);
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::run(
        {"serve", "--metrics-out", metrics_path.string()}, in, out, err);
    stop.reset();  // do not poison later tests.
    EXPECT_EQ(code, 130);

    // The admitted request still got a response line (finished or
    // cancelled by the drain)...
    const auto response = json::parse(out.str());
    ASSERT_TRUE(response.has_value()) << out.str();
    EXPECT_EQ(response->find("id")->str, "a");
    // ...and the metrics sink was still flushed, recording the session.
    std::ifstream file(metrics_path);
    std::ostringstream content;
    content << file.rdbuf();
    const auto doc = json::parse(content.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("manifest")->find("status")->str, "cancelled");
    const auto* stats = doc->find("manifest")->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_DOUBLE_EQ(stats->find("serve.requests")->num, 1.0);
    std::filesystem::remove(metrics_path);
}

// --- Scheduler -------------------------------------------------------------

TEST(Serve, ManyConcurrentRequestsRespectOrderUnderSmallInflightBound) {
    std::vector<std::string> requests;
    std::vector<std::string> expected;
    for (int seed = 0; seed < 6; ++seed) {
        requests.push_back(R"({"id":"s)" + std::to_string(seed) +
                           R"(","method":"detector","params":{"seed":)" +
                           std::to_string(seed) + "}}");
        expected.push_back("s" + std::to_string(seed));
    }
    ServeOptions options;
    options.max_inflight = 2;
    const auto session = run_serve(requests, options);
    ASSERT_EQ(session.lines.size(), requests.size());
    for (std::size_t i = 0; i < session.lines.size(); ++i) {
        const auto doc = json::parse(session.lines[i]);
        ASSERT_TRUE(doc.has_value());
        EXPECT_EQ(doc->find("id")->str, expected[i]) << "line " << i;
        EXPECT_EQ(doc->find("status")->str, "ok") << session.lines[i];
    }
}

// --- Unix socket front-end -------------------------------------------------

TEST(Serve, UnixSocketRoundTrip) {
    const std::string path = "/tmp/tnr_test_serve.sock";
    std::filesystem::remove(path);
    parallel::CancelToken stop;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    std::ostringstream diag;
    std::thread server_thread(
        [&] { server.serve_unix_socket(path, diag); });

    // Wait for the socket to appear, then connect as a client.
    int fd = -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    for (int attempt = 0; attempt < 200 && fd < 0; ++attempt) {
        const int candidate = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(candidate, 0);
        if (::connect(candidate, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            fd = candidate;
        } else {
            ::close(candidate);
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
    }
    ASSERT_GE(fd, 0) << "could not connect to " << path;

    const std::string request = "{\"id\":\"s\",\"method\":\"list-devices\"}\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    std::string response;
    char c = 0;
    while (::read(fd, &c, 1) == 1 && c != '\n') response.push_back(c);
    ::close(fd);
    stop.cancel();
    server_thread.join();
    std::filesystem::remove(path);

    const auto doc = json::parse(response);
    ASSERT_TRUE(doc.has_value()) << response;
    EXPECT_EQ(doc->find("id")->str, "s");
    EXPECT_EQ(doc->find("status")->str, "ok");
    EXPECT_EQ(doc->find("output")->str, cli_stdout({"list-devices"}));
}

// --- Introspection: stats/health -------------------------------------------

TEST(ServeIntrospection, RouterHintListsEveryMethodAndIntrospectionIsServeOnly) {
    // The unknown-method hint is derived from method_names(), so a method
    // added there can never leave the hint stale.
    for (const auto& method : method_names()) {
        EXPECT_NE(method_hint().find(method), std::string::npos) << method;
    }
    EXPECT_TRUE(introspection_method("stats"));
    EXPECT_TRUE(introspection_method("health"));
    EXPECT_FALSE(introspection_method("fit"));
    // Introspection methods have no one-shot handler: the router refuses
    // them with an explanatory error instead of "unknown method".
    Request req;
    req.method = "stats";
    EXPECT_THROW(dispatch(req, nullptr), core::RunError);
}

TEST(ServeIntrospection, StatsAndHealthAreNeverCachedOrCoalesced) {
    const auto session = run_serve(
        {R"({"id":"s1","method":"stats"})",
         R"({"id":"s2","method":"stats"})",
         R"({"id":"h1","method":"health"})",
         R"({"id":"h2","method":"health"})"});
    ASSERT_EQ(session.lines.size(), 4u);
    for (const auto& line : session.lines) {
        EXPECT_EQ(status_of(line), "ok") << line;
    }
    // Identical back-to-back requests would normally coalesce or hit the
    // cache; introspection bodies are live snapshots and must not.
    EXPECT_EQ(session.stats.cache_hits, 0u);
    EXPECT_EQ(session.stats.coalesced, 0u);
    const auto a = json::parse(output_of(session.lines[0]));
    const auto b = json::parse(output_of(session.lines[1]));
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->find("uptime_s")->num, b->find("uptime_s")->num)
        << "two stats snapshots must reflect the clock, not a cached body";
}

TEST(ServeIntrospection, StatsReportsPerMethodLatencyAndCacheRates) {
    const auto session = run_serve(
        {R"({"id":"f1","method":"fit","params":{"site":"nyc"}})",
         R"({"id":"f2","method":"fit","params":{"site":"nyc"}})",
         R"({"id":"s","method":"stats","params":{"window-s":60}})"});
    ASSERT_EQ(session.lines.size(), 3u);
    const auto stats = json::parse(output_of(session.lines[2]));
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE(stats->find("requests")->find("total")->num, 3.0);
    EXPECT_GE(stats->find("requests")->find("rate_per_s")->num, 0.0);
    const auto* fit = stats->find("methods")->find("fit");
    ASSERT_NE(fit, nullptr);
    EXPECT_GE(fit->find("count")->num, 2.0);
    for (const char* q : {"p50_ms", "p90_ms", "p99_ms"}) {
        ASSERT_NE(fit->find(q), nullptr) << q;
        EXPECT_GT(fit->find(q)->num, 0.0) << q;
    }
    const auto* cache = stats->find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->find("hits")->num + cache->find("misses")->num, 1.0);
    ASSERT_NE(cache->find("hit_rate"), nullptr);
    ASSERT_NE(cache->find("collisions"), nullptr);
}

TEST(ServeIntrospection, HealthReportsUptimeAndInflight) {
    const auto session = run_serve({R"({"id":"h","method":"health"})"});
    ASSERT_EQ(session.lines.size(), 1u);
    const auto doc = json::parse(output_of(session.lines[0]));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("status")->str, "ok");
    EXPECT_GE(doc->find("uptime_s")->num, 0.0);
    EXPECT_EQ(doc->find("inflight")->num, 0.0);
    EXPECT_EQ(doc->find("max_inflight")->num, 4.0);
}

TEST(ServeIntrospection, StatsValidatesParamsAndHealthTakesNone) {
    const auto session = run_serve(
        {R"({"id":"w","method":"stats","params":{"window-s":-1}})",
         R"({"id":"x","method":"stats","params":{"format":"xml"}})",
         R"({"id":"y","method":"health","params":{"x":1}})"});
    ASSERT_EQ(session.lines.size(), 3u);
    for (const auto& line : session.lines) {
        EXPECT_EQ(status_of(line), "error") << line;
    }
}

TEST(ServeIntrospection, StatsPrometheusFormatHasTypedFamilies) {
    const auto session = run_serve(
        {R"({"id":"f","method":"fit","params":{"site":"nyc"}})",
         R"({"id":"p","method":"stats","params":{"format":"prometheus"}})"});
    ASSERT_EQ(session.lines.size(), 2u);
    const std::string text = output_of(session.lines[1]);
    EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
    EXPECT_NE(text.find("serve_request_seconds"), std::string::npos);
    // Labeled per-method series survive the name sanitizer as labels.
    EXPECT_NE(text.find("method=\"fit\""), std::string::npos);
    EXPECT_EQ(text.back(), '\n');
}

TEST(ServeIntrospection, KernelTelemetryVisibleInStatsAfterTransportWork) {
    // Two sessions: stats answers inline at admission, so the transport
    // work must have drained (serve() returns only after group.wait())
    // before the snapshot is taken. The registry is process-global, so the
    // counters carry across into the second session.
    const auto work = run_serve(
        {R"({"id":"t","method":"transmission",)"
         R"("params":{"histories":20000,"mode":"implicit","seed":13}})",
         R"({"id":"c","method":"campaign-slice",)"
         R"("params":{"device":"NVIDIA TitanX","hours":0.1,"seed":3}})"});
    ASSERT_EQ(work.lines.size(), 2u);
    EXPECT_EQ(status_of(work.lines[0]), "ok");
    EXPECT_EQ(status_of(work.lines[1]), "ok");
    const auto session = run_serve({R"({"id":"s","method":"stats"})"});
    ASSERT_EQ(session.lines.size(), 1u);
    const auto stats = json::parse(output_of(session.lines[0]));
    ASSERT_TRUE(stats.has_value());
    const auto* kernel = stats->find("kernel");
    ASSERT_NE(kernel, nullptr);
    EXPECT_GT(kernel->find("histories")->num, 0.0);
    // The implicit-capture run banked weight at every collision.
    EXPECT_GT(kernel->find("bank_events")->num, 0.0);
    EXPECT_GT(kernel->find("roulette_kills")->num +
                  kernel->find("roulette_survivals")->num,
              0.0);
    const std::string tier = kernel->find("simd_tier")->str;
    EXPECT_TRUE(tier == "scalar" || tier == "avx2") << tier;
}

TEST(Serve, CampaignStdoutBitwiseStableWithTelemetry) {
    // The kernel counters are tallied off the RNG path: two runs with the
    // same (seed, threads, mode) stay bitwise identical.
    const std::vector<std::string> args = {"campaign", "--hours",   "0.1",
                                           "--seed",   "7",         "--threads",
                                           "2",        "--mode",    "implicit"};
    EXPECT_EQ(cli_stdout(args), cli_stdout(args));
}

// --- Slow-request log -------------------------------------------------------

TEST(Serve, SlowLogEmitsJsonLinesAboveThreshold) {
    std::ostringstream slow;
    ServeOptions options;
    options.slow_ms = 1e-6;  // everything is slow.
    options.slow_log = &slow;
    const auto session =
        run_serve({R"({"id":"s","method":"list-devices"})"}, options);
    ASSERT_EQ(session.lines.size(), 1u);
    std::istringstream lines(slow.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line)) << "no slow-log line emitted";
    const auto doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto* entry = doc->find("slow_request");
    ASSERT_NE(entry, nullptr) << line;
    EXPECT_EQ(entry->find("method")->str, "list-devices");
    EXPECT_GT(entry->find("elapsed_ms")->num, 0.0);
    EXPECT_EQ(entry->find("cache")->str, "miss");
    EXPECT_EQ(entry->find("status")->str, "ok");
}

TEST(Serve, SlowLogStaysSilentBelowThreshold) {
    std::ostringstream slow;
    ServeOptions options;
    options.slow_ms = 60000.0;  // nothing is that slow.
    options.slow_log = &slow;
    const auto session =
        run_serve({R"({"id":"s","method":"list-devices"})"}, options);
    ASSERT_EQ(session.lines.size(), 1u);
    EXPECT_TRUE(slow.str().empty()) << slow.str();
}

// --- `tnr stats` client -----------------------------------------------------

TEST(Serve, CliStatsQueriesLiveSocketAndWatchRendersDeltas) {
    const std::string path = "/tmp/tnr_test_stats.sock";
    std::filesystem::remove(path);
    parallel::CancelToken stop;
    ServeOptions options;
    options.stop = &stop;
    Server server(options);
    std::ostringstream diag;
    std::thread server_thread([&] { server.serve_unix_socket(path, diag); });
    for (int attempt = 0;
         attempt < 500 && !std::filesystem::exists(path); ++attempt) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(std::filesystem::exists(path));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // One-shot: the human tables.
    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(cli::run({"stats", "--socket", path}, out, err), 0) << err.str();
    EXPECT_NE(out.str().find("requests"), std::string::npos);
    EXPECT_NE(out.str().find("p50 [ms]"), std::string::npos);

    // Watch: two polls, the second line annotated with the delta.
    std::ostringstream wout;
    std::ostringstream werr;
    ASSERT_EQ(cli::run({"stats", "--socket", path, "--watch", "--interval",
                        "0.05", "--polls", "2"},
                       wout, werr),
              0)
        << werr.str();
    std::vector<std::string> lines;
    std::istringstream split(wout.str());
    for (std::string line; std::getline(split, line);) lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u) << wout.str();
    EXPECT_EQ(lines[0].find("(+"), std::string::npos) << lines[0];
    EXPECT_NE(lines[1].find("(+"), std::string::npos) << lines[1];

    // Prometheus passthrough over the same socket.
    std::ostringstream pout;
    std::ostringstream perr;
    ASSERT_EQ(
        cli::run({"stats", "--socket", path, "--format", "prometheus"}, pout,
                 perr),
        0)
        << perr.str();
    EXPECT_NE(pout.str().find("# TYPE"), std::string::npos);

    stop.cancel();
    server_thread.join();
    std::filesystem::remove(path);
}

// --- Golden transcript -----------------------------------------------------

std::string data_file(const char* name) {
    return std::string(TNR_SOURCE_DIR) + "/tests/data/" + name;
}

std::string slurp(const std::string& path) {
    std::ifstream file(path);
    EXPECT_TRUE(file.is_open()) << path;
    std::ostringstream ss;
    ss << file.rdbuf();
    return ss.str();
}

TEST(Serve, GoldenTranscriptIsStable) {
    std::istringstream in(slurp(data_file("serve_golden_requests.jsonl")));
    std::ostringstream out;
    std::ostringstream diag;
    Server server({});
    const ServeStats stats = server.serve(in, out, diag);
    EXPECT_EQ(out.str(), slurp(data_file("serve_golden_responses.jsonl")));
    EXPECT_GE(stats.cache_hits, 1u) << "golden transcript must exercise the "
                                       "response cache";
}

// --- Bounded line framing ---------------------------------------------------

TEST(ServeFraming, LineFramerSplitsChunksAndFlagsOversizedLines) {
    LineFramer framer(8);
    const std::string input = "short\n" + std::string(100, 'x') +
                              "\nafter\npart";
    // Feed in awkward chunk sizes to exercise incremental reassembly.
    for (std::size_t i = 0; i < input.size(); i += 3) {
        framer.feed(input.data() + i, std::min<std::size_t>(3, input.size() - i));
    }
    std::string line;
    EXPECT_EQ(framer.next(line), LineFramer::Result::kLine);
    EXPECT_EQ(line, "short");
    EXPECT_EQ(framer.next(line), LineFramer::Result::kOverflow);
    EXPECT_EQ(framer.next(line), LineFramer::Result::kLine);
    EXPECT_EQ(line, "after");
    EXPECT_EQ(framer.next(line), LineFramer::Result::kNone);
    // The unfinished tail stays buffered, bounded by the cap.
    EXPECT_EQ(framer.partial_bytes(), 4u);
    framer.feed("\n", 1);
    EXPECT_EQ(framer.next(line), LineFramer::Result::kLine);
    EXPECT_EQ(line, "part");
}

TEST(ServeFraming, LineFramerNeverBuffersMoreThanTheCap) {
    LineFramer framer(16);
    const std::string big(1 << 20, 'y');  // 1 MiB, no newline.
    framer.feed(big.data(), big.size());
    // The whole megabyte arrived, but at most cap+1 bytes are held.
    EXPECT_LE(framer.partial_bytes(), 17u);
    framer.feed("\n", 1);
    std::string line;
    EXPECT_EQ(framer.next(line), LineFramer::Result::kOverflow);
}

TEST(ServeFraming, ReadBoundedLineMatchesGetlineAndCapsLongLines) {
    std::istringstream in("one\n" + std::string(64, 'z') + "\ntail");
    std::string line;
    EXPECT_EQ(read_bounded_line(in, line, 32), LineRead::kLine);
    EXPECT_EQ(line, "one");
    EXPECT_EQ(read_bounded_line(in, line, 32), LineRead::kTooLong);
    EXPECT_TRUE(line.empty());
    // The oversized line was consumed to its newline; the stream resumes.
    EXPECT_EQ(read_bounded_line(in, line, 32), LineRead::kLine);
    EXPECT_EQ(line, "tail");
    EXPECT_EQ(read_bounded_line(in, line, 32), LineRead::kEof);
}

TEST(Serve, OversizedRequestLineGetsTypedBadRequestAndServerContinues) {
    ServeOptions options;
    options.max_line_bytes = 128;
    const std::string huge = R"({"id":"big","method":"fit","params":{"site":")" +
                             std::string(4096, 'a') + R"("}})";
    const auto session = run_serve(
        {huge, R"({"id":"ok","method":"list-devices"})"}, options);
    ASSERT_EQ(session.lines.size(), 2u);
    const auto err = json::parse(session.lines[0]);
    ASSERT_TRUE(err.has_value()) << session.lines[0];
    EXPECT_EQ(err->find("status")->str, "error");
    EXPECT_EQ(err->find("id")->str, "");  // the line never parsed far enough.
    EXPECT_NE(err->find("error")->find("message")->str.find("bad-request"),
              std::string::npos);
    // The server keeps serving after discarding the oversized line.
    EXPECT_EQ(status_of(session.lines[1]), "ok");
    EXPECT_EQ(session.stats.requests, 2u);
    EXPECT_EQ(session.stats.errors, 1u);
    EXPECT_EQ(session.stats.ok, 1u);
}

}  // namespace
}  // namespace tnr::serve

// The observability layer: metrics registry semantics (including concurrent
// counting from the shared pool), JSON snapshot round-trips through the
// bundled parser, trace writer output, manifests, and the progress meter.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/obs/json.hpp"
#include "core/obs/manifest.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/progress.hpp"
#include "core/obs/trace.hpp"
#include "core/parallel/thread_pool.hpp"

namespace {

namespace obs = tnr::core::obs;
using tnr::core::parallel::TaskGroup;
using tnr::core::parallel::ThreadPool;

// --- JSON ------------------------------------------------------------------

TEST(ObsJson, ParsesScalarsObjectsAndArrays) {
    const auto doc = obs::json::parse(
        R"({"a":1.5,"b":"x","c":[1,2,3],"d":{"e":true,"f":null},"g":-2e3})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->is_object());
    EXPECT_DOUBLE_EQ(doc->find("a")->num, 1.5);
    EXPECT_EQ(doc->find("b")->str, "x");
    ASSERT_TRUE(doc->find("c")->is_array());
    EXPECT_EQ(doc->find("c")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(doc->find("c")->array[1].num, 2.0);
    const auto* d = doc->find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->find("e")->boolean);
    EXPECT_EQ(d->find("f")->kind, obs::json::Value::Kind::kNull);
    EXPECT_DOUBLE_EQ(doc->find("g")->num, -2000.0);
}

TEST(ObsJson, RejectsMalformedDocuments) {
    EXPECT_FALSE(obs::json::parse("").has_value());
    EXPECT_FALSE(obs::json::parse("{").has_value());
    EXPECT_FALSE(obs::json::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(obs::json::parse("[1,2] trailing").has_value());
    EXPECT_FALSE(obs::json::parse("{'a':1}").has_value());
    EXPECT_FALSE(obs::json::parse("nul").has_value());
}

TEST(ObsJson, RejectsTruncatedDocuments) {
    // The journal replayer feeds this parser lines from files that may have
    // been cut mid-write; every truncation must come back as nullopt, never
    // a partial value or a crash.
    for (const char* doc :
         {"{\"a\":1", "[1,2", "\"abc", "{\"a\":", "{\"a\"", "[1,2,", "tru",
          "fals", "-", "1e", "{\"a\":1,\"b\"", "[[1,2],[3"}) {
        EXPECT_FALSE(obs::json::parse(doc).has_value()) << doc;
    }
}

TEST(ObsJson, RejectsBadStringEscapes) {
    EXPECT_FALSE(obs::json::parse(R"("\x41")").has_value());
    EXPECT_FALSE(obs::json::parse(R"("\u12g4")").has_value());
    EXPECT_FALSE(obs::json::parse(R"("\u12)").has_value());
    EXPECT_FALSE(obs::json::parse("\"a\\").has_value());
    // Raw control characters must be escaped per RFC 8259.
    EXPECT_FALSE(obs::json::parse("\"a\x01z\"").has_value());
    EXPECT_FALSE(obs::json::parse("\"a\nz\"").has_value());
}

TEST(ObsJson, RejectsMalformedNumbers) {
    for (const char* doc : {"1.", ".5", "+1", "1e+", "--1", "0x10", "1.e5"}) {
        EXPECT_FALSE(obs::json::parse(doc).has_value()) << doc;
    }
}

TEST(ObsJson, DepthBombReturnsNulloptInsteadOfOverflowing) {
    // 64 levels is the documented limit; a pathological input far past it
    // must fail cleanly, not exhaust the stack.
    const std::string deep_arrays =
        std::string(1000, '[') + std::string(1000, ']');
    EXPECT_FALSE(obs::json::parse(deep_arrays).has_value());
    std::string deep_objects;
    for (int i = 0; i < 1000; ++i) deep_objects += "{\"k\":";
    deep_objects += "1";
    for (int i = 0; i < 1000; ++i) deep_objects += "}";
    EXPECT_FALSE(obs::json::parse(deep_objects).has_value());
    // At a depth the limit allows, nesting still parses.
    const std::string shallow = std::string(32, '[') + std::string(32, ']');
    EXPECT_TRUE(obs::json::parse(shallow).has_value());
}

TEST(ObsJson, EscapeProducesParseableStrings) {
    const std::string nasty = "a\"b\\c\n\t\x01z";
    const std::string doc = "{\"k\":\"" + obs::json::escape(nasty) + "\"}";
    const auto parsed = obs::json::parse(doc);
    ASSERT_TRUE(parsed.has_value());
    const auto* k = parsed->find("k");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->str, nasty);
}

TEST(ObsJson, EscapeUsesNamedEscapesForBackspaceAndFormFeed) {
    EXPECT_EQ(obs::json::escape("\b\f"), "\\b\\f");
    EXPECT_EQ(obs::json::escape("\n\r\t"), "\\n\\r\\t");
}

TEST(ObsJson, EveryControlCharacterRoundTrips) {
    // The serve layer echoes client-supplied request ids through
    // escape(), so all of U+0000..U+001F (NUL included) must survive the
    // writer -> parser round trip embedded in a larger string.
    for (int c = 0; c < 0x20; ++c) {
        std::string nasty = "pre";
        nasty.push_back(static_cast<char>(c));
        nasty += "post";
        const std::string doc = "[\"" + obs::json::escape(nasty) + "\"]";
        const auto parsed = obs::json::parse(doc);
        ASSERT_TRUE(parsed.has_value()) << "control char " << c;
        ASSERT_EQ(parsed->array.size(), 1u);
        EXPECT_EQ(parsed->array[0].str, nasty) << "control char " << c;
    }
}

TEST(ObsJson, NumbersRoundTrip) {
    for (const double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-300, 2.5e17}) {
        const auto parsed = obs::json::parse(obs::json::number(v));
        ASSERT_TRUE(parsed.has_value()) << v;
        EXPECT_DOUBLE_EQ(parsed->num, v);
    }
    // NaN/Inf are not representable in JSON; the writer maps them to 0.
    EXPECT_EQ(obs::json::number(std::nan("")), "0");
}

// --- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, CounterCountsExactlyUnderConcurrency) {
    auto& counter = obs::Registry::global().counter("test_obs.concurrent");
    counter.reset();
    constexpr int kTasks = 64;
    constexpr int kAddsPerTask = 1000;
    {
        TaskGroup group(ThreadPool::shared());
        for (int t = 0; t < kTasks; ++t) {
            group.run([&counter] {
                for (int i = 0; i < kAddsPerTask; ++i) counter.add(1);
            });
        }
        group.wait();
    }
    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST(ObsMetrics, GaugeTracksMaximumUnderConcurrency) {
    auto& gauge = obs::Registry::global().gauge("test_obs.max_gauge");
    gauge.reset();
    {
        TaskGroup group(ThreadPool::shared());
        for (int t = 0; t < 32; ++t) {
            group.run([&gauge, t] {
                for (int i = 0; i <= 100; ++i) {
                    gauge.update_max(static_cast<double>(t * 1000 + i));
                }
            });
        }
        group.wait();
    }
    EXPECT_DOUBLE_EQ(gauge.value(), 31100.0);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
    auto& a = obs::Registry::global().counter("test_obs.stable");
    auto& b = obs::Registry::global().counter("test_obs.stable");
    EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, LatencyHistogramSummarizes) {
    obs::LatencyHistogram hist;
    for (int i = 1; i <= 100; ++i) hist.record_ns(1000 * i);  // 1..100 us
    const auto s = hist.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min_ns, 1000.0);
    EXPECT_DOUBLE_EQ(s.max_ns, 100000.0);
    EXPECT_NEAR(s.mean_ns, 50500.0, 1e-6);
    // Quantiles come off the log grid — generous bounds.
    EXPECT_GT(s.p50_ns, 20000.0);
    EXPECT_LT(s.p50_ns, 90000.0);
    EXPECT_GE(s.p90_ns, s.p50_ns);
    EXPECT_GE(s.p99_ns, s.p90_ns);
    EXPECT_LE(s.p99_ns, 2.0 * s.max_ns);
}

TEST(ObsMetrics, SnapshotRoundTripsThroughParser) {
    auto& reg = obs::Registry::global();
    reg.counter("test_obs.snapshot_counter").reset();
    reg.counter("test_obs.snapshot_counter").add(42);
    reg.gauge("test_obs.snapshot_gauge").set(0.625);
    auto& lat = reg.latency("test_obs.snapshot_latency");
    lat.reset();
    lat.record_ns(5000);

    const auto doc = obs::json::parse(reg.to_json());
    ASSERT_TRUE(doc.has_value());
    const auto* counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    const auto* counter = counters->find("test_obs.snapshot_counter");
    ASSERT_NE(counter, nullptr);
    EXPECT_DOUBLE_EQ(counter->num, 42.0);

    const auto* gauges = doc->find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("test_obs.snapshot_gauge")->num, 0.625);

    const auto* lats = doc->find("latencies");
    ASSERT_NE(lats, nullptr);
    const auto* entry = lats->find("test_obs.snapshot_latency");
    ASSERT_NE(entry, nullptr);
    EXPECT_DOUBLE_EQ(entry->find("count")->num, 1.0);
    EXPECT_DOUBLE_EQ(entry->find("mean_ns")->num, 5000.0);
    ASSERT_NE(entry->find("p99_ns"), nullptr);
}

TEST(ObsMetrics, ScopedTimerRecordsAndAccumulates) {
    obs::LatencyHistogram hist;
    obs::Counter total_ns;
    { const obs::ScopedTimer timer(hist, &total_ns); }
    const auto s = hist.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(total_ns.value(), static_cast<std::uint64_t>(s.total_ns));
}

TEST(ObsMetrics, LatencyHistogramEmptySummaryIsAllZero) {
    const obs::LatencyHistogram hist;
    const auto s = hist.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.min_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.max_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.p50_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.p90_ns, 0.0);
    EXPECT_DOUBLE_EQ(s.p99_ns, 0.0);
}

TEST(ObsMetrics, LatencyHistogramSingleSampleQuantilesBracketIt) {
    obs::LatencyHistogram hist;
    hist.record_ns(5000);
    const auto s = hist.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min_ns, 5000.0);
    EXPECT_DOUBLE_EQ(s.max_ns, 5000.0);
    EXPECT_DOUBLE_EQ(s.mean_ns, 5000.0);
    // Every quantile falls into the one populated log-grid bucket.
    EXPECT_GT(s.p50_ns, 0.0);
    EXPECT_LE(s.p50_ns, s.p90_ns);
    EXPECT_LE(s.p90_ns, s.p99_ns);
    EXPECT_LE(s.p99_ns, 2.0 * s.max_ns);
}

TEST(ObsMetrics, LatencyHistogramResetIsSafeUnderConcurrentRecording) {
    // Exercised under TSan in CI: reset() and record_ns() race by design
    // (stats/health can reset nothing, but a run boundary may) and must
    // stay data-race free.
    obs::LatencyHistogram hist;
    {
        TaskGroup group(ThreadPool::shared());
        for (int t = 0; t < 8; ++t) {
            group.run([&hist] {
                for (int i = 1; i <= 500; ++i) hist.record_ns(1000 * i);
            });
        }
        group.run([&hist] {
            for (int i = 0; i < 50; ++i) {
                hist.reset();
                (void)hist.summary();
            }
        });
        group.wait();
    }
    hist.reset();
    hist.record_ns(2000);
    const auto s = hist.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min_ns, 2000.0);
}

TEST(ObsMetrics, GaugeSetRoundTripsAndResets) {
    auto& gauge = obs::Registry::global().gauge("test_obs.roundtrip_gauge");
    gauge.reset();
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
    gauge.set(-1.25);
    EXPECT_DOUBLE_EQ(gauge.value(), -1.25);
    gauge.update_max(3.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
    gauge.update_max(1.0);  // below the current maximum: a no-op.
    EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
    gauge.reset();
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

// --- Labeled instruments, windowed deltas, Prometheus exposition ------------

TEST(ObsMetrics, LabeledKeysAreSortedAndCanonical) {
    EXPECT_EQ(obs::labeled("f", {{"b", "2"}, {"a", "1"}}), "f{a=1,b=2}");
    EXPECT_EQ(obs::labeled("f", {}), "f");
    // Label order at the call site does not split the instrument.
    auto& x = obs::Registry::global().counter(
        obs::labeled("test_obs.lbl", {{"k", "v"}, {"m", "w"}}));
    auto& y = obs::Registry::global().counter(
        obs::labeled("test_obs.lbl", {{"m", "w"}, {"k", "v"}}));
    EXPECT_EQ(&x, &y);
}

TEST(ObsMetrics, SnapshotDeltaComputesWindowedCounterRates) {
    auto& reg = obs::Registry::global();
    auto& counter = reg.counter("test_obs.delta_counter");
    counter.reset();
    counter.add(5);

    // First snapshot: no ring samples yet, so the baseline is the counter's
    // creation instant (value 0) and the delta is the full count.
    const auto s1 = reg.snapshot_delta(3600.0);
    const auto d1 = s1.get("test_obs.delta_counter");
    EXPECT_EQ(d1.delta, 5u);
    EXPECT_GT(d1.window_s, 0.0);
    EXPECT_GT(d1.rate_per_s, 0.0);

    // Second snapshot: nothing has aged past the huge window, so the oldest
    // retained sample (the one s1 pushed, value 5) is the baseline.
    counter.add(3);
    const auto s2 = reg.snapshot_delta(3600.0);
    EXPECT_EQ(s2.get("test_obs.delta_counter").delta, 3u);

    // A counter reset mid-window clamps instead of underflowing.
    counter.reset();
    counter.add(2);
    const auto s3 = reg.snapshot_delta(3600.0);
    EXPECT_EQ(s3.get("test_obs.delta_counter").delta, 2u);

    // Unknown names read as a zero delta, not an error.
    EXPECT_EQ(s3.get("test_obs.no_such_counter").delta, 0u);
    EXPECT_DOUBLE_EQ(s3.get("test_obs.no_such_counter").rate_per_s, 0.0);
}

TEST(ObsMetrics, PrometheusExpositionGroupsFamiliesAndSanitizesNames) {
    auto& reg = obs::Registry::global();
    reg.counter(obs::labeled("test_obs.prom.req",
                             {{"method", "fit"}, {"outcome", "ok"}}))
        .reset();
    reg.counter(obs::labeled("test_obs.prom.req",
                             {{"method", "fit"}, {"outcome", "ok"}}))
        .add(2);
    reg.counter(obs::labeled("test_obs.prom.req", {{"outcome", "error"}}))
        .add(1);
    reg.gauge("test_obs.prom.g").set(1.5);
    auto& lat = reg.latency("test_obs.prom.lat");
    lat.reset();
    lat.record_ns(2000000);

    const std::string text = reg.to_prometheus();
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');

    // Dots become underscores; the labeled and unlabeled spellings of one
    // family share a single # TYPE header.
    const std::string type_line = "# TYPE test_obs_prom_req counter";
    const auto first = text.find(type_line);
    ASSERT_NE(first, std::string::npos) << text;
    EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
    EXPECT_NE(
        text.find("test_obs_prom_req{method=\"fit\",outcome=\"ok\"} 2"),
        std::string::npos);
    EXPECT_NE(text.find("test_obs_prom_req{outcome=\"error\"} 1"),
              std::string::npos);

    EXPECT_NE(text.find("# TYPE test_obs_prom_g gauge"), std::string::npos);
    EXPECT_NE(text.find("test_obs_prom_g 1.5"), std::string::npos);

    // Latency histograms surface as summaries in seconds.
    EXPECT_NE(text.find("# TYPE test_obs_prom_lat_seconds summary"),
              std::string::npos);
    EXPECT_NE(text.find("test_obs_prom_lat_seconds_count 1"),
              std::string::npos);
    EXPECT_NE(text.find("test_obs_prom_lat_seconds{quantile=\"0.99\"}"),
              std::string::npos);

    // The exposition format forbids trailing whitespace.
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
        if (line.empty()) continue;
        EXPECT_NE(line.back(), ' ') << line;
        EXPECT_NE(line.back(), '\t') << line;
    }
}

// --- Tracing ---------------------------------------------------------------

TEST(ObsTrace, DisabledSpanRecordsNothing) {
    auto& tracer = obs::Tracer::global();
    tracer.disable();
    tracer.clear();
    { const obs::Span span("test_obs.disabled", "test"); }
    EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTrace, EnabledSpanProducesValidChromeTrace) {
    auto& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable();
    {
        const obs::Span outer("test_obs.outer", "test");
        const obs::Span inner(std::string("test_obs.inner"), "test");
    }
    tracer.disable();
    ASSERT_EQ(tracer.event_count(), 2u);

    const auto doc = obs::json::parse(tracer.to_json());
    ASSERT_TRUE(doc.has_value());
    const auto* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_EQ(events->array.size(), 2u);
    for (const auto& event : events->array) {
        EXPECT_EQ(event.find("ph")->str, "X");
        EXPECT_EQ(event.find("cat")->str, "test");
        EXPECT_GE(event.find("dur")->num, 0.0);
        ASSERT_NE(event.find("ts"), nullptr);
        ASSERT_NE(event.find("pid"), nullptr);
        ASSERT_NE(event.find("tid"), nullptr);
    }
    // Complete events are recorded at destruction: inner closes first.
    EXPECT_EQ(events->array[0].find("name")->str, "test_obs.inner");
    EXPECT_EQ(events->array[1].find("name")->str, "test_obs.outer");
    tracer.clear();
}

// --- Manifest --------------------------------------------------------------

TEST(ObsManifest, SerializesAllFields) {
    obs::RunManifest manifest;
    manifest.command = "tnr campaign --seed 7";
    manifest.seed = 7;
    manifest.threads = 4;
    manifest.elapsed_s = 1.25;
    manifest.started_at_utc = "2026-01-01T00:00:00Z";
    manifest.flags.emplace_back("seed", "7");
    manifest.flags.emplace_back("csv", "");

    const auto doc = obs::json::parse(manifest.to_json());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("tool")->str, "tnr");
    EXPECT_FALSE(doc->find("version")->str.empty());
    EXPECT_EQ(doc->find("command")->str, "tnr campaign --seed 7");
    EXPECT_DOUBLE_EQ(doc->find("seed")->num, 7.0);
    EXPECT_DOUBLE_EQ(doc->find("threads")->num, 4.0);
    EXPECT_DOUBLE_EQ(doc->find("elapsed_s")->num, 1.25);
    const auto* flags = doc->find("flags");
    ASSERT_NE(flags, nullptr);
    ASSERT_TRUE(flags->is_object());
    EXPECT_EQ(flags->find("seed")->str, "7");
    ASSERT_NE(flags->find("csv"), nullptr);
}

// --- Progress --------------------------------------------------------------

TEST(ObsProgress, NullSinkIsANoOp) {
    obs::ProgressMeter meter(nullptr, "test", "items", 10);
    for (int i = 0; i < 10; ++i) meter.tick();
    meter.finish();  // must not crash
}

TEST(ObsProgress, ShortRunsStaySilent) {
    std::ostringstream sink;
    obs::ProgressMeter meter(&sink, "test", "items", 4);
    for (int i = 0; i < 4; ++i) meter.tick();
    meter.finish();
    // Reporting is gated on kFirstReportAfter of wall time; an immediate
    // run prints nothing.
    EXPECT_TRUE(sink.str().empty()) << sink.str();
}

}  // namespace

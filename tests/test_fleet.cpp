// Tests for the streaming fleet simulator (src/fleet): aggregator merge
// algebra, Poisson CI correctness against the closed form, the bitwise
// shard/chunk invariance contract, scrub/repair policy effects, the
// event-driven fast path (statistical equivalence to the dense sweep,
// envelope-acceptance unbiasedness, its own invariance/resume contract),
// resume load balancing, journal resume identity, and CLI/serve byte
// identity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "core/error.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/render.hpp"
#include "fleet/simulator.hpp"
#include "fleet/spec.hpp"
#include "serve/handlers.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"

namespace tnr::fleet {
namespace {

// --- Fixtures ---------------------------------------------------------------

/// A small but non-trivial study: two sites with different policies, two
/// device classes, sub-daily buckets, accelerated so events are plentiful.
FleetSpec small_spec() {
    FleetSpec spec;
    spec.devices = 3'000;
    spec.days = 5;
    spec.bucket_hours = 12;
    spec.seed = 99;
    spec.acceleration = 2'000.0;
    FleetSite nyc{environment::nyc_datacenter(), 2.0, {}};
    nyc.policy.scrub_interval_h = 12.0;
    nyc.policy.repair_hours = 24;
    nyc.policy.rain_probability = 0.3;
    spec.sites.push_back(nyc);
    spec.sites.push_back({environment::star_hall(), 1.0, {}});
    spec.mix.push_back({"NVIDIA K20", 2.0});
    spec.mix.push_back({"Intel Xeon Phi", 1.0});
    return spec;
}

FleetTally random_tally(std::uint64_t seed, std::size_t sites = 2,
                        std::size_t classes = 3, std::size_t buckets = 4) {
    FleetTally tally(sites, classes, buckets);
    stats::Rng rng(seed);
    for (auto& cell : tally.cells()) {
        cell.sdc = rng.uniform_index(100);
        cell.due = rng.uniform_index(100);
        cell.corrected = rng.uniform_index(100);
        cell.repairs = rng.uniform_index(10);
        cell.device_hours = rng.uniform_index(100'000);
    }
    for (auto& a : tally.assigned_flat()) a = rng.uniform_index(1'000);
    return tally;
}

// --- Aggregator algebra -----------------------------------------------------

TEST(FleetAggregator, MergeIsAssociative) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const FleetTally a = random_tally(seed);
        const FleetTally b = random_tally(seed + 100);
        const FleetTally c = random_tally(seed + 200);

        FleetTally left = a;   // (a + b) + c
        left.merge(b);
        left.merge(c);
        FleetTally bc = b;     // a + (b + c)
        bc.merge(c);
        FleetTally right = a;
        right.merge(bc);
        EXPECT_EQ(left, right) << "seed " << seed;
    }
}

TEST(FleetAggregator, MergeIsCommutative) {
    const FleetTally a = random_tally(7);
    const FleetTally b = random_tally(8);
    FleetTally ab = a;
    ab.merge(b);
    FleetTally ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(FleetAggregator, MergingEmptyShellIsNoOp) {
    const FleetTally a = random_tally(11);
    FleetTally merged = a;
    merged.merge(FleetTally{});  // default-constructed placeholder slot.
    EXPECT_EQ(merged, a);

    FleetTally shell;  // and folding INTO a shell adopts the other side.
    shell.merge(a);
    EXPECT_EQ(shell, a);
}

TEST(FleetAggregator, MergeRejectsMismatchedDimensions) {
    FleetTally a(2, 3, 4);
    const FleetTally b(2, 3, 5);
    EXPECT_THROW(a.merge(b), core::RunError);
}

TEST(FleetAggregator, MarginalsSumTheLattice) {
    const FleetTally t = random_tally(13);
    CellTally by_site;
    for (std::size_t s = 0; s < t.sites(); ++s) by_site.add(t.site_total(s));
    CellTally by_class;
    for (std::size_t c = 0; c < t.classes(); ++c) {
        by_class.add(t.class_total(c));
    }
    CellTally by_bucket;
    for (std::size_t b = 0; b < t.buckets(); ++b) {
        by_bucket.add(t.bucket_total(b));
    }
    const CellTally grand = t.grand_total();
    EXPECT_EQ(by_site, grand);
    EXPECT_EQ(by_class, grand);
    EXPECT_EQ(by_bucket, grand);
}

// --- Poisson CI correctness -------------------------------------------------

TEST(FleetAggregator, FitIntervalMatchesClosedForm) {
    // fit_interval is poisson_rate_interval with exposure in units of 1e9
    // accelerated device-hours, so the interval lands directly in FIT.
    const std::uint64_t count = 42;
    const std::uint64_t device_hours = 1'000'000;
    const double accel = 50.0;
    const stats::Interval got = fit_interval(count, device_hours, accel);
    const stats::Interval want = stats::poisson_rate_interval(
        count, static_cast<double>(device_hours) * accel / 1e9);
    EXPECT_DOUBLE_EQ(got.lower, want.lower);
    EXPECT_DOUBLE_EQ(got.upper, want.upper);

    const double estimate = fit_estimate(count, device_hours, accel);
    EXPECT_NEAR(estimate,
                static_cast<double>(count) /
                    (static_cast<double>(device_hours) * accel / 1e9),
                1e-9);
    EXPECT_TRUE(got.contains(estimate));

    // Garwood relation to the mean interval: rate CI = mean CI / exposure.
    const stats::Interval mean = stats::poisson_mean_interval(count);
    const double exposure =
        static_cast<double>(device_hours) * accel / 1e9;
    EXPECT_NEAR(got.lower, mean.lower / exposure, 1e-9 * got.lower);
    EXPECT_NEAR(got.upper, mean.upper / exposure, 1e-9 * got.upper);
}

TEST(FleetAggregator, FitIntervalZeroExposureIsEmpty) {
    const stats::Interval got = fit_interval(5, 0, 1.0);
    EXPECT_DOUBLE_EQ(got.lower, 0.0);
    EXPECT_DOUBLE_EQ(got.upper, 0.0);
    EXPECT_DOUBLE_EQ(fit_estimate(5, 0, 1.0), 0.0);
}

TEST(FleetAggregator, FitIntervalZeroCountLowerBoundIsZero) {
    const stats::Interval got = fit_interval(0, 1'000'000, 1.0);
    EXPECT_DOUBLE_EQ(got.lower, 0.0);
    EXPECT_GT(got.upper, 0.0);
}

// --- Determinism and invariance ---------------------------------------------

TEST(FleetSimulator, ShardCountIsBitwiseInvariant) {
    const ResolvedFleet fleet(small_spec());
    FleetRunOptions one;
    one.shards = 1;
    one.chunk_devices = 256;  // 12 chunks, so shards have real ranges.
    const FleetResult r1 = run_fleet(fleet, one);
    for (const unsigned shards : {4u, 7u}) {
        FleetRunOptions opts;
        opts.shards = shards;
        opts.chunk_devices = 256;
        const FleetResult rn = run_fleet(fleet, opts);
        EXPECT_EQ(r1.tally, rn.tally) << shards << " shards";
        EXPECT_EQ(render_fleet_report(fleet, r1.tally, {}),
                  render_fleet_report(fleet, rn.tally, {}))
            << shards << " shards";
    }
}

TEST(FleetSimulator, ChunkSizeIsBitwiseInvariant) {
    const ResolvedFleet fleet(small_spec());
    FleetRunOptions big;
    big.chunk_devices = kDefaultChunkDevices;
    const FleetResult base = run_fleet(fleet, big);
    for (const std::uint64_t chunk : {1'000ULL, 777ULL}) {
        FleetRunOptions opts;
        opts.shards = 3;
        opts.chunk_devices = chunk;
        const FleetResult r = run_fleet(fleet, opts);
        EXPECT_EQ(base.tally, r.tally) << "chunk_devices " << chunk;
    }
}

TEST(FleetSimulator, SameSeedSameResultDifferentSeedDifferent) {
    const ResolvedFleet fleet(small_spec());
    const FleetResult a = run_fleet(fleet, {});
    const FleetResult b = run_fleet(fleet, {});
    EXPECT_EQ(a.tally, b.tally);

    FleetSpec reseeded = small_spec();
    reseeded.seed = 100;
    const ResolvedFleet other(reseeded);
    const FleetResult c = run_fleet(other, {});
    EXPECT_NE(a.tally, c.tally);
}

TEST(FleetSimulator, DeviceStreamIsCounterBased) {
    // Opening a device's stream is pure in (seed, index): no serial
    // splitting, so any shard reconstructs any stream identically.
    stats::Rng a = device_stream(2020, 1'234'567);
    stats::Rng b = device_stream(2020, 1'234'567);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
    stats::Rng c = device_stream(2020, 1'234'568);
    EXPECT_NE(device_stream(2020, 1'234'567).uniform(), c.uniform());
}

TEST(FleetSimulator, WeatherSeriesTracksRainProbability) {
    FleetSpec spec = small_spec();
    spec.days = 365;
    spec.sites[0].policy.rain_probability = 0.25;
    const ResolvedFleet fleet(spec);
    unsigned rainy_days = 0;
    for (std::uint32_t day = 0; day < spec.days; ++day) {
        rainy_days += fleet.rainy(0, day) ? 1 : 0;
        EXPECT_FALSE(fleet.rainy(1, day));  // site 1 has p = 0.
    }
    const double frac = static_cast<double>(rainy_days) / spec.days;
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.35);
}

TEST(FleetSimulator, ConservationOfDevicesAndExposure) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const FleetResult r = run_fleet(fleet, {});
    EXPECT_EQ(r.tally.total_assigned(), spec.devices);
    // Exposure can only be lost to repair downtime, never gained.
    const std::uint64_t full =
        spec.devices * spec.days * 24ULL;
    EXPECT_LE(r.tally.grand_total().device_hours, full);
    EXPECT_GT(r.tally.grand_total().device_hours, 0u);
}

// --- Policy effects ---------------------------------------------------------

TEST(FleetSimulator, ScrubbingCorrectsAndThinsSdc) {
    FleetSpec off = small_spec();
    off.sites[0].policy.scrub_interval_h = 0.0;  // scrubbing off everywhere.
    off.sites[0].policy.repair_hours = 0;
    off.sites[1].policy.scrub_interval_h = 0.0;
    const FleetResult r_off = run_fleet(ResolvedFleet(off), {});
    EXPECT_EQ(r_off.tally.grand_total().corrected, 0u);

    FleetSpec on = off;
    on.sites[0].policy.scrub_interval_h = 6.0;
    on.sites[1].policy.scrub_interval_h = 6.0;
    const FleetResult r_on = run_fleet(ResolvedFleet(on), {});
    EXPECT_GT(r_on.tally.grand_total().corrected, 0u);
    EXPECT_LT(r_on.tally.grand_total().sdc, r_off.tally.grand_total().sdc);
    // Scrubbing intercepts latent faults on their way to a consuming read;
    // it does not suppress the arrivals themselves, so faults seen (SDC +
    // corrected) stay in the same ballpark as the unscrubbed SDC count.
    const double seen = static_cast<double>(
        r_on.tally.grand_total().sdc + r_on.tally.grand_total().corrected);
    const double unscrubbed =
        static_cast<double>(r_off.tally.grand_total().sdc);
    EXPECT_GT(seen, 0.8 * unscrubbed);
    EXPECT_LT(seen, 1.2 * unscrubbed);
}

TEST(FleetSimulator, RepairTakesDevicesOffline) {
    FleetSpec no_repair = small_spec();
    no_repair.sites[0].policy.repair_hours = 0;
    no_repair.sites[1].policy.repair_hours = 0;
    const FleetResult r_none = run_fleet(ResolvedFleet(no_repair), {});
    EXPECT_EQ(r_none.tally.grand_total().repairs, 0u);

    FleetSpec repair = no_repair;
    repair.sites[0].policy.repair_hours = 48;
    repair.sites[1].policy.repair_hours = 48;
    const FleetResult r_some = run_fleet(ResolvedFleet(repair), {});
    EXPECT_GT(r_some.tally.grand_total().repairs, 0u);
    EXPECT_LT(r_some.tally.grand_total().device_hours,
              r_none.tally.grand_total().device_hours);
}

// --- Event-driven fast path -------------------------------------------------

FleetSpec event_spec() {
    FleetSpec spec = small_spec();
    spec.mode = FleetMode::kEventDriven;
    return spec;
}

/// Two independent runs of the same study produce independent Poisson-ish
/// counts with a common mean; Var(a - b) ~ E[a] + E[b], so 3 sigma with a
/// small-count slack is a deterministic-but-principled equality band.
void expect_3sigma(std::uint64_t a, std::uint64_t b, const char* what,
                   double scale = 1.0) {
    const double diff =
        std::abs(static_cast<double>(a) - static_cast<double>(b));
    const double tol =
        (3.0 * std::sqrt(static_cast<double>(a + b)) + 10.0) * scale;
    EXPECT_LE(diff, tol) << what << ": " << a << " vs " << b;
}

TEST(FleetEventMode, MatchesDenseWithin3Sigma) {
    // Sweep scrub x repair x rain x acceleration (and a bucket size that
    // does not divide the horizon, so the last bucket is partial): the
    // thinned envelope process must reproduce the dense per-bucket Poisson
    // statistics in every configuration.
    struct Config {
        const char* name;
        double scrub_h;
        unsigned repair_h;
        double rain;
        double accel;
        unsigned bucket_hours;
    };
    const Config configs[] = {
        {"baseline", 12.0, 24, 0.3, 2'000.0, 12},
        {"no-policy", 0.0, 0, 0.5, 500.0, 24},
        {"scrub-only", 6.0, 0, 0.0, 2'000.0, 12},
        {"repair-rain", 0.0, 12, 1.0, 1'000.0, 12},
        {"partial-bucket", 12.0, 24, 0.3, 2'000.0, 7},
    };
    for (const Config& cfg : configs) {
        FleetSpec dense = small_spec();
        dense.bucket_hours = cfg.bucket_hours;
        dense.acceleration = cfg.accel;
        for (auto& site : dense.sites) {
            site.policy.scrub_interval_h = cfg.scrub_h;
            site.policy.repair_hours = cfg.repair_h;
            site.policy.rain_probability = cfg.rain;
        }
        FleetSpec event = dense;
        event.mode = FleetMode::kEventDriven;

        const FleetResult rd = run_fleet(ResolvedFleet(dense), {});
        const FleetResult re = run_fleet(ResolvedFleet(event), {});
        SCOPED_TRACE(cfg.name);

        const CellTally gd = rd.tally.grand_total();
        const CellTally ge = re.tally.grand_total();
        expect_3sigma(gd.sdc, ge.sdc, "sdc");
        expect_3sigma(gd.due, ge.due, "due");
        expect_3sigma(gd.corrected, ge.corrected, "corrected");
        expect_3sigma(gd.repairs, ge.repairs, "repairs");
        for (std::size_t s = 0; s < rd.tally.sites(); ++s) {
            const CellTally sd = rd.tally.site_total(s);
            const CellTally se = re.tally.site_total(s);
            expect_3sigma(sd.sdc, se.sdc, "site sdc");
            expect_3sigma(sd.due, se.due, "site due");
            expect_3sigma(sd.corrected, se.corrected, "site corrected");
        }
        for (std::size_t c = 0; c < rd.tally.classes(); ++c) {
            const CellTally cd = rd.tally.class_total(c);
            const CellTally ce = re.tally.class_total(c);
            expect_3sigma(cd.sdc, ce.sdc, "class sdc");
            expect_3sigma(cd.due, ce.due, "class due");
        }

        // Exposure: every repair removes at most repair_hours of it, so the
        // modes' device-hours differ by at most the repair-count difference
        // band scaled by the window length.
        const std::uint64_t full =
            dense.devices * dense.total_hours();
        EXPECT_LE(gd.device_hours, full);
        EXPECT_LE(ge.device_hours, full);
        if (cfg.repair_h == 0) {
            EXPECT_EQ(gd.device_hours, full);
            EXPECT_EQ(ge.device_hours, full);
        } else {
            expect_3sigma(full - gd.device_hours, full - ge.device_hours,
                          "lost device-hours",
                          static_cast<double>(cfg.repair_h));
        }
    }
}

TEST(FleetEventMode, DeviceHoursConservationBothModes) {
    // With repair off, no exposure is ever lost: both modes must report
    // exactly devices x hours in total and devices x bucket hours per
    // bucket (the event mode's counted fast path plus its replay path must
    // reconstruct the dense integers, not approximate them).
    for (const FleetMode mode : {FleetMode::kDense, FleetMode::kEventDriven}) {
        FleetSpec spec = small_spec();
        spec.mode = mode;
        for (auto& site : spec.sites) site.policy.repair_hours = 0;
        const ResolvedFleet fleet(spec);
        const FleetResult r = run_fleet(fleet, {});
        EXPECT_EQ(r.tally.grand_total().device_hours,
                  spec.devices * spec.total_hours())
            << to_string(mode);
        for (std::size_t b = 0; b < r.tally.buckets(); ++b) {
            EXPECT_EQ(r.tally.bucket_total(b).device_hours,
                      spec.devices * fleet.bucket(b).hours)
                << to_string(mode) << " bucket " << b;
        }
    }
}

TEST(FleetEventMode, EnvelopeAcceptanceIsUnbiased) {
    // One site, one class: assignment is deterministic, so the event-mode
    // totals are Poisson with an analytically known mean — the integral of
    // the true (weather-modulated) rate over the horizon. Rainy days run AT
    // the envelope rate and dry days strictly below it, so this exercises
    // both the accept-at-1 and the thinning branches.
    FleetSpec spec;
    spec.devices = 2'000;
    spec.days = 30;
    spec.bucket_hours = 24;
    spec.seed = 77;
    spec.acceleration = 1.0;
    spec.mode = FleetMode::kEventDriven;
    FleetSite hall{environment::star_hall(), 1.0, {}};
    hall.policy.rain_probability = 0.5;
    spec.sites.push_back(hall);
    spec.mix.push_back({"NVIDIA K20", 1.0});
    const ResolvedFleet fleet(spec);

    double expected_sdc = 0.0;
    double expected_due = 0.0;
    for (std::size_t b = 0; b < fleet.bucket_count(); ++b) {
        const BucketInfo& bucket = fleet.bucket(b);
        const bool rainy = fleet.rainy(0, bucket.day);
        const double h =
            static_cast<double>(bucket.hours) * spec.devices;
        expected_sdc +=
            fleet.hourly_rate(0, 0, rainy, devices::ErrorType::kSdc) * h;
        expected_due +=
            fleet.hourly_rate(0, 0, rainy, devices::ErrorType::kDue) * h;
    }
    ASSERT_GT(expected_sdc, 500.0);  // enough statistics to mean something.

    const FleetResult r = run_fleet(fleet, {});
    const CellTally g = r.tally.grand_total();
    EXPECT_EQ(g.corrected, 0u);  // no scrubbing configured.
    EXPECT_NEAR(static_cast<double>(g.sdc), expected_sdc,
                3.0 * std::sqrt(expected_sdc) + 10.0);
    EXPECT_NEAR(static_cast<double>(g.due), expected_due,
                3.0 * std::sqrt(expected_due) + 10.0);
}

TEST(FleetEventMode, ShardCountIsBitwiseInvariant) {
    const ResolvedFleet fleet(event_spec());
    FleetRunOptions one;
    one.shards = 1;
    one.chunk_devices = 256;
    const FleetResult r1 = run_fleet(fleet, one);
    for (const unsigned shards : {4u, 7u}) {
        FleetRunOptions opts;
        opts.shards = shards;
        opts.chunk_devices = 256;
        const FleetResult rn = run_fleet(fleet, opts);
        EXPECT_EQ(r1.tally, rn.tally) << shards << " shards";
        EXPECT_EQ(render_fleet_report(fleet, r1.tally, {}),
                  render_fleet_report(fleet, rn.tally, {}))
            << shards << " shards";
    }
}

TEST(FleetEventMode, ChunkSizeIsBitwiseInvariant) {
    const ResolvedFleet fleet(event_spec());
    FleetRunOptions big;
    big.chunk_devices = kDefaultChunkDevices;
    const FleetResult base = run_fleet(fleet, big);
    for (const std::uint64_t chunk : {1'000ULL, 777ULL, 100ULL}) {
        FleetRunOptions opts;
        opts.shards = 3;
        opts.chunk_devices = chunk;
        const FleetResult r = run_fleet(fleet, opts);
        EXPECT_EQ(base.tally, r.tally) << "chunk_devices " << chunk;
    }
}

TEST(FleetEventMode, ModeChangesResultDenseStaysPinned) {
    // The dense walk must not consume its stream differently because the
    // enum exists (golden stability), and the event walk must actually be a
    // different sampler, not an alias.
    const FleetResult dense_a = run_fleet(ResolvedFleet(small_spec()), {});
    const FleetResult dense_b = run_fleet(ResolvedFleet(small_spec()), {});
    EXPECT_EQ(dense_a.tally, dense_b.tally);
    const FleetResult event = run_fleet(ResolvedFleet(event_spec()), {});
    EXPECT_NE(dense_a.tally, event.tally);
}

// --- Spec validation --------------------------------------------------------

TEST(FleetSpecValidation, ParseFleetModeSharedVocabulary) {
    EXPECT_EQ(parse_fleet_mode("dense", "fleet"), FleetMode::kDense);
    EXPECT_EQ(parse_fleet_mode("event", "fleet"), FleetMode::kEventDriven);
    EXPECT_STREQ(to_string(FleetMode::kDense), "dense");
    EXPECT_STREQ(to_string(FleetMode::kEventDriven), "event");
    try {
        parse_fleet_mode("bogus", "fleet-slice");
        FAIL() << "expected RunError";
    } catch (const core::RunError& e) {
        EXPECT_NE(std::string(e.what()).find(
                      "fleet-slice: unknown fleet-mode: bogus"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FleetSpecValidation, FingerprintSeesMode) {
    EXPECT_NE(spec_fingerprint(small_spec()), spec_fingerprint(event_spec()));
}

TEST(FleetSpecResolution, PickMatchesLinearScanReference) {
    // pick_site/pick_class binary-search the weight CDF; pin them against a
    // straightforward linear scan over the same CDF arithmetic so the
    // upper_bound implementation can never silently shift assignment.
    FleetSpec spec = small_spec();
    spec.mix.clear();
    std::vector<double> weights;
    for (int i = 0; i < 12; ++i) {
        const double w = 0.7 * static_cast<double>(i + 1);
        spec.mix.push_back(
            {i % 2 == 0 ? "NVIDIA K20" : "Intel Xeon Phi", w});
        weights.push_back(w);
    }
    const ResolvedFleet fleet(spec);

    double total = 0.0;
    for (const double w : weights) total += w;
    std::vector<double> cdf;
    double acc = 0.0;
    for (const double w : weights) {
        acc += w;
        cdf.push_back(acc / total);
    }
    cdf.back() = 1.0;
    const auto linear = [&](double u) {
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            if (u < cdf[i]) return i;
        }
        return cdf.size() - 1;
    };

    EXPECT_EQ(fleet.pick_class(0.0), 0u);
    for (const double boundary : cdf) {
        EXPECT_EQ(fleet.pick_class(boundary), linear(boundary)) << boundary;
    }
    stats::Rng rng(4242);
    for (int k = 0; k < 20'000; ++k) {
        const double u = rng.uniform();
        ASSERT_EQ(fleet.pick_class(u), linear(u)) << u;
    }
}

TEST(FleetSpecValidation, RejectsNonsense) {
    FleetSpec spec = small_spec();
    spec.devices = 0;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.mix.clear();
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.sites[0].policy.rain_probability = 1.5;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.mix[0].device = "No Such Device";
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.acceleration = 0.0;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
}

TEST(FleetSpecValidation, FingerprintSeesPolicyChanges) {
    const FleetSpec a = small_spec();
    FleetSpec b = small_spec();
    b.sites[0].policy.scrub_interval_h += 1.0;
    EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
    EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(small_spec()));
}

// --- Journal / resume -------------------------------------------------------

std::string temp_journal_path(const char* tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("tnr_fleet_test_") + tag + ".jsonl"))
        .string();
}

TEST(FleetJournalTest, ResumeReproducesUninterruptedRunBitwise) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::uint64_t chunk_devices = 500;

    FleetRunOptions direct;
    direct.chunk_devices = chunk_devices;
    const FleetResult base = run_fleet(fleet, direct);

    // Journal a full run, then pretend the process died after 3 chunks by
    // replaying only a truncated prefix.
    const std::string path = temp_journal_path("resume");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, chunk_devices);
        FleetRunOptions opts;
        opts.chunk_devices = chunk_devices;
        opts.on_chunk_done = [&](std::uint64_t chunk,
                                 const FleetTally& delta) {
            journal.append_chunk(chunk, delta);
        };
        const FleetResult journaled = run_fleet(fleet, opts);
        EXPECT_EQ(journaled.tally, base.tally);
    }

    FleetReplay replay = replay_fleet_journal(path);
    EXPECT_EQ(replay.chunks, chunk_count(spec, chunk_devices));
    EXPECT_EQ(replay.completed.size(), replay.chunks);
    validate_fleet_resume(replay, fleet, chunk_devices);

    // Keep only 3 chunk tallies and resume: the walk must simulate the
    // rest and the merged result must be bit-identical to the direct run.
    std::map<std::uint64_t, FleetTally> partial;
    std::size_t kept = 0;
    for (const auto& [index, tally] : replay.completed) {
        if (kept++ == 3) break;
        partial.emplace(index, tally);
    }
    FleetRunOptions resume;
    resume.chunk_devices = chunk_devices;
    resume.completed = &partial;
    resume.shards = 2;
    const FleetResult resumed = run_fleet(fleet, resume);
    EXPECT_EQ(resumed.replayed_chunks, 3u);
    EXPECT_EQ(resumed.simulated_chunks + resumed.replayed_chunks,
              resumed.chunks);
    EXPECT_EQ(resumed.tally, base.tally);
    EXPECT_EQ(render_fleet_report(fleet, resumed.tally, {}),
              render_fleet_report(fleet, base.tally, {}));

    std::filesystem::remove(path);
}

TEST(FleetJournalTest, ResumeRejectsMismatchedSpec) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::string path = temp_journal_path("mismatch");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, 500);
    }
    const FleetReplay replay = replay_fleet_journal(path);

    FleetSpec reseeded = spec;
    reseeded.seed += 1;
    EXPECT_THROW(validate_fleet_resume(replay, ResolvedFleet(reseeded), 500),
                 core::RunError);
    // Same spec, different chunk size: chunk indices would not line up.
    EXPECT_THROW(validate_fleet_resume(replay, fleet, 1'000), core::RunError);
    // Policy change shows up via the fingerprint.
    FleetSpec repoliced = spec;
    repoliced.sites[0].policy.scrub_interval_h += 1.0;
    EXPECT_THROW(
        validate_fleet_resume(replay, ResolvedFleet(repoliced), 500),
        core::RunError);

    std::filesystem::remove(path);
}

TEST(FleetJournalTest, ReplayToleratesTornTailOnly) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::string path = temp_journal_path("torn");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, 500);
        FleetRunOptions opts;
        opts.chunk_devices = 500;
        opts.on_chunk_done = [&](std::uint64_t chunk,
                                 const FleetTally& delta) {
            journal.append_chunk(chunk, delta);
        };
        run_fleet(fleet, opts);
    }
    // Chop the file mid-line: the torn tail must be ignored, everything
    // before it recovered.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 10);
    const FleetReplay replay = replay_fleet_journal(path);
    EXPECT_EQ(replay.completed.size(),
              chunk_count(spec, 500) - 1);
    std::filesystem::remove(path);
}

TEST(FleetJournalTest, CrossModeResumeRefused) {
    // The two modes consume a device's stream differently, so a journal
    // written in one mode must refuse to resume in the other (the mode is
    // part of the spec fingerprint the header stores).
    const ResolvedFleet dense_fleet(small_spec());
    const std::string path = temp_journal_path("xmode");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(dense_fleet, 500);
    }
    const FleetReplay replay = replay_fleet_journal(path);
    validate_fleet_resume(replay, dense_fleet, 500);  // same mode: fine.
    EXPECT_THROW(
        validate_fleet_resume(replay, ResolvedFleet(event_spec()), 500),
        core::RunError);
    std::filesystem::remove(path);
}

TEST(FleetJournalTest, EventModeResumeReproducesBitwise) {
    const ResolvedFleet fleet(event_spec());
    const std::uint64_t chunk_devices = 500;
    FleetRunOptions direct;
    direct.chunk_devices = chunk_devices;
    const FleetResult base = run_fleet(fleet, direct);

    std::map<std::uint64_t, FleetTally> completed;
    FleetRunOptions journaled;
    journaled.chunk_devices = chunk_devices;
    journaled.on_chunk_done = [&](std::uint64_t chunk,
                                  const FleetTally& delta) {
        completed.emplace(chunk, delta);
    };
    run_fleet(fleet, journaled);

    std::map<std::uint64_t, FleetTally> partial;
    std::size_t kept = 0;
    for (const auto& [index, tally] : completed) {
        if (kept++ == 3) break;
        partial.emplace(index, tally);
    }
    FleetRunOptions resume;
    resume.chunk_devices = chunk_devices;
    resume.completed = &partial;
    resume.shards = 2;
    const FleetResult resumed = run_fleet(fleet, resume);
    EXPECT_EQ(resumed.replayed_chunks, 3u);
    EXPECT_EQ(resumed.tally, base.tally);
}

// --- Resume load balancing --------------------------------------------------

TEST(FleetSimulator, ResumePartitionGivesEveryShardLiveWork) {
    // A 90%-complete journal leaves 10 of 100 chunks pending; partitioning
    // the SHARD RANGES over the pending list (not the raw chunk index
    // space) must hand every one of 4 shards real work, in disjoint
    // contiguous ranges that cover exactly the pending chunks.
    std::map<std::uint64_t, FleetTally> completed;
    for (std::uint64_t chunk = 0; chunk < 90; ++chunk) {
        completed.emplace(chunk, FleetTally{});
    }
    const std::vector<std::uint64_t> pending =
        pending_chunks(100, &completed);
    ASSERT_EQ(pending.size(), 10u);
    for (std::size_t i = 0; i < pending.size(); ++i) {
        EXPECT_EQ(pending[i], 90 + i);
    }

    std::uint64_t prev_end = 0;
    for (unsigned shard = 0; shard < 4; ++shard) {
        const auto [begin, end] = shard_range(pending.size(), 4, shard);
        EXPECT_GT(end, begin) << "shard " << shard << " got no live work";
        EXPECT_EQ(begin, prev_end) << "shard " << shard;
        EXPECT_LE(end - begin, 3u);  // balanced: sizes 3,3,2,2.
        prev_end = end;
    }
    EXPECT_EQ(prev_end, pending.size());

    // No journal at all: the pending list is every chunk.
    EXPECT_EQ(pending_chunks(5, nullptr).size(), 5u);
    // More shards than pending work: ranges stay disjoint and covering,
    // sizes differ by at most one.
    std::uint64_t covered = 0;
    for (unsigned shard = 0; shard < 5; ++shard) {
        const auto [begin, end] = shard_range(3, 5, shard);
        EXPECT_LE(end - begin, 1u);
        covered += end - begin;
    }
    EXPECT_EQ(covered, 3u);
}

TEST(FleetSimulator, NinetyPercentResumeIsBitwiseIdenticalAcrossShards) {
    // End-to-end satellite check: resuming the last 10% of a run with 4
    // shards must reproduce the uninterrupted single-shard result bitwise.
    const ResolvedFleet fleet(small_spec());
    const std::uint64_t chunk_devices = 30;  // 3000 devices -> 100 chunks.
    ASSERT_EQ(chunk_count(fleet.spec(), chunk_devices), 100u);

    FleetRunOptions direct;
    direct.chunk_devices = chunk_devices;
    const FleetResult base = run_fleet(fleet, direct);

    std::map<std::uint64_t, FleetTally> completed;
    FleetRunOptions journaled;
    journaled.chunk_devices = chunk_devices;
    journaled.on_chunk_done = [&](std::uint64_t chunk,
                                  const FleetTally& delta) {
        if (chunk < 90) completed.emplace(chunk, delta);
    };
    run_fleet(fleet, journaled);
    ASSERT_EQ(completed.size(), 90u);

    FleetRunOptions resume;
    resume.chunk_devices = chunk_devices;
    resume.completed = &completed;
    resume.shards = 4;
    const FleetResult resumed = run_fleet(fleet, resume);
    EXPECT_EQ(resumed.replayed_chunks, 90u);
    EXPECT_EQ(resumed.simulated_chunks, 10u);
    EXPECT_EQ(resumed.tally, base.tally);
    EXPECT_EQ(render_fleet_report(fleet, resumed.tally, {}),
              render_fleet_report(fleet, base.tally, {}));
}

// --- CLI / serve byte identity ----------------------------------------------

TEST(FleetServe, FleetSliceMatchesCliByteForByte) {
    serve::FleetParams params;
    params.devices = 2'000;
    params.days = 3;
    params.seed = 5;
    params.sites = "nyc,star-hall";
    params.mix = "NVIDIA K20:1";
    params.rain_probability = 0.3;
    const std::string served = serve::render_fleet(params);

    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(cli::run({"fleet", "--devices", "2000", "--days", "3",
                        "--seed", "5", "--sites", "nyc,star-hall", "--mix",
                        "NVIDIA K20:1", "--rain-prob", "0.3"},
                       out, err),
              0)
        << err.str();
    EXPECT_EQ(out.str(), served);
}

TEST(FleetServe, FleetModeParamMatchesCliByteForByte) {
    serve::FleetParams params;
    params.devices = 2'000;
    params.days = 3;
    params.seed = 5;
    params.sites = "nyc,star-hall";
    params.mix = "NVIDIA K20:1";
    params.rain_probability = 0.3;
    params.fleet_mode = "event";
    const std::string served = serve::render_fleet(params);

    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(cli::run({"fleet", "--devices", "2000", "--days", "3",
                        "--seed", "5", "--sites", "nyc,star-hall", "--mix",
                        "NVIDIA K20:1", "--rain-prob", "0.3",
                        "--fleet-mode", "event"},
                       out, err),
              0)
        << err.str();
    EXPECT_EQ(out.str(), served);

    params.fleet_mode = "bogus";
    EXPECT_THROW(serve::render_fleet(params), core::RunError);
}

TEST(FleetServe, SliceFilterAndUnknownSlice) {
    serve::FleetParams params;
    params.devices = 1'000;
    params.days = 2;
    params.sites = "nyc,star-hall";
    params.mix = "NVIDIA K20:1";
    params.slice = "STAR experimental hall (BNL)";
    const std::string sliced = serve::render_fleet(params);
    EXPECT_NE(sliced.find("STAR experimental hall (BNL)"), std::string::npos);
    EXPECT_EQ(sliced.find("NYC reference data center"), std::string::npos);

    params.slice = "No Such Hall";
    EXPECT_THROW(serve::render_fleet(params), core::RunError);
}

}  // namespace
}  // namespace tnr::fleet

// Tests for the streaming fleet simulator (src/fleet): aggregator merge
// algebra, Poisson CI correctness against the closed form, the bitwise
// shard/chunk invariance contract, scrub/repair policy effects, journal
// resume identity, and CLI/serve byte identity.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "core/error.hpp"
#include "fleet/aggregator.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/render.hpp"
#include "fleet/simulator.hpp"
#include "fleet/spec.hpp"
#include "serve/handlers.hpp"
#include "stats/poisson.hpp"
#include "stats/rng.hpp"

namespace tnr::fleet {
namespace {

// --- Fixtures ---------------------------------------------------------------

/// A small but non-trivial study: two sites with different policies, two
/// device classes, sub-daily buckets, accelerated so events are plentiful.
FleetSpec small_spec() {
    FleetSpec spec;
    spec.devices = 3'000;
    spec.days = 5;
    spec.bucket_hours = 12;
    spec.seed = 99;
    spec.acceleration = 2'000.0;
    FleetSite nyc{environment::nyc_datacenter(), 2.0, {}};
    nyc.policy.scrub_interval_h = 12.0;
    nyc.policy.repair_hours = 24;
    nyc.policy.rain_probability = 0.3;
    spec.sites.push_back(nyc);
    spec.sites.push_back({environment::star_hall(), 1.0, {}});
    spec.mix.push_back({"NVIDIA K20", 2.0});
    spec.mix.push_back({"Intel Xeon Phi", 1.0});
    return spec;
}

FleetTally random_tally(std::uint64_t seed, std::size_t sites = 2,
                        std::size_t classes = 3, std::size_t buckets = 4) {
    FleetTally tally(sites, classes, buckets);
    stats::Rng rng(seed);
    for (auto& cell : tally.cells()) {
        cell.sdc = rng.uniform_index(100);
        cell.due = rng.uniform_index(100);
        cell.corrected = rng.uniform_index(100);
        cell.repairs = rng.uniform_index(10);
        cell.device_hours = rng.uniform_index(100'000);
    }
    for (auto& a : tally.assigned_flat()) a = rng.uniform_index(1'000);
    return tally;
}

// --- Aggregator algebra -----------------------------------------------------

TEST(FleetAggregator, MergeIsAssociative) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const FleetTally a = random_tally(seed);
        const FleetTally b = random_tally(seed + 100);
        const FleetTally c = random_tally(seed + 200);

        FleetTally left = a;   // (a + b) + c
        left.merge(b);
        left.merge(c);
        FleetTally bc = b;     // a + (b + c)
        bc.merge(c);
        FleetTally right = a;
        right.merge(bc);
        EXPECT_EQ(left, right) << "seed " << seed;
    }
}

TEST(FleetAggregator, MergeIsCommutative) {
    const FleetTally a = random_tally(7);
    const FleetTally b = random_tally(8);
    FleetTally ab = a;
    ab.merge(b);
    FleetTally ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(FleetAggregator, MergingEmptyShellIsNoOp) {
    const FleetTally a = random_tally(11);
    FleetTally merged = a;
    merged.merge(FleetTally{});  // default-constructed placeholder slot.
    EXPECT_EQ(merged, a);

    FleetTally shell;  // and folding INTO a shell adopts the other side.
    shell.merge(a);
    EXPECT_EQ(shell, a);
}

TEST(FleetAggregator, MergeRejectsMismatchedDimensions) {
    FleetTally a(2, 3, 4);
    const FleetTally b(2, 3, 5);
    EXPECT_THROW(a.merge(b), core::RunError);
}

TEST(FleetAggregator, MarginalsSumTheLattice) {
    const FleetTally t = random_tally(13);
    CellTally by_site;
    for (std::size_t s = 0; s < t.sites(); ++s) by_site.add(t.site_total(s));
    CellTally by_class;
    for (std::size_t c = 0; c < t.classes(); ++c) {
        by_class.add(t.class_total(c));
    }
    CellTally by_bucket;
    for (std::size_t b = 0; b < t.buckets(); ++b) {
        by_bucket.add(t.bucket_total(b));
    }
    const CellTally grand = t.grand_total();
    EXPECT_EQ(by_site, grand);
    EXPECT_EQ(by_class, grand);
    EXPECT_EQ(by_bucket, grand);
}

// --- Poisson CI correctness -------------------------------------------------

TEST(FleetAggregator, FitIntervalMatchesClosedForm) {
    // fit_interval is poisson_rate_interval with exposure in units of 1e9
    // accelerated device-hours, so the interval lands directly in FIT.
    const std::uint64_t count = 42;
    const std::uint64_t device_hours = 1'000'000;
    const double accel = 50.0;
    const stats::Interval got = fit_interval(count, device_hours, accel);
    const stats::Interval want = stats::poisson_rate_interval(
        count, static_cast<double>(device_hours) * accel / 1e9);
    EXPECT_DOUBLE_EQ(got.lower, want.lower);
    EXPECT_DOUBLE_EQ(got.upper, want.upper);

    const double estimate = fit_estimate(count, device_hours, accel);
    EXPECT_NEAR(estimate,
                static_cast<double>(count) /
                    (static_cast<double>(device_hours) * accel / 1e9),
                1e-9);
    EXPECT_TRUE(got.contains(estimate));

    // Garwood relation to the mean interval: rate CI = mean CI / exposure.
    const stats::Interval mean = stats::poisson_mean_interval(count);
    const double exposure =
        static_cast<double>(device_hours) * accel / 1e9;
    EXPECT_NEAR(got.lower, mean.lower / exposure, 1e-9 * got.lower);
    EXPECT_NEAR(got.upper, mean.upper / exposure, 1e-9 * got.upper);
}

TEST(FleetAggregator, FitIntervalZeroExposureIsEmpty) {
    const stats::Interval got = fit_interval(5, 0, 1.0);
    EXPECT_DOUBLE_EQ(got.lower, 0.0);
    EXPECT_DOUBLE_EQ(got.upper, 0.0);
    EXPECT_DOUBLE_EQ(fit_estimate(5, 0, 1.0), 0.0);
}

TEST(FleetAggregator, FitIntervalZeroCountLowerBoundIsZero) {
    const stats::Interval got = fit_interval(0, 1'000'000, 1.0);
    EXPECT_DOUBLE_EQ(got.lower, 0.0);
    EXPECT_GT(got.upper, 0.0);
}

// --- Determinism and invariance ---------------------------------------------

TEST(FleetSimulator, ShardCountIsBitwiseInvariant) {
    const ResolvedFleet fleet(small_spec());
    FleetRunOptions one;
    one.shards = 1;
    one.chunk_devices = 256;  // 12 chunks, so shards have real ranges.
    const FleetResult r1 = run_fleet(fleet, one);
    for (const unsigned shards : {4u, 7u}) {
        FleetRunOptions opts;
        opts.shards = shards;
        opts.chunk_devices = 256;
        const FleetResult rn = run_fleet(fleet, opts);
        EXPECT_EQ(r1.tally, rn.tally) << shards << " shards";
        EXPECT_EQ(render_fleet_report(fleet, r1.tally, {}),
                  render_fleet_report(fleet, rn.tally, {}))
            << shards << " shards";
    }
}

TEST(FleetSimulator, ChunkSizeIsBitwiseInvariant) {
    const ResolvedFleet fleet(small_spec());
    FleetRunOptions big;
    big.chunk_devices = kDefaultChunkDevices;
    const FleetResult base = run_fleet(fleet, big);
    for (const std::uint64_t chunk : {1'000ULL, 777ULL}) {
        FleetRunOptions opts;
        opts.shards = 3;
        opts.chunk_devices = chunk;
        const FleetResult r = run_fleet(fleet, opts);
        EXPECT_EQ(base.tally, r.tally) << "chunk_devices " << chunk;
    }
}

TEST(FleetSimulator, SameSeedSameResultDifferentSeedDifferent) {
    const ResolvedFleet fleet(small_spec());
    const FleetResult a = run_fleet(fleet, {});
    const FleetResult b = run_fleet(fleet, {});
    EXPECT_EQ(a.tally, b.tally);

    FleetSpec reseeded = small_spec();
    reseeded.seed = 100;
    const ResolvedFleet other(reseeded);
    const FleetResult c = run_fleet(other, {});
    EXPECT_NE(a.tally, c.tally);
}

TEST(FleetSimulator, DeviceStreamIsCounterBased) {
    // Opening a device's stream is pure in (seed, index): no serial
    // splitting, so any shard reconstructs any stream identically.
    stats::Rng a = device_stream(2020, 1'234'567);
    stats::Rng b = device_stream(2020, 1'234'567);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
    stats::Rng c = device_stream(2020, 1'234'568);
    EXPECT_NE(device_stream(2020, 1'234'567).uniform(), c.uniform());
}

TEST(FleetSimulator, WeatherSeriesTracksRainProbability) {
    FleetSpec spec = small_spec();
    spec.days = 365;
    spec.sites[0].policy.rain_probability = 0.25;
    const ResolvedFleet fleet(spec);
    unsigned rainy_days = 0;
    for (std::uint32_t day = 0; day < spec.days; ++day) {
        rainy_days += fleet.rainy(0, day) ? 1 : 0;
        EXPECT_FALSE(fleet.rainy(1, day));  // site 1 has p = 0.
    }
    const double frac = static_cast<double>(rainy_days) / spec.days;
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.35);
}

TEST(FleetSimulator, ConservationOfDevicesAndExposure) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const FleetResult r = run_fleet(fleet, {});
    EXPECT_EQ(r.tally.total_assigned(), spec.devices);
    // Exposure can only be lost to repair downtime, never gained.
    const std::uint64_t full =
        spec.devices * spec.days * 24ULL;
    EXPECT_LE(r.tally.grand_total().device_hours, full);
    EXPECT_GT(r.tally.grand_total().device_hours, 0u);
}

// --- Policy effects ---------------------------------------------------------

TEST(FleetSimulator, ScrubbingCorrectsAndThinsSdc) {
    FleetSpec off = small_spec();
    off.sites[0].policy.scrub_interval_h = 0.0;  // scrubbing off everywhere.
    off.sites[0].policy.repair_hours = 0;
    off.sites[1].policy.scrub_interval_h = 0.0;
    const FleetResult r_off = run_fleet(ResolvedFleet(off), {});
    EXPECT_EQ(r_off.tally.grand_total().corrected, 0u);

    FleetSpec on = off;
    on.sites[0].policy.scrub_interval_h = 6.0;
    on.sites[1].policy.scrub_interval_h = 6.0;
    const FleetResult r_on = run_fleet(ResolvedFleet(on), {});
    EXPECT_GT(r_on.tally.grand_total().corrected, 0u);
    EXPECT_LT(r_on.tally.grand_total().sdc, r_off.tally.grand_total().sdc);
    // Scrubbing intercepts latent faults on their way to a consuming read;
    // it does not suppress the arrivals themselves, so faults seen (SDC +
    // corrected) stay in the same ballpark as the unscrubbed SDC count.
    const double seen = static_cast<double>(
        r_on.tally.grand_total().sdc + r_on.tally.grand_total().corrected);
    const double unscrubbed =
        static_cast<double>(r_off.tally.grand_total().sdc);
    EXPECT_GT(seen, 0.8 * unscrubbed);
    EXPECT_LT(seen, 1.2 * unscrubbed);
}

TEST(FleetSimulator, RepairTakesDevicesOffline) {
    FleetSpec no_repair = small_spec();
    no_repair.sites[0].policy.repair_hours = 0;
    no_repair.sites[1].policy.repair_hours = 0;
    const FleetResult r_none = run_fleet(ResolvedFleet(no_repair), {});
    EXPECT_EQ(r_none.tally.grand_total().repairs, 0u);

    FleetSpec repair = no_repair;
    repair.sites[0].policy.repair_hours = 48;
    repair.sites[1].policy.repair_hours = 48;
    const FleetResult r_some = run_fleet(ResolvedFleet(repair), {});
    EXPECT_GT(r_some.tally.grand_total().repairs, 0u);
    EXPECT_LT(r_some.tally.grand_total().device_hours,
              r_none.tally.grand_total().device_hours);
}

// --- Spec validation --------------------------------------------------------

TEST(FleetSpecValidation, RejectsNonsense) {
    FleetSpec spec = small_spec();
    spec.devices = 0;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.mix.clear();
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.sites[0].policy.rain_probability = 1.5;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.mix[0].device = "No Such Device";
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
    spec = small_spec();
    spec.acceleration = 0.0;
    EXPECT_THROW(ResolvedFleet{spec}, core::RunError);
}

TEST(FleetSpecValidation, FingerprintSeesPolicyChanges) {
    const FleetSpec a = small_spec();
    FleetSpec b = small_spec();
    b.sites[0].policy.scrub_interval_h += 1.0;
    EXPECT_NE(spec_fingerprint(a), spec_fingerprint(b));
    EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(small_spec()));
}

// --- Journal / resume -------------------------------------------------------

std::string temp_journal_path(const char* tag) {
    return (std::filesystem::temp_directory_path() /
            (std::string("tnr_fleet_test_") + tag + ".jsonl"))
        .string();
}

TEST(FleetJournalTest, ResumeReproducesUninterruptedRunBitwise) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::uint64_t chunk_devices = 500;

    FleetRunOptions direct;
    direct.chunk_devices = chunk_devices;
    const FleetResult base = run_fleet(fleet, direct);

    // Journal a full run, then pretend the process died after 3 chunks by
    // replaying only a truncated prefix.
    const std::string path = temp_journal_path("resume");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, chunk_devices);
        FleetRunOptions opts;
        opts.chunk_devices = chunk_devices;
        opts.on_chunk_done = [&](std::uint64_t chunk,
                                 const FleetTally& delta) {
            journal.append_chunk(chunk, delta);
        };
        const FleetResult journaled = run_fleet(fleet, opts);
        EXPECT_EQ(journaled.tally, base.tally);
    }

    FleetReplay replay = replay_fleet_journal(path);
    EXPECT_EQ(replay.chunks, chunk_count(spec, chunk_devices));
    EXPECT_EQ(replay.completed.size(), replay.chunks);
    validate_fleet_resume(replay, fleet, chunk_devices);

    // Keep only 3 chunk tallies and resume: the walk must simulate the
    // rest and the merged result must be bit-identical to the direct run.
    std::map<std::uint64_t, FleetTally> partial;
    std::size_t kept = 0;
    for (const auto& [index, tally] : replay.completed) {
        if (kept++ == 3) break;
        partial.emplace(index, tally);
    }
    FleetRunOptions resume;
    resume.chunk_devices = chunk_devices;
    resume.completed = &partial;
    resume.shards = 2;
    const FleetResult resumed = run_fleet(fleet, resume);
    EXPECT_EQ(resumed.replayed_chunks, 3u);
    EXPECT_EQ(resumed.simulated_chunks + resumed.replayed_chunks,
              resumed.chunks);
    EXPECT_EQ(resumed.tally, base.tally);
    EXPECT_EQ(render_fleet_report(fleet, resumed.tally, {}),
              render_fleet_report(fleet, base.tally, {}));

    std::filesystem::remove(path);
}

TEST(FleetJournalTest, ResumeRejectsMismatchedSpec) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::string path = temp_journal_path("mismatch");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, 500);
    }
    const FleetReplay replay = replay_fleet_journal(path);

    FleetSpec reseeded = spec;
    reseeded.seed += 1;
    EXPECT_THROW(validate_fleet_resume(replay, ResolvedFleet(reseeded), 500),
                 core::RunError);
    // Same spec, different chunk size: chunk indices would not line up.
    EXPECT_THROW(validate_fleet_resume(replay, fleet, 1'000), core::RunError);
    // Policy change shows up via the fingerprint.
    FleetSpec repoliced = spec;
    repoliced.sites[0].policy.scrub_interval_h += 1.0;
    EXPECT_THROW(
        validate_fleet_resume(replay, ResolvedFleet(repoliced), 500),
        core::RunError);

    std::filesystem::remove(path);
}

TEST(FleetJournalTest, ReplayToleratesTornTailOnly) {
    const FleetSpec spec = small_spec();
    const ResolvedFleet fleet(spec);
    const std::string path = temp_journal_path("torn");
    {
        FleetJournal journal(path, /*truncate=*/true);
        journal.write_header(fleet, 500);
        FleetRunOptions opts;
        opts.chunk_devices = 500;
        opts.on_chunk_done = [&](std::uint64_t chunk,
                                 const FleetTally& delta) {
            journal.append_chunk(chunk, delta);
        };
        run_fleet(fleet, opts);
    }
    // Chop the file mid-line: the torn tail must be ignored, everything
    // before it recovered.
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 10);
    const FleetReplay replay = replay_fleet_journal(path);
    EXPECT_EQ(replay.completed.size(),
              chunk_count(spec, 500) - 1);
    std::filesystem::remove(path);
}

// --- CLI / serve byte identity ----------------------------------------------

TEST(FleetServe, FleetSliceMatchesCliByteForByte) {
    serve::FleetParams params;
    params.devices = 2'000;
    params.days = 3;
    params.seed = 5;
    params.sites = "nyc,star-hall";
    params.mix = "NVIDIA K20:1";
    params.rain_probability = 0.3;
    const std::string served = serve::render_fleet(params);

    std::ostringstream out;
    std::ostringstream err;
    ASSERT_EQ(cli::run({"fleet", "--devices", "2000", "--days", "3",
                        "--seed", "5", "--sites", "nyc,star-hall", "--mix",
                        "NVIDIA K20:1", "--rain-prob", "0.3"},
                       out, err),
              0)
        << err.str();
    EXPECT_EQ(out.str(), served);
}

TEST(FleetServe, SliceFilterAndUnknownSlice) {
    serve::FleetParams params;
    params.devices = 1'000;
    params.days = 2;
    params.sites = "nyc,star-hall";
    params.mix = "NVIDIA K20:1";
    params.slice = "STAR experimental hall (BNL)";
    const std::string sliced = serve::render_fleet(params);
    EXPECT_NE(sliced.find("STAR experimental hall (BNL)"), std::string::npos);
    EXPECT_EQ(sliced.find("NYC reference data center"), std::string::npos);

    params.slice = "No Such Hall";
    EXPECT_THROW(serve::render_fleet(params), core::RunError);
}

}  // namespace
}  // namespace tnr::fleet

// Overload-control tests for the multi-client serve front-end: bounded
// admission with typed `overloaded` sheds (never cached, always carrying
// retry_after_ms), priority classes keeping interactive queries ahead of
// batch work, inline stats/health under saturation, idle-timeout closes,
// stop-drain answering every admitted request, and the `tnr stats --watch`
// reconnect loop.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cli/cli.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/parallel/cancel.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace tnr::serve {
namespace {

namespace json = core::obs::json;
namespace parallel = core::parallel;

// These tests need real compute concurrency (an occupier in one inflight
// slot while another slot answers), so pin the shared pool to 4 workers
// regardless of the host's core count. Must run before the first
// ThreadPool::shared() touch, hence a namespace-scope initializer.
const bool kPoolPinned = [] {
    ::setenv("TNR_THREADS", "4", /*overwrite=*/0);
    return true;
}();

/// A serve_unix_socket instance on its own thread, torn down by the stop
/// token. The returned ServeStats are captured for post-mortem assertions.
struct SocketServer {
    std::string path;
    parallel::CancelToken stop;
    Server server;
    std::ostringstream diag;
    ServeStats stats;
    std::thread thread;

    SocketServer(ServeOptions options, std::string socket_path)
        : path(std::move(socket_path)),
          server([&options, this] {
              options.stop = &stop;
              return options;
          }()) {
        std::filesystem::remove(path);
        thread = std::thread(
            [this] { stats = server.serve_unix_socket(path, diag); });
        for (int i = 0; i < 500 && !std::filesystem::exists(path); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        EXPECT_TRUE(std::filesystem::exists(path)) << "server never bound";
    }

    ~SocketServer() {
        if (thread.joinable()) {
            stop.cancel();
            thread.join();
        }
        std::filesystem::remove(path);
    }

    void shutdown() {
        stop.cancel();
        thread.join();
    }
};

/// Minimal blocking test client: one connection, line-at-a-time I/O.
class Client {
public:
    explicit Client(const std::string& path) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        for (int attempt = 0; attempt < 200 && fd_ < 0; ++attempt) {
            const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd < 0) break;
            if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
                fd_ = fd;
                break;
            }
            ::close(fd);
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        EXPECT_GE(fd_, 0) << "could not connect to " << path;
    }
    ~Client() {
        if (fd_ >= 0) ::close(fd_);
    }
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    void send(const std::string& request) {
        const std::string framed = request + "\n";
        const char* p = framed.data();
        std::size_t left = framed.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, p, left);
            ASSERT_GT(n, 0) << "socket write failed";
            p += n;
            left -= static_cast<std::size_t>(n);
        }
    }

    /// Blocking read of one response line ("" on EOF).
    std::string read_line() {
        std::string line;
        char c = 0;
        ssize_t n = 0;
        while ((n = ::read(fd_, &c, 1)) == 1 && c != '\n') line.push_back(c);
        if (n <= 0 && line.empty()) return {};
        return line;
    }

    /// True when the peer closed the connection (EOF on read).
    bool at_eof() {
        char c = 0;
        return ::read(fd_, &c, 1) == 0;
    }

    std::string round_trip(const std::string& request) {
        send(request);
        return read_line();
    }

private:
    int fd_ = -1;
};

double num_of(const json::Value& doc, std::initializer_list<const char*> path) {
    const json::Value* v = &doc;
    for (const char* key : path) {
        if (v == nullptr || !v->is_object()) return -1.0;
        v = v->find(key);
    }
    return v != nullptr ? v->num : -1.0;
}

/// Polls the server's stats method until `pred` holds (or ~5 s pass).
template <typename Pred>
bool wait_for_stats(const std::string& path, Pred pred) {
    for (int attempt = 0; attempt < 500; ++attempt) {
        Client probe(path);
        const std::string line =
            probe.round_trip(R"({"id":"probe","method":"stats"})");
        const auto doc = json::parse(line);
        if (doc && doc->find("status") != nullptr &&
            doc->find("status")->str == "ok") {
            const auto stats = json::parse(doc->find("output")->str);
            if (stats && pred(*stats)) return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

/// A batch request big enough to hold its inflight slot until the stop
/// token drains it (~seconds of Monte Carlo; the per-request token linked
/// to the server stop turns it into a fast cancelled response on drain).
std::string occupier(int seed) {
    return R"({"id":"occ)" + std::to_string(seed) +
           R"(","method":"transmission","params":{"histories":200000000,)"
           R"("seed":)" +
           std::to_string(seed) + "}}";
}

// --- Queue-full shed + drain ------------------------------------------------

TEST(ServeOverload, QueueFullShedsTypedOverloadedUncachedAndDrainAnswersAll) {
    ServeOptions options;
    options.max_inflight = 1;
    options.queue_depth = 1;
    SocketServer srv(options, "/tmp/tnr_test_shed.sock");

    // Fill the single inflight slot, then the single queue slot.
    Client a(srv.path);
    a.send(occupier(1));
    ASSERT_TRUE(wait_for_stats(srv.path, [](const json::Value& s) {
        return num_of(s, {"inflight"}) >= 1.0;
    }));
    Client b(srv.path);
    b.send(occupier(2));
    ASSERT_TRUE(wait_for_stats(srv.path, [](const json::Value& s) {
        return num_of(s, {"queue", "depth"}) >= 1.0;
    }));

    // A full queue must answer immediately with a typed overloaded body
    // carrying a retry hint — never park the request or stall the client.
    Client c(srv.path);
    const std::string shed_line =
        c.round_trip(R"({"id":"shed","method":"fit","params":{"site":"nyc"}})");
    const auto shed = json::parse(shed_line);
    ASSERT_TRUE(shed.has_value()) << shed_line;
    EXPECT_EQ(shed->find("id")->str, "shed");
    EXPECT_EQ(shed->find("status")->str, "overloaded");
    EXPECT_EQ(shed->find("error")->find("category")->str, "overloaded");
    EXPECT_GT(num_of(*shed, {"error", "retry_after_ms"}), 0.0);

    // Sheds never enter the response cache: the identical request's
    // canonical key must still miss.
    const auto doc = json::parse(
        R"({"id":"shed","method":"fit","params":{"site":"nyc"}})");
    ASSERT_TRUE(doc.has_value());
    const std::string canonical = canonical_request(parse_request(*doc));
    EXPECT_FALSE(
        srv.server.cache().get(canonical_hash(canonical), canonical)
            .has_value());

    // Stop. Both admitted occupiers must still get exactly one typed
    // response each (cancelled via the stop-linked per-request tokens).
    srv.shutdown();
    for (Client* victim : {&a, &b}) {
        const auto resp = json::parse(victim->read_line());
        ASSERT_TRUE(resp.has_value());
        const std::string status = resp->find("status")->str;
        EXPECT_TRUE(status == "cancelled" || status == "ok") << status;
    }
    EXPECT_TRUE(srv.stats.stopped);
    EXPECT_GE(srv.stats.shed, 1u);
    EXPECT_EQ(srv.stats.requests,
              srv.stats.ok + srv.stats.errors + srv.stats.cancelled +
                  srv.stats.shed)
        << "every admitted request must resolve to exactly one outcome";
}

// --- Priority classes -------------------------------------------------------

TEST(ServeOverload, InteractiveClassOvertakesQueuedBatchWork) {
    ServeOptions options;
    options.max_inflight = 1;
    options.queue_depth = 8;
    SocketServer srv(options, "/tmp/tnr_test_prio.sock");

    // Occupy the only slot for roughly a second of compute.
    Client occ(srv.path);
    occ.send(
        R"({"id":"occ","method":"transmission","params":{"histories":1000000,"seed":9}})");
    ASSERT_TRUE(wait_for_stats(srv.path, [](const json::Value& s) {
        return num_of(s, {"inflight"}) >= 1.0;
    }));

    // Queue batch work first, then an interactive query behind it. The
    // batch job is itself slow (~0.5 s) so the interactive response lands
    // a comfortable margin ahead when it is popped first.
    Client batch(srv.path);
    batch.send(
        R"({"id":"b","method":"transmission","params":{"histories":400000,"seed":3}})");
    Client inter(srv.path);
    inter.send(R"({"id":"i","method":"fit","params":{"site":"nyc"}})");
    ASSERT_TRUE(wait_for_stats(srv.path, [](const json::Value& s) {
        return num_of(s, {"queue", "depth"}) >= 2.0;
    }));

    // While the slot is saturated, stats and health still answer inline.
    Client probe(srv.path);
    const auto health =
        json::parse(probe.round_trip(R"({"id":"h","method":"health"})"));
    ASSERT_TRUE(health.has_value());
    EXPECT_EQ(health->find("status")->str, "ok");

    // When the slot frees, the interactive request must pop first even
    // though the batch request was queued ahead of it.
    std::atomic<std::uint64_t> t_inter{0};
    std::atomic<std::uint64_t> t_batch{0};
    const auto stamp = [] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    };
    std::thread ri([&] {
        const std::string line = inter.read_line();
        t_inter = stamp();
        const auto doc = json::parse(line);
        EXPECT_TRUE(doc && doc->find("status")->str == "ok") << line;
    });
    std::thread rb([&] {
        const std::string line = batch.read_line();
        t_batch = stamp();
        const auto doc = json::parse(line);
        EXPECT_TRUE(doc && doc->find("status")->str == "ok") << line;
    });
    ri.join();
    rb.join();
    EXPECT_LT(t_inter.load(), t_batch.load())
        << "interactive response must land before the earlier-queued batch "
           "response";

    const auto occ_resp = json::parse(occ.read_line());
    ASSERT_TRUE(occ_resp.has_value());
}

// --- Idle timeout -----------------------------------------------------------

TEST(ServeOverload, IdleConnectionGetsTypedTimeoutLineThenClose) {
    auto& reg = core::obs::Registry::global();
    const std::uint64_t before =
        reg.counter("serve.connections.idle_timeouts").value();

    ServeOptions options;
    options.idle_timeout_ms = 150.0;
    SocketServer srv(options, "/tmp/tnr_test_idle.sock");

    Client idle(srv.path);
    // An active request resets the idle clock; the timeout only fires on a
    // connection with nothing outstanding.
    const auto ok =
        json::parse(idle.round_trip(R"({"id":"w","method":"health"})"));
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->find("status")->str, "ok");

    const std::string bye_line = idle.read_line();  // blocks until timeout.
    const auto bye = json::parse(bye_line);
    ASSERT_TRUE(bye.has_value()) << bye_line;
    EXPECT_EQ(bye->find("status")->str, "error");
    EXPECT_EQ(bye->find("error")->find("category")->str, "timeout");
    EXPECT_TRUE(idle.at_eof()) << "server must close after the typed line";

    EXPECT_GT(reg.counter("serve.connections.idle_timeouts").value(), before);
    srv.shutdown();
    EXPECT_GE(srv.stats.timeouts, 1u);
}

// --- Mini-storm: every request gets a typed response ------------------------

TEST(ServeOverload, MiniStormAnswersEveryRequestTyped) {
    ServeOptions options;
    options.max_inflight = 2;
    options.queue_depth = 4;
    options.max_clients = 128;
    SocketServer srv(options, "/tmp/tnr_test_storm.sock");

    constexpr int kClients = 64;
    constexpr int kPerClient = 2;
    std::atomic<int> responses{0};
    std::atomic<int> sheds{0};
    std::atomic<int> malformed{0};
    std::atomic<int> sheds_without_retry{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            Client client(srv.path);
            for (int r = 0; r < kPerClient; ++r) {
                // Mostly cache-hittable fits plus some unique detector work.
                const std::string req =
                    (c % 4 != 0)
                        ? R"({"id":"q","method":"fit","params":{"site":"nyc"}})"
                        : R"({"id":"q","method":"detector","params":{"seed":)" +
                              std::to_string(c * 100 + r) + "}}";
                const std::string line = client.round_trip(req);
                const auto doc = json::parse(line);
                if (!doc || doc->find("status") == nullptr) {
                    ++malformed;
                    continue;
                }
                ++responses;
                if (doc->find("status")->str == "overloaded") {
                    ++sheds;
                    if (num_of(*doc, {"error", "retry_after_ms"}) <= 0.0) {
                        ++sheds_without_retry;
                    }
                }
            }
        });
    }
    for (auto& t : clients) t.join();

    EXPECT_EQ(malformed.load(), 0);
    EXPECT_EQ(responses.load(), kClients * kPerClient)
        << "no request may go unanswered (zero silent stalls)";
    EXPECT_EQ(sheds_without_retry.load(), 0)
        << "every shed must carry retry_after_ms";

    srv.shutdown();
    EXPECT_EQ(srv.stats.requests,
              static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_EQ(srv.stats.requests,
              srv.stats.ok + srv.stats.errors + srv.stats.cancelled +
                  srv.stats.shed);
}

// --- Multi-client interleaving ----------------------------------------------

TEST(ServeOverload, SecondClientAnsweredWhileFirstStillComputing) {
    ServeOptions options;
    options.max_inflight = 2;
    SocketServer srv(options, "/tmp/tnr_test_interleave.sock");

    // The old front-end served one connection at a time: B's request would
    // hang until A's connection closed. Now B must round-trip while A's
    // long request is still in flight.
    Client a(srv.path);
    a.send(
        R"({"id":"slow","method":"transmission","params":{"histories":200000000,"seed":1}})");
    ASSERT_TRUE(wait_for_stats(srv.path, [](const json::Value& s) {
        return num_of(s, {"inflight"}) >= 1.0;
    }));

    Client b(srv.path);
    const auto fast =
        json::parse(b.round_trip(R"({"id":"fast","method":"list-devices"})"));
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(fast->find("status")->str, "ok");

    srv.shutdown();
    const auto slow = json::parse(a.read_line());
    ASSERT_TRUE(slow.has_value());
    const std::string status = slow->find("status")->str;
    EXPECT_TRUE(status == "cancelled" || status == "ok") << status;
}

// --- `tnr stats --watch` reconnect ------------------------------------------

TEST(ServeOverload, StatsWatchReconnectsWithBackoffWhenServerComesUpLate) {
    const std::string path = "/tmp/tnr_test_watch_late.sock";
    std::filesystem::remove(path);

    // Start the watch against a socket that does not exist yet: the first
    // connects fail (ECONNREFUSED-equivalent) and must back off and retry
    // rather than kill the watch.
    std::ostringstream out;
    std::ostringstream err;
    std::atomic<int> code{-1};
    std::thread watcher([&] {
        code = cli::run({"stats", "--socket", path, "--watch", "--interval",
                         "0.05", "--polls", "2"},
                        out, err);
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    {
        SocketServer srv({}, path);
        watcher.join();
    }
    EXPECT_EQ(code.load(), 0) << err.str();
    EXPECT_NE(err.str().find("reconnecting in"), std::string::npos)
        << err.str();
    std::vector<std::string> lines;
    std::istringstream split(out.str());
    for (std::string line; std::getline(split, line);) lines.push_back(line);
    EXPECT_EQ(lines.size(), 2u) << out.str();
}

}  // namespace
}  // namespace tnr::serve

// Tests for the per-code sensitivity model: thermal damping (Xeon Phi),
// FPGA area-driven build scaling, normalization invariants, and the
// companion-study per-code observations reproduced by the campaign.

#include <gtest/gtest.h>

#include <algorithm>

#include "beam/campaign.hpp"
#include "beam/code_sensitivity.hpp"
#include "devices/catalog.hpp"
#include "faultinject/avf.hpp"
#include "workloads/suite.hpp"

namespace tnr::beam {
namespace {

TEST(CodeSensitivity, UniformModelIsAllOnes) {
    const auto model =
        CodeSensitivityModel::uniform(workloads::hpc_suite());
    const auto& w = model.weights("MxM");
    EXPECT_DOUBLE_EQ(w.he_sdc, 1.0);
    EXPECT_DOUBLE_EQ(w.th_due, 1.0);
}

TEST(CodeSensitivity, UnknownWorkloadThrows) {
    const auto model = CodeSensitivityModel::uniform(workloads::hpc_suite());
    EXPECT_THROW((void)model.weights("FFT"), std::out_of_range);
}

TEST(CodeSensitivity, WeightsNormalizedToSuiteMeanOne) {
    const auto suite = workloads::suite_for_device("Intel Xeon Phi");
    const auto table = faultinject::VulnerabilityTable::measure(suite, 120, 9);
    const auto model = CodeSensitivityModel::build(
        devices::try_spec_by_name("Intel Xeon Phi"), suite, table);
    double he = 0.0;
    double th = 0.0;
    for (const auto& entry : suite) {
        he += model.weights(entry.name).he_sdc;
        th += model.weights(entry.name).th_sdc;
    }
    const auto n = static_cast<double>(suite.size());
    EXPECT_NEAR(he / n, 1.0, 1e-9);
    EXPECT_NEAR(th / n, 1.0, 1e-9);
}

TEST(CodeSensitivity, XeonPhiThermalSdcNearlyFlat) {
    // Companion study: thermal SDC variation <20% across codes while the HE
    // variation exceeds 2x.
    const auto suite = workloads::suite_for_device("Intel Xeon Phi");
    const auto table = faultinject::VulnerabilityTable::measure(suite, 200, 10);
    const auto model = CodeSensitivityModel::build(
        devices::try_spec_by_name("Intel Xeon Phi"), suite, table);
    double th_min = 1e9;
    double th_max = 0.0;
    for (const auto& entry : suite) {
        const double w = model.weights(entry.name).th_sdc;
        th_min = std::min(th_min, w);
        th_max = std::max(th_max, w);
    }
    EXPECT_LT(th_max / th_min, 1.25);
}

TEST(CodeSensitivity, K20ThermalTracksHeTrend) {
    // Companion study (K20): the code with the largest thermal cross
    // section is also the code with the largest HE cross section (damping 1).
    const auto suite = workloads::suite_for_device("NVIDIA K20");
    const auto table = faultinject::VulnerabilityTable::measure(suite, 200, 11);
    const auto model = CodeSensitivityModel::build(
        devices::try_spec_by_name("NVIDIA K20"), suite, table);
    std::string max_he;
    std::string max_th;
    double best_he = -1.0;
    double best_th = -1.0;
    for (const auto& entry : suite) {
        const auto& w = model.weights(entry.name);
        if (w.he_sdc > best_he) {
            best_he = w.he_sdc;
            max_he = entry.name;
        }
        if (w.th_sdc > best_th) {
            best_th = w.th_sdc;
            max_th = entry.name;
        }
    }
    EXPECT_EQ(max_he, max_th);
}

TEST(CodeSensitivity, FpgaDoubleBuildScales) {
    const auto suite = workloads::suite_for_device("Xilinx Zynq-7000 FPGA");
    const auto table = faultinject::VulnerabilityTable::uniform(suite);
    const auto model = CodeSensitivityModel::build(
        devices::try_spec_by_name("Xilinx Zynq-7000 FPGA"), suite, table);
    const auto& single = model.weights("MNIST");
    const auto& dp = model.weights("MNIST-dp");
    // Double build: 2x the area (HE), 4x the thermal sigma — preserved as
    // ratios after normalization.
    EXPECT_NEAR(dp.he_sdc / single.he_sdc, 2.0, 1e-9);
    EXPECT_NEAR(dp.th_sdc / single.th_sdc, 4.0, 1e-9);
}

TEST(CodeSensitivity, FpgaBuildTableExposed) {
    const auto& builds = CodeSensitivityModel::fpga_builds();
    ASSERT_TRUE(builds.contains("MNIST-dp"));
    EXPECT_DOUBLE_EQ(builds.at("MNIST-dp").area, 2.0);
    EXPECT_DOUBLE_EQ(builds.at("MNIST-dp").thermal, 4.0);
}

// --- Campaign-level reproduction of the per-code claims -------------------------

class PerCodeCampaign : public ::testing::Test {
protected:
    static const CampaignResult& result() {
        static const CampaignResult r = [] {
            CampaignConfig cfg;
            cfg.beam_time_per_run_s = 3600.0 * 24.0;
            cfg.seed = 314;
            cfg.avf_trials = 150;
            return Campaign(cfg).run();
        }();
        return r;
    }

    static double sigma(const std::string& device, const std::string& workload,
                        const std::string& beamline, devices::ErrorType type) {
        for (const auto& m : result().measurements) {
            if (m.device == device && m.workload == workload &&
                m.beamline == beamline && m.type == type) {
                return m.cross_section();
            }
        }
        ADD_FAILURE() << "no measurement for " << device << "/" << workload;
        return 0.0;
    }
};

TEST_F(PerCodeCampaign, XeonPhiHeVariesThermalFlat) {
    double he_min = 1e9;
    double he_max = 0.0;
    double th_min = 1e9;
    double th_max = 0.0;
    for (const char* code : {"MxM", "LUD", "LavaMD", "HotSpot"}) {
        const double he = sigma("Intel Xeon Phi", code, "ChipIR",
                                devices::ErrorType::kSdc);
        const double th = sigma("Intel Xeon Phi", code, "ROTAX",
                                devices::ErrorType::kSdc);
        he_min = std::min(he_min, he);
        he_max = std::max(he_max, he);
        th_min = std::min(th_min, th);
        th_max = std::max(th_max, th);
    }
    // HE spread well above thermal spread (companion: >2x vs <20%); leave
    // statistical headroom.
    EXPECT_GT(he_max / he_min, 1.5);
    EXPECT_LT(th_max / th_min, 1.4);
    EXPECT_GT((he_max / he_min) / (th_max / th_min), 1.3);
}

TEST_F(PerCodeCampaign, K20YoloDueExceedsSdc) {
    // Companion study: YOLO is the only K20 code with DUE sigma > SDC sigma
    // at both facilities (CNN outputs tolerate corruption; the framework
    // detects bad tensors instead).
    for (const char* beamline : {"ChipIR", "ROTAX"}) {
        const double sdc =
            sigma("NVIDIA K20", "YOLO", beamline, devices::ErrorType::kSdc);
        const double due =
            sigma("NVIDIA K20", "YOLO", beamline, devices::ErrorType::kDue);
        EXPECT_GT(due, sdc) << beamline;
    }
}

TEST_F(PerCodeCampaign, FpgaDoublePrecisionFourTimesThermal) {
    const double th_single = sigma("Xilinx Zynq-7000 FPGA", "MNIST", "ROTAX",
                                   devices::ErrorType::kSdc);
    const double th_double = sigma("Xilinx Zynq-7000 FPGA", "MNIST-dp", "ROTAX",
                                   devices::ErrorType::kSdc);
    const double he_single = sigma("Xilinx Zynq-7000 FPGA", "MNIST", "ChipIR",
                                   devices::ErrorType::kSdc);
    const double he_double = sigma("Xilinx Zynq-7000 FPGA", "MNIST-dp",
                                   "ChipIR", devices::ErrorType::kSdc);
    EXPECT_NEAR(th_double / th_single, 4.0, 1.0);
    EXPECT_NEAR(he_double / he_single, 2.0, 0.4);
}

TEST_F(PerCodeCampaign, PooledFpgaRatioStillMatchesFig5) {
    // The per-build structure must not disturb the calibrated pooled ratio.
    const auto& row =
        result().row("Xilinx Zynq-7000 FPGA", devices::ErrorType::kSdc);
    const auto ratio = row.ratio();
    ASSERT_TRUE(ratio.has_value());
    EXPECT_NEAR(ratio->ratio, 2.33, 0.5);
}

}  // namespace
}  // namespace tnr::beam

// Tin-II detector tests: He-3 tube physics, cadmium discrimination, and the
// end-to-end Fig.-6 pipeline (simulate a deployment, difference the tubes,
// find the water step, recover +24%).

#include <gtest/gtest.h>

#include <cmath>

#include "detector/analysis.hpp"
#include "detector/he3_tube.hpp"
#include "detector/pressure.hpp"
#include "detector/tin2.hpp"
#include "physics/spectrum.hpp"
#include "physics/units.hpp"
#include "stats/rng.hpp"

namespace tnr::detector {
namespace {

TEST(He3Tube, GasDensityMatchesIdealGas) {
    He3Tube tube;
    // 4 atm at 293 K: ~1.0e20 atoms/cm^3.
    EXPECT_NEAR(tube.helium_density(), 1.0e20, 0.05e20);
}

TEST(He3Tube, ThermalEfficiencyHigh) {
    He3Tube tube;
    const double eff = tube.intrinsic_efficiency(physics::kThermalReferenceEv);
    EXPECT_GT(eff, 0.5);
    EXPECT_LT(eff, 1.0);
}

TEST(He3Tube, FastNeutronsNearlyInvisible) {
    He3Tube tube;
    EXPECT_LT(tube.intrinsic_efficiency(1.0e6), 1e-3);
}

TEST(He3Tube, EfficiencyDecreasesWithEnergy) {
    He3Tube tube;
    double last = 1.0;
    for (const double e : {0.001, 0.01, 0.1, 1.0, 10.0}) {
        const double eff = tube.intrinsic_efficiency(e);
        EXPECT_LT(eff, last);
        last = eff;
    }
}

TEST(He3Tube, FoldedEfficiencyNearPointValue) {
    He3Tube tube;
    const physics::MaxwellianSpectrum maxwellian(1.0, 0.0253);
    const double folded = tube.folded_efficiency(maxwellian);
    const double point = tube.intrinsic_efficiency(0.0253);
    EXPECT_NEAR(folded, point, 0.15 * point);
}

TEST(He3Tube, CountRateLinearInFlux) {
    He3Tube tube;
    const double r1 = tube.count_rate(1.0, 0.0);
    const double r2 = tube.count_rate(2.0, 0.0);
    EXPECT_NEAR(r2, 2.0 * r1, 1e-9);
}

TEST(He3Tube, Validation) {
    He3TubeConfig bad;
    bad.pressure_atm = 0.0;
    EXPECT_THROW(He3Tube{bad}, std::invalid_argument);
    He3Tube tube;
    EXPECT_THROW((void)tube.count_rate(-1.0, 0.0), std::invalid_argument);
}

TEST(Tin2, CadmiumShieldKillsThermals) {
    Tin2Detector tin2;
    EXPECT_LT(tin2.cadmium_thermal_transmission(), 0.05);
}

TEST(Tin2, BareRateExceedsShieldedRate) {
    Tin2Detector tin2;
    SchedulePhase phase{"test", 3600.0, 4.0 / 3600.0, 50.0 * 4.0 / 3600.0};
    EXPECT_GT(tin2.expected_bare_rate(phase),
              1.5 * tin2.expected_shielded_rate(phase));
}

TEST(Tin2, RecordingHasExpectedBins) {
    Tin2Detector tin2;
    stats::Rng rng(120);
    const auto schedule = fig6_schedule(2.0, 1.0);
    const Tin2Recording rec = tin2.record(schedule, rng);
    EXPECT_EQ(rec.bare.size(), 72u);  // 3 days of hourly bins.
    EXPECT_EQ(rec.shielded.size(), 72u);
    ASSERT_EQ(rec.phase_start_bins.size(), 2u);
    EXPECT_EQ(rec.phase_start_bins[0], 0u);
    EXPECT_EQ(rec.phase_start_bins[1], 48u);
}

TEST(Tin2, CountsScaleWithThermalFlux) {
    Tin2Detector tin2;
    stats::Rng rng(121);
    std::vector<SchedulePhase> schedule = {
        {"low", 86400.0, 1.0 / 3600.0, 0.0},
        {"high", 86400.0, 3.0 / 3600.0, 0.0},
    };
    const Tin2Recording rec = tin2.record(schedule, rng);
    const double low = static_cast<double>(rec.bare.total(0, 24));
    const double high = static_cast<double>(rec.bare.total(24, 48));
    EXPECT_NEAR(high / low, 3.0, 0.4);
}

TEST(Tin2, Validation) {
    Tin2Detector tin2;
    stats::Rng rng(122);
    EXPECT_THROW((void)tin2.record({}, rng), std::invalid_argument);
    Tin2Config bad;
    bad.cd_thickness_cm = 0.0;
    EXPECT_THROW(Tin2Detector{bad}, std::invalid_argument);
}

// --- Fig. 6 end-to-end -----------------------------------------------------------

TEST(Fig6, StepRecoveredAtWaterPlacement) {
    Tin2Detector tin2;
    stats::Rng rng(123);
    const auto schedule = fig6_schedule(4.0, 3.0);
    const Tin2Recording rec = tin2.record(schedule, rng);
    const auto analysis = analyze_step(rec);
    ASSERT_TRUE(analysis.has_value());
    // The detected changepoint should sit at the water-placement bin.
    EXPECT_NEAR(static_cast<double>(analysis->change_bin),
                static_cast<double>(rec.phase_start_bins[1]), 6.0);
}

TEST(Fig6, StepMagnitudeNearTwentyFourPercent) {
    Tin2Detector tin2;
    stats::Rng rng(124);
    const auto schedule = fig6_schedule(4.0, 3.0);
    const Tin2Recording rec = tin2.record(schedule, rng);
    const auto analysis = analyze_step(rec);
    ASSERT_TRUE(analysis.has_value());
    EXPECT_NEAR(analysis->relative_step, 0.24, 0.06);
    EXPECT_TRUE(analysis->step_ci.contains(0.24));
}

TEST(Fig6, NoStepWithoutWater) {
    Tin2Detector tin2;
    stats::Rng rng(125);
    const std::vector<SchedulePhase> flat = {
        {"baseline only", 7.0 * 86400.0, 4.0 / 3600.0, 50.0 * 4.0 / 3600.0},
    };
    const Tin2Recording rec = tin2.record(flat, rng);
    const auto analysis = analyze_step(rec);
    EXPECT_FALSE(analysis.has_value());
}

TEST(Fig6, ShieldedTubeSeesNoStep) {
    // The water step lives in the *thermal* channel: the Cd-shielded tube's
    // own counts stay flat, which is what pins the effect on thermals.
    Tin2Detector tin2;
    stats::Rng rng(126);
    const auto schedule = fig6_schedule(4.0, 3.0);
    const Tin2Recording rec = tin2.record(schedule, rng);
    const auto cp = stats::detect_single_changepoint(rec.shielded.counts(), 6);
    EXPECT_FALSE(cp.has_value());
}

// --- Pressure correction ----------------------------------------------------------

TEST(Pressure, FrontCreatesFalseStepCorrectionRemovesIt) {
    // A flat deployment (no water). A -16 hPa weather front mid-deployment
    // raises counts ~12% — a convincing fake step — which the barometric
    // correction must remove.
    Tin2Detector tin2;
    stats::Rng rng(128);
    const std::vector<SchedulePhase> flat = {
        {"baseline", 8.0 * 86400.0, 4.0 / 3600.0, 50.0 * 4.0 / 3600.0},
    };
    const auto rec = tin2.record(flat, rng);
    const auto pressure = pressure_front(rec.bare.size(), kReferencePressure,
                                         -16.0, rec.bare.size() / 2, rng);
    const auto modulated =
        apply_pressure_modulation(rec, pressure, kPressureBeta, rng);

    // Uncorrected: the analyst would see a step.
    const auto naive = analyze_step(modulated);
    ASSERT_TRUE(naive.has_value());
    EXPECT_NEAR(static_cast<double>(naive->change_bin),
                static_cast<double>(rec.bare.size() / 2), 8.0);

    // Corrected: the step disappears.
    const auto corrected = pressure_corrected_counts(modulated.bare, pressure,
                                                     kPressureBeta);
    const auto cp = stats::detect_single_changepoint(corrected, 6);
    if (cp.has_value()) {
        // Any residual structure must be far weaker than the fake step.
        EXPECT_LT(std::abs(cp->relative_step()),
                  0.4 * std::abs(naive->relative_step));
    }
}

TEST(Pressure, RealStepSurvivesCorrection) {
    // The genuine water step must NOT be corrected away under a quiet
    // random-walk pressure history.
    Tin2Detector tin2;
    stats::Rng rng(129);
    const auto rec = tin2.record(fig6_schedule(4.0, 3.0), rng);
    const auto pressure =
        random_walk_pressure(rec.bare.size(), kReferencePressure, 0.4, rng);
    const auto modulated =
        apply_pressure_modulation(rec, pressure, kPressureBeta, rng);
    const auto corrected_bare =
        pressure_corrected_counts(modulated.bare, pressure, kPressureBeta);
    const auto cp = stats::detect_single_changepoint(corrected_bare, 6);
    ASSERT_TRUE(cp.has_value());
    EXPECT_NEAR(static_cast<double>(cp->index),
                static_cast<double>(rec.phase_start_bins[1]), 8.0);
}

TEST(Pressure, Validation) {
    stats::Rng rng(130);
    EXPECT_THROW(random_walk_pressure(0, 1013.0, 1.0, rng),
                 std::invalid_argument);
    EXPECT_THROW(pressure_front(10, 1013.0, 5.0, 20, rng),
                 std::invalid_argument);
    Tin2Detector tin2;
    const auto rec = tin2.record(fig6_schedule(1.0, 1.0), rng);
    const std::vector<double> wrong_length(3, 1013.0);
    EXPECT_THROW(
        apply_pressure_modulation(rec, wrong_length, kPressureBeta, rng),
        std::invalid_argument);
    EXPECT_THROW(
        pressure_corrected_counts(rec.bare, wrong_length, kPressureBeta),
        std::invalid_argument);
}

TEST(Fig6, ThermalRateHelper) {
    Tin2Detector tin2;
    stats::Rng rng(127);
    const auto schedule = fig6_schedule(2.0, 2.0);
    const Tin2Recording rec = tin2.record(schedule, rng);
    const double before = thermal_rate(rec, 0, 48);
    const double after = thermal_rate(rec, 48, 96);
    EXPECT_NEAR(after / before, 1.24, 0.08);
    EXPECT_THROW((void)thermal_rate(rec, 0, 1000), std::out_of_range);
}

}  // namespace
}  // namespace tnr::detector

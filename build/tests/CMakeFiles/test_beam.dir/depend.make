# Empty dependencies file for test_beam.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_fieldstudy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_fieldstudy.dir/test_fieldstudy.cpp.o"
  "CMakeFiles/test_fieldstudy.dir/test_fieldstudy.cpp.o.d"
  "test_fieldstudy"
  "test_fieldstudy.pdb"
  "test_fieldstudy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fieldstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

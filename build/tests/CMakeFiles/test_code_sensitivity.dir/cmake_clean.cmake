file(REMOVE_RECURSE
  "CMakeFiles/test_code_sensitivity.dir/test_code_sensitivity.cpp.o"
  "CMakeFiles/test_code_sensitivity.dir/test_code_sensitivity.cpp.o.d"
  "test_code_sensitivity"
  "test_code_sensitivity.pdb"
  "test_code_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_code_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

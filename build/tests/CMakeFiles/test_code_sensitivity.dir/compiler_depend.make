# Empty compiler generated dependencies file for test_code_sensitivity.
# This may be replaced when dependencies are built.

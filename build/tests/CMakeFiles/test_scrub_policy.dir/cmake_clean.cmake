file(REMOVE_RECURSE
  "CMakeFiles/test_scrub_policy.dir/test_scrub_policy.cpp.o"
  "CMakeFiles/test_scrub_policy.dir/test_scrub_policy.cpp.o.d"
  "test_scrub_policy"
  "test_scrub_policy.pdb"
  "test_scrub_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scrub_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

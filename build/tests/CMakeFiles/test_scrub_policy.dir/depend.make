# Empty dependencies file for test_scrub_policy.
# This may be replaced when dependencies are built.

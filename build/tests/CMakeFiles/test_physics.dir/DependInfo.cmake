
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_physics.cpp" "tests/CMakeFiles/test_physics.dir/test_physics.cpp.o" "gcc" "tests/CMakeFiles/test_physics.dir/test_physics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/tnr_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tnr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/beam/CMakeFiles/tnr_beam.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/tnr_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tnr_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/tnr_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/tnr_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tnr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/tnr_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/tnr_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for test_multiregion.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_multiregion.dir/test_multiregion.cpp.o"
  "CMakeFiles/test_multiregion.dir/test_multiregion.cpp.o.d"
  "test_multiregion"
  "test_multiregion.pdb"
  "test_multiregion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiregion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

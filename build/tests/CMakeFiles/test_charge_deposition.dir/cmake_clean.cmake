file(REMOVE_RECURSE
  "CMakeFiles/test_charge_deposition.dir/test_charge_deposition.cpp.o"
  "CMakeFiles/test_charge_deposition.dir/test_charge_deposition.cpp.o.d"
  "test_charge_deposition"
  "test_charge_deposition.pdb"
  "test_charge_deposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charge_deposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_charge_deposition.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_physics[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_multiregion[1]_include.cmake")
include("/root/repo/build/tests/test_charge_deposition[1]_include.cmake")
include("/root/repo/build/tests/test_environment[1]_include.cmake")
include("/root/repo/build/tests/test_devices[1]_include.cmake")
include("/root/repo/build/tests/test_heterogeneous[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_faultinject[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_beam[1]_include.cmake")
include("/root/repo/build/tests/test_code_sensitivity[1]_include.cmake")
include("/root/repo/build/tests/test_detector[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_fieldstudy[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_scrub_policy[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/detector_deployment.dir/detector_deployment.cpp.o"
  "CMakeFiles/detector_deployment.dir/detector_deployment.cpp.o.d"
  "detector_deployment"
  "detector_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

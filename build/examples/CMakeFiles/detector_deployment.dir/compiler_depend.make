# Empty compiler generated dependencies file for detector_deployment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/automotive_rain.dir/automotive_rain.cpp.o"
  "CMakeFiles/automotive_rain.dir/automotive_rain.cpp.o.d"
  "automotive_rain"
  "automotive_rain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_rain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

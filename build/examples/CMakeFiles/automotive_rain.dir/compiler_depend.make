# Empty compiler generated dependencies file for automotive_rain.
# This may be replaced when dependencies are built.

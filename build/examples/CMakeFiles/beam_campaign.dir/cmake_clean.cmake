file(REMOVE_RECURSE
  "CMakeFiles/beam_campaign.dir/beam_campaign.cpp.o"
  "CMakeFiles/beam_campaign.dir/beam_campaign.cpp.o.d"
  "beam_campaign"
  "beam_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

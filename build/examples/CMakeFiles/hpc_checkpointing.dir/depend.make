# Empty dependencies file for hpc_checkpointing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hpc_checkpointing.dir/hpc_checkpointing.cpp.o"
  "CMakeFiles/hpc_checkpointing.dir/hpc_checkpointing.cpp.o.d"
  "hpc_checkpointing"
  "hpc_checkpointing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_checkpointing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for boron_screening.
# This may be replaced when dependencies are built.

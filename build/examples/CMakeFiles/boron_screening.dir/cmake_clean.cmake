file(REMOVE_RECURSE
  "CMakeFiles/boron_screening.dir/boron_screening.cpp.o"
  "CMakeFiles/boron_screening.dir/boron_screening.cpp.o.d"
  "boron_screening"
  "boron_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boron_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_txt1_flux_modifiers.dir/bench_txt1_flux_modifiers.cpp.o"
  "CMakeFiles/bench_txt1_flux_modifiers.dir/bench_txt1_flux_modifiers.cpp.o.d"
  "bench_txt1_flux_modifiers"
  "bench_txt1_flux_modifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txt1_flux_modifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_txt1_flux_modifiers.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig2_spectra.
# This may be replaced when dependencies are built.

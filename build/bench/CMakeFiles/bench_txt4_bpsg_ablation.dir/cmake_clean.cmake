file(REMOVE_RECURSE
  "CMakeFiles/bench_txt4_bpsg_ablation.dir/bench_txt4_bpsg_ablation.cpp.o"
  "CMakeFiles/bench_txt4_bpsg_ablation.dir/bench_txt4_bpsg_ablation.cpp.o.d"
  "bench_txt4_bpsg_ablation"
  "bench_txt4_bpsg_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txt4_bpsg_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

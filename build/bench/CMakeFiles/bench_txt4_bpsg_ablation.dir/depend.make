# Empty dependencies file for bench_txt4_bpsg_ablation.
# This may be replaced when dependencies are built.

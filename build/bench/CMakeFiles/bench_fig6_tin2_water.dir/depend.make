# Empty dependencies file for bench_fig6_tin2_water.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_tin2_water.dir/bench_fig6_tin2_water.cpp.o"
  "CMakeFiles/bench_fig6_tin2_water.dir/bench_fig6_tin2_water.cpp.o.d"
  "bench_fig6_tin2_water"
  "bench_fig6_tin2_water.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_tin2_water.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

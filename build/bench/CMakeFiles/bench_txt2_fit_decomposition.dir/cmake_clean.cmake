file(REMOVE_RECURSE
  "CMakeFiles/bench_txt2_fit_decomposition.dir/bench_txt2_fit_decomposition.cpp.o"
  "CMakeFiles/bench_txt2_fit_decomposition.dir/bench_txt2_fit_decomposition.cpp.o.d"
  "bench_txt2_fit_decomposition"
  "bench_txt2_fit_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txt2_fit_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_txt2_fit_decomposition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_jsc_per_code.dir/bench_jsc_per_code.cpp.o"
  "CMakeFiles/bench_jsc_per_code.dir/bench_jsc_per_code.cpp.o.d"
  "bench_jsc_per_code"
  "bench_jsc_per_code.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jsc_per_code.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

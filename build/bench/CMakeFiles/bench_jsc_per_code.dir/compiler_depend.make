# Empty compiler generated dependencies file for bench_jsc_per_code.
# This may be replaced when dependencies are built.

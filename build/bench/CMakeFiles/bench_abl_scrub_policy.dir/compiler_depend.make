# Empty compiler generated dependencies file for bench_abl_scrub_policy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_fpga_scrubbing.dir/bench_abl_fpga_scrubbing.cpp.o"
  "CMakeFiles/bench_abl_fpga_scrubbing.dir/bench_abl_fpga_scrubbing.cpp.o.d"
  "bench_abl_fpga_scrubbing"
  "bench_abl_fpga_scrubbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fpga_scrubbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

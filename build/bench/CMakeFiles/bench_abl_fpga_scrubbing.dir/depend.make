# Empty dependencies file for bench_abl_fpga_scrubbing.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_abl_checkpoint.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_checkpoint.dir/bench_abl_checkpoint.cpp.o"
  "CMakeFiles/bench_abl_checkpoint.dir/bench_abl_checkpoint.cpp.o.d"
  "bench_abl_checkpoint"
  "bench_abl_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

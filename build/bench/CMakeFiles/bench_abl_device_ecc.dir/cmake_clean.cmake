file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_device_ecc.dir/bench_abl_device_ecc.cpp.o"
  "CMakeFiles/bench_abl_device_ecc.dir/bench_abl_device_ecc.cpp.o.d"
  "bench_abl_device_ecc"
  "bench_abl_device_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_device_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_device_ecc.
# This may be replaced when dependencies are built.

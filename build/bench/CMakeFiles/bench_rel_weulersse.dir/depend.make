# Empty dependencies file for bench_rel_weulersse.
# This may be replaced when dependencies are built.

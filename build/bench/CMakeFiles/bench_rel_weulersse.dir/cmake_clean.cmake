file(REMOVE_RECURSE
  "CMakeFiles/bench_rel_weulersse.dir/bench_rel_weulersse.cpp.o"
  "CMakeFiles/bench_rel_weulersse.dir/bench_rel_weulersse.cpp.o.d"
  "bench_rel_weulersse"
  "bench_rel_weulersse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rel_weulersse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dut_stacking.dir/bench_abl_dut_stacking.cpp.o"
  "CMakeFiles/bench_abl_dut_stacking.dir/bench_abl_dut_stacking.cpp.o.d"
  "bench_abl_dut_stacking"
  "bench_abl_dut_stacking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dut_stacking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

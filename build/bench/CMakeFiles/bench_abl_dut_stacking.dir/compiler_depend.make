# Empty compiler generated dependencies file for bench_abl_dut_stacking.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_shielding_transport.dir/bench_abl_shielding_transport.cpp.o"
  "CMakeFiles/bench_abl_shielding_transport.dir/bench_abl_shielding_transport.cpp.o.d"
  "bench_abl_shielding_transport"
  "bench_abl_shielding_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_shielding_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

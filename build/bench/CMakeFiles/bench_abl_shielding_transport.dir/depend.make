# Empty dependencies file for bench_abl_shielding_transport.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_abl_water_boost.
# This may be replaced when dependencies are built.

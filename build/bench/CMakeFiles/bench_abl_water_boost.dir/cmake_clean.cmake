file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_water_boost.dir/bench_abl_water_boost.cpp.o"
  "CMakeFiles/bench_abl_water_boost.dir/bench_abl_water_boost.cpp.o.d"
  "bench_abl_water_boost"
  "bench_abl_water_boost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_water_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

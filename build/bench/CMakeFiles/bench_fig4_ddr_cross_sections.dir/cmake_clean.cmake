file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ddr_cross_sections.dir/bench_fig4_ddr_cross_sections.cpp.o"
  "CMakeFiles/bench_fig4_ddr_cross_sections.dir/bench_fig4_ddr_cross_sections.cpp.o.d"
  "bench_fig4_ddr_cross_sections"
  "bench_fig4_ddr_cross_sections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ddr_cross_sections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

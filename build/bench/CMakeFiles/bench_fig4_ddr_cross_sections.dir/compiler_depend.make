# Empty compiler generated dependencies file for bench_fig4_ddr_cross_sections.
# This may be replaced when dependencies are built.

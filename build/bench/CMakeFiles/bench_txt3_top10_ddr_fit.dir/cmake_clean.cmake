file(REMOVE_RECURSE
  "CMakeFiles/bench_txt3_top10_ddr_fit.dir/bench_txt3_top10_ddr_fit.cpp.o"
  "CMakeFiles/bench_txt3_top10_ddr_fit.dir/bench_txt3_top10_ddr_fit.cpp.o.d"
  "bench_txt3_top10_ddr_fit"
  "bench_txt3_top10_ddr_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txt3_top10_ddr_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_txt3_top10_ddr_fit.

# Empty compiler generated dependencies file for bench_txt3_top10_ddr_fit.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_abl_field_study.
# This may be replaced when dependencies are built.

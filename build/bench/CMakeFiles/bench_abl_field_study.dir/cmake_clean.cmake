file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_field_study.dir/bench_abl_field_study.cpp.o"
  "CMakeFiles/bench_abl_field_study.dir/bench_abl_field_study.cpp.o.d"
  "bench_abl_field_study"
  "bench_abl_field_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_field_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cross_section_ratio.dir/bench_fig5_cross_section_ratio.cpp.o"
  "CMakeFiles/bench_fig5_cross_section_ratio.dir/bench_fig5_cross_section_ratio.cpp.o.d"
  "bench_fig5_cross_section_ratio"
  "bench_fig5_cross_section_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cross_section_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig5_cross_section_ratio.
# This may be replaced when dependencies are built.

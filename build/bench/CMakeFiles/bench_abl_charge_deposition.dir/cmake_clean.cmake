file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_charge_deposition.dir/bench_abl_charge_deposition.cpp.o"
  "CMakeFiles/bench_abl_charge_deposition.dir/bench_abl_charge_deposition.cpp.o.d"
  "bench_abl_charge_deposition"
  "bench_abl_charge_deposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_charge_deposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_charge_deposition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_heterogeneous.dir/bench_abl_heterogeneous.cpp.o"
  "CMakeFiles/bench_abl_heterogeneous.dir/bench_abl_heterogeneous.cpp.o.d"
  "bench_abl_heterogeneous"
  "bench_abl_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

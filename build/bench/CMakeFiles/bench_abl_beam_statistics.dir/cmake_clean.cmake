file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_beam_statistics.dir/bench_abl_beam_statistics.cpp.o"
  "CMakeFiles/bench_abl_beam_statistics.dir/bench_abl_beam_statistics.cpp.o.d"
  "bench_abl_beam_statistics"
  "bench_abl_beam_statistics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_beam_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_beam_statistics.
# This may be replaced when dependencies are built.

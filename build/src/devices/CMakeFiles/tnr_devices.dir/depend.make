# Empty dependencies file for tnr_devices.
# This may be replaced when dependencies are built.

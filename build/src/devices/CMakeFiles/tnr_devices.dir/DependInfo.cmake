
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/catalog.cpp" "src/devices/CMakeFiles/tnr_devices.dir/catalog.cpp.o" "gcc" "src/devices/CMakeFiles/tnr_devices.dir/catalog.cpp.o.d"
  "/root/repo/src/devices/device.cpp" "src/devices/CMakeFiles/tnr_devices.dir/device.cpp.o" "gcc" "src/devices/CMakeFiles/tnr_devices.dir/device.cpp.o.d"
  "/root/repo/src/devices/ecc_policy.cpp" "src/devices/CMakeFiles/tnr_devices.dir/ecc_policy.cpp.o" "gcc" "src/devices/CMakeFiles/tnr_devices.dir/ecc_policy.cpp.o.d"
  "/root/repo/src/devices/heterogeneous.cpp" "src/devices/CMakeFiles/tnr_devices.dir/heterogeneous.cpp.o" "gcc" "src/devices/CMakeFiles/tnr_devices.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/devices/sensitivity.cpp" "src/devices/CMakeFiles/tnr_devices.dir/sensitivity.cpp.o" "gcc" "src/devices/CMakeFiles/tnr_devices.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

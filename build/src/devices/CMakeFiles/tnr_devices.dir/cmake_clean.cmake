file(REMOVE_RECURSE
  "CMakeFiles/tnr_devices.dir/catalog.cpp.o"
  "CMakeFiles/tnr_devices.dir/catalog.cpp.o.d"
  "CMakeFiles/tnr_devices.dir/device.cpp.o"
  "CMakeFiles/tnr_devices.dir/device.cpp.o.d"
  "CMakeFiles/tnr_devices.dir/ecc_policy.cpp.o"
  "CMakeFiles/tnr_devices.dir/ecc_policy.cpp.o.d"
  "CMakeFiles/tnr_devices.dir/heterogeneous.cpp.o"
  "CMakeFiles/tnr_devices.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/tnr_devices.dir/sensitivity.cpp.o"
  "CMakeFiles/tnr_devices.dir/sensitivity.cpp.o.d"
  "libtnr_devices.a"
  "libtnr_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

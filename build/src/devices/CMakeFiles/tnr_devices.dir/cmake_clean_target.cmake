file(REMOVE_RECURSE
  "libtnr_devices.a"
)

# Empty compiler generated dependencies file for tnr_core.
# This may be replaced when dependencies are built.

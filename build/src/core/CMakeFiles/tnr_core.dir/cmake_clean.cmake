file(REMOVE_RECURSE
  "CMakeFiles/tnr_core.dir/checkpoint.cpp.o"
  "CMakeFiles/tnr_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/tnr_core.dir/fieldstudy.cpp.o"
  "CMakeFiles/tnr_core.dir/fieldstudy.cpp.o.d"
  "CMakeFiles/tnr_core.dir/fit.cpp.o"
  "CMakeFiles/tnr_core.dir/fit.cpp.o.d"
  "CMakeFiles/tnr_core.dir/markdown_report.cpp.o"
  "CMakeFiles/tnr_core.dir/markdown_report.cpp.o.d"
  "CMakeFiles/tnr_core.dir/report.cpp.o"
  "CMakeFiles/tnr_core.dir/report.cpp.o.d"
  "CMakeFiles/tnr_core.dir/study.cpp.o"
  "CMakeFiles/tnr_core.dir/study.cpp.o.d"
  "libtnr_core.a"
  "libtnr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libtnr_core.a"
)

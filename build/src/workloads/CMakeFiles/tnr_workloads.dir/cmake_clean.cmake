file(REMOVE_RECURSE
  "CMakeFiles/tnr_workloads.dir/bfs.cpp.o"
  "CMakeFiles/tnr_workloads.dir/bfs.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/canny.cpp.o"
  "CMakeFiles/tnr_workloads.dir/canny.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/hotspot.cpp.o"
  "CMakeFiles/tnr_workloads.dir/hotspot.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/lavamd.cpp.o"
  "CMakeFiles/tnr_workloads.dir/lavamd.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/lud.cpp.o"
  "CMakeFiles/tnr_workloads.dir/lud.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/mnist.cpp.o"
  "CMakeFiles/tnr_workloads.dir/mnist.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/mxm.cpp.o"
  "CMakeFiles/tnr_workloads.dir/mxm.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/stream_compaction.cpp.o"
  "CMakeFiles/tnr_workloads.dir/stream_compaction.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/suite.cpp.o"
  "CMakeFiles/tnr_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/workload.cpp.o"
  "CMakeFiles/tnr_workloads.dir/workload.cpp.o.d"
  "CMakeFiles/tnr_workloads.dir/yolo_lite.cpp.o"
  "CMakeFiles/tnr_workloads.dir/yolo_lite.cpp.o.d"
  "libtnr_workloads.a"
  "libtnr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bfs.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/bfs.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/bfs.cpp.o.d"
  "/root/repo/src/workloads/canny.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/canny.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/canny.cpp.o.d"
  "/root/repo/src/workloads/hotspot.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/hotspot.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/hotspot.cpp.o.d"
  "/root/repo/src/workloads/lavamd.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/lavamd.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/lavamd.cpp.o.d"
  "/root/repo/src/workloads/lud.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/lud.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/lud.cpp.o.d"
  "/root/repo/src/workloads/mnist.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/mnist.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/mnist.cpp.o.d"
  "/root/repo/src/workloads/mxm.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/mxm.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/mxm.cpp.o.d"
  "/root/repo/src/workloads/stream_compaction.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/stream_compaction.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/stream_compaction.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/suite.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/workload.cpp.o.d"
  "/root/repo/src/workloads/yolo_lite.cpp" "src/workloads/CMakeFiles/tnr_workloads.dir/yolo_lite.cpp.o" "gcc" "src/workloads/CMakeFiles/tnr_workloads.dir/yolo_lite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

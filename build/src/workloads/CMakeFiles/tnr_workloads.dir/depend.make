# Empty dependencies file for tnr_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtnr_workloads.a"
)

file(REMOVE_RECURSE
  "libtnr_cli.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tnr_cli.dir/cli.cpp.o"
  "CMakeFiles/tnr_cli.dir/cli.cpp.o.d"
  "libtnr_cli.a"
  "libtnr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tnr_cli.
# This may be replaced when dependencies are built.

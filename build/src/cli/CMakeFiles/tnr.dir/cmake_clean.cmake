file(REMOVE_RECURSE
  "CMakeFiles/tnr.dir/tnr_main.cpp.o"
  "CMakeFiles/tnr.dir/tnr_main.cpp.o.d"
  "tnr"
  "tnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

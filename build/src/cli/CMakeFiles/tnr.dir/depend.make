# Empty dependencies file for tnr.
# This may be replaced when dependencies are built.

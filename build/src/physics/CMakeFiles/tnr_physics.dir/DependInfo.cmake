
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/physics/beamline_spectra.cpp" "src/physics/CMakeFiles/tnr_physics.dir/beamline_spectra.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/beamline_spectra.cpp.o.d"
  "/root/repo/src/physics/charge_deposition.cpp" "src/physics/CMakeFiles/tnr_physics.dir/charge_deposition.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/charge_deposition.cpp.o.d"
  "/root/repo/src/physics/cross_sections.cpp" "src/physics/CMakeFiles/tnr_physics.dir/cross_sections.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/cross_sections.cpp.o.d"
  "/root/repo/src/physics/materials.cpp" "src/physics/CMakeFiles/tnr_physics.dir/materials.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/materials.cpp.o.d"
  "/root/repo/src/physics/multiregion.cpp" "src/physics/CMakeFiles/tnr_physics.dir/multiregion.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/multiregion.cpp.o.d"
  "/root/repo/src/physics/spectrum.cpp" "src/physics/CMakeFiles/tnr_physics.dir/spectrum.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/spectrum.cpp.o.d"
  "/root/repo/src/physics/transport.cpp" "src/physics/CMakeFiles/tnr_physics.dir/transport.cpp.o" "gcc" "src/physics/CMakeFiles/tnr_physics.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

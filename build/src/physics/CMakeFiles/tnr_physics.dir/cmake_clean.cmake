file(REMOVE_RECURSE
  "CMakeFiles/tnr_physics.dir/beamline_spectra.cpp.o"
  "CMakeFiles/tnr_physics.dir/beamline_spectra.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/charge_deposition.cpp.o"
  "CMakeFiles/tnr_physics.dir/charge_deposition.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/cross_sections.cpp.o"
  "CMakeFiles/tnr_physics.dir/cross_sections.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/materials.cpp.o"
  "CMakeFiles/tnr_physics.dir/materials.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/multiregion.cpp.o"
  "CMakeFiles/tnr_physics.dir/multiregion.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/spectrum.cpp.o"
  "CMakeFiles/tnr_physics.dir/spectrum.cpp.o.d"
  "CMakeFiles/tnr_physics.dir/transport.cpp.o"
  "CMakeFiles/tnr_physics.dir/transport.cpp.o.d"
  "libtnr_physics.a"
  "libtnr_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

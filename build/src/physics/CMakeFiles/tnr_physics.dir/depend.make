# Empty dependencies file for tnr_physics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtnr_physics.a"
)

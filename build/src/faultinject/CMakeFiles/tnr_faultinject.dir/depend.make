# Empty dependencies file for tnr_faultinject.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtnr_faultinject.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultinject/avf.cpp" "src/faultinject/CMakeFiles/tnr_faultinject.dir/avf.cpp.o" "gcc" "src/faultinject/CMakeFiles/tnr_faultinject.dir/avf.cpp.o.d"
  "/root/repo/src/faultinject/injector.cpp" "src/faultinject/CMakeFiles/tnr_faultinject.dir/injector.cpp.o" "gcc" "src/faultinject/CMakeFiles/tnr_faultinject.dir/injector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tnr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tnr_faultinject.dir/avf.cpp.o"
  "CMakeFiles/tnr_faultinject.dir/avf.cpp.o.d"
  "CMakeFiles/tnr_faultinject.dir/injector.cpp.o"
  "CMakeFiles/tnr_faultinject.dir/injector.cpp.o.d"
  "libtnr_faultinject.a"
  "libtnr_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

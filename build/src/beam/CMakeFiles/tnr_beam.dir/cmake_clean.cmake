file(REMOVE_RECURSE
  "CMakeFiles/tnr_beam.dir/beamline.cpp.o"
  "CMakeFiles/tnr_beam.dir/beamline.cpp.o.d"
  "CMakeFiles/tnr_beam.dir/campaign.cpp.o"
  "CMakeFiles/tnr_beam.dir/campaign.cpp.o.d"
  "CMakeFiles/tnr_beam.dir/code_sensitivity.cpp.o"
  "CMakeFiles/tnr_beam.dir/code_sensitivity.cpp.o.d"
  "CMakeFiles/tnr_beam.dir/dut_attenuation.cpp.o"
  "CMakeFiles/tnr_beam.dir/dut_attenuation.cpp.o.d"
  "CMakeFiles/tnr_beam.dir/experiment.cpp.o"
  "CMakeFiles/tnr_beam.dir/experiment.cpp.o.d"
  "CMakeFiles/tnr_beam.dir/screening.cpp.o"
  "CMakeFiles/tnr_beam.dir/screening.cpp.o.d"
  "libtnr_beam.a"
  "libtnr_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

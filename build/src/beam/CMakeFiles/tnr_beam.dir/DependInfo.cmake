
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/beam/beamline.cpp" "src/beam/CMakeFiles/tnr_beam.dir/beamline.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/beamline.cpp.o.d"
  "/root/repo/src/beam/campaign.cpp" "src/beam/CMakeFiles/tnr_beam.dir/campaign.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/campaign.cpp.o.d"
  "/root/repo/src/beam/code_sensitivity.cpp" "src/beam/CMakeFiles/tnr_beam.dir/code_sensitivity.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/code_sensitivity.cpp.o.d"
  "/root/repo/src/beam/dut_attenuation.cpp" "src/beam/CMakeFiles/tnr_beam.dir/dut_attenuation.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/dut_attenuation.cpp.o.d"
  "/root/repo/src/beam/experiment.cpp" "src/beam/CMakeFiles/tnr_beam.dir/experiment.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/experiment.cpp.o.d"
  "/root/repo/src/beam/screening.cpp" "src/beam/CMakeFiles/tnr_beam.dir/screening.cpp.o" "gcc" "src/beam/CMakeFiles/tnr_beam.dir/screening.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/tnr_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/tnr_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tnr_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

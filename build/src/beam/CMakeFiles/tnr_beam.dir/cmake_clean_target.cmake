file(REMOVE_RECURSE
  "libtnr_beam.a"
)

# Empty compiler generated dependencies file for tnr_beam.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("physics")
subdirs("environment")
subdirs("devices")
subdirs("workloads")
subdirs("faultinject")
subdirs("memory")
subdirs("fpga")
subdirs("beam")
subdirs("detector")
subdirs("core")
subdirs("cli")

file(REMOVE_RECURSE
  "libtnr_detector.a"
)

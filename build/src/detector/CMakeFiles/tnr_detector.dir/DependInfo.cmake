
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detector/analysis.cpp" "src/detector/CMakeFiles/tnr_detector.dir/analysis.cpp.o" "gcc" "src/detector/CMakeFiles/tnr_detector.dir/analysis.cpp.o.d"
  "/root/repo/src/detector/he3_tube.cpp" "src/detector/CMakeFiles/tnr_detector.dir/he3_tube.cpp.o" "gcc" "src/detector/CMakeFiles/tnr_detector.dir/he3_tube.cpp.o.d"
  "/root/repo/src/detector/pressure.cpp" "src/detector/CMakeFiles/tnr_detector.dir/pressure.cpp.o" "gcc" "src/detector/CMakeFiles/tnr_detector.dir/pressure.cpp.o.d"
  "/root/repo/src/detector/tin2.cpp" "src/detector/CMakeFiles/tnr_detector.dir/tin2.cpp.o" "gcc" "src/detector/CMakeFiles/tnr_detector.dir/tin2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/tnr_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tnr_detector.dir/analysis.cpp.o"
  "CMakeFiles/tnr_detector.dir/analysis.cpp.o.d"
  "CMakeFiles/tnr_detector.dir/he3_tube.cpp.o"
  "CMakeFiles/tnr_detector.dir/he3_tube.cpp.o.d"
  "CMakeFiles/tnr_detector.dir/pressure.cpp.o"
  "CMakeFiles/tnr_detector.dir/pressure.cpp.o.d"
  "CMakeFiles/tnr_detector.dir/tin2.cpp.o"
  "CMakeFiles/tnr_detector.dir/tin2.cpp.o.d"
  "libtnr_detector.a"
  "libtnr_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

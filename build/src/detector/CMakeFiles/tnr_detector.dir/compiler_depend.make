# Empty compiler generated dependencies file for tnr_detector.
# This may be replaced when dependencies are built.

# Empty dependencies file for tnr_memory.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libtnr_memory.a"
)

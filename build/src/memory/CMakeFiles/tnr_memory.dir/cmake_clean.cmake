file(REMOVE_RECURSE
  "CMakeFiles/tnr_memory.dir/correct_loop.cpp.o"
  "CMakeFiles/tnr_memory.dir/correct_loop.cpp.o.d"
  "CMakeFiles/tnr_memory.dir/dram_array.cpp.o"
  "CMakeFiles/tnr_memory.dir/dram_array.cpp.o.d"
  "CMakeFiles/tnr_memory.dir/dram_config.cpp.o"
  "CMakeFiles/tnr_memory.dir/dram_config.cpp.o.d"
  "CMakeFiles/tnr_memory.dir/ecc.cpp.o"
  "CMakeFiles/tnr_memory.dir/ecc.cpp.o.d"
  "CMakeFiles/tnr_memory.dir/fault_process.cpp.o"
  "CMakeFiles/tnr_memory.dir/fault_process.cpp.o.d"
  "CMakeFiles/tnr_memory.dir/scrub_policy.cpp.o"
  "CMakeFiles/tnr_memory.dir/scrub_policy.cpp.o.d"
  "libtnr_memory.a"
  "libtnr_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/correct_loop.cpp" "src/memory/CMakeFiles/tnr_memory.dir/correct_loop.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/correct_loop.cpp.o.d"
  "/root/repo/src/memory/dram_array.cpp" "src/memory/CMakeFiles/tnr_memory.dir/dram_array.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/dram_array.cpp.o.d"
  "/root/repo/src/memory/dram_config.cpp" "src/memory/CMakeFiles/tnr_memory.dir/dram_config.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/dram_config.cpp.o.d"
  "/root/repo/src/memory/ecc.cpp" "src/memory/CMakeFiles/tnr_memory.dir/ecc.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/ecc.cpp.o.d"
  "/root/repo/src/memory/fault_process.cpp" "src/memory/CMakeFiles/tnr_memory.dir/fault_process.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/fault_process.cpp.o.d"
  "/root/repo/src/memory/scrub_policy.cpp" "src/memory/CMakeFiles/tnr_memory.dir/scrub_policy.cpp.o" "gcc" "src/memory/CMakeFiles/tnr_memory.dir/scrub_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

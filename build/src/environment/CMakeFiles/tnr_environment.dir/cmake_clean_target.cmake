file(REMOVE_RECURSE
  "libtnr_environment.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tnr_environment.dir/location.cpp.o"
  "CMakeFiles/tnr_environment.dir/location.cpp.o.d"
  "CMakeFiles/tnr_environment.dir/modifiers.cpp.o"
  "CMakeFiles/tnr_environment.dir/modifiers.cpp.o.d"
  "CMakeFiles/tnr_environment.dir/site.cpp.o"
  "CMakeFiles/tnr_environment.dir/site.cpp.o.d"
  "libtnr_environment.a"
  "libtnr_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tnr_environment.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/environment/location.cpp" "src/environment/CMakeFiles/tnr_environment.dir/location.cpp.o" "gcc" "src/environment/CMakeFiles/tnr_environment.dir/location.cpp.o.d"
  "/root/repo/src/environment/modifiers.cpp" "src/environment/CMakeFiles/tnr_environment.dir/modifiers.cpp.o" "gcc" "src/environment/CMakeFiles/tnr_environment.dir/modifiers.cpp.o.d"
  "/root/repo/src/environment/site.cpp" "src/environment/CMakeFiles/tnr_environment.dir/site.cpp.o" "gcc" "src/environment/CMakeFiles/tnr_environment.dir/site.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

src/environment/CMakeFiles/tnr_environment.dir/modifiers.cpp.o: \
 /root/repo/src/environment/modifiers.cpp /usr/include/stdc-predef.h \
 /root/repo/src/environment/modifiers.hpp

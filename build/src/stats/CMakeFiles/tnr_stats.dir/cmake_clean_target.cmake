file(REMOVE_RECURSE
  "libtnr_stats.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/changepoint.cpp" "src/stats/CMakeFiles/tnr_stats.dir/changepoint.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/changepoint.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/tnr_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/poisson.cpp" "src/stats/CMakeFiles/tnr_stats.dir/poisson.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/poisson.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/tnr_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/special_functions.cpp" "src/stats/CMakeFiles/tnr_stats.dir/special_functions.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/special_functions.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/tnr_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/tnr_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/tnr_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for tnr_stats.
# This may be replaced when dependencies are built.

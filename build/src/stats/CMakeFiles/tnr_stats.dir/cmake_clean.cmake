file(REMOVE_RECURSE
  "CMakeFiles/tnr_stats.dir/changepoint.cpp.o"
  "CMakeFiles/tnr_stats.dir/changepoint.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/histogram.cpp.o"
  "CMakeFiles/tnr_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/poisson.cpp.o"
  "CMakeFiles/tnr_stats.dir/poisson.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/rng.cpp.o"
  "CMakeFiles/tnr_stats.dir/rng.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/special_functions.cpp.o"
  "CMakeFiles/tnr_stats.dir/special_functions.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/summary.cpp.o"
  "CMakeFiles/tnr_stats.dir/summary.cpp.o.d"
  "CMakeFiles/tnr_stats.dir/timeseries.cpp.o"
  "CMakeFiles/tnr_stats.dir/timeseries.cpp.o.d"
  "libtnr_stats.a"
  "libtnr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

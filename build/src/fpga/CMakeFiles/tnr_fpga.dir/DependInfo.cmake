
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/beam_run.cpp" "src/fpga/CMakeFiles/tnr_fpga.dir/beam_run.cpp.o" "gcc" "src/fpga/CMakeFiles/tnr_fpga.dir/beam_run.cpp.o.d"
  "/root/repo/src/fpga/config_memory.cpp" "src/fpga/CMakeFiles/tnr_fpga.dir/config_memory.cpp.o" "gcc" "src/fpga/CMakeFiles/tnr_fpga.dir/config_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tnr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tnr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/tnr_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libtnr_fpga.a"
)

# Empty compiler generated dependencies file for tnr_fpga.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tnr_fpga.dir/beam_run.cpp.o"
  "CMakeFiles/tnr_fpga.dir/beam_run.cpp.o.d"
  "CMakeFiles/tnr_fpga.dir/config_memory.cpp.o"
  "CMakeFiles/tnr_fpga.dir/config_memory.cpp.o.d"
  "libtnr_fpga.a"
  "libtnr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tnr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
